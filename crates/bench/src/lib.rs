//! Shared experiment harness for the per-figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper.
//! They share this harness: benchmark-suite construction, the
//! compile → simulate → score loop, and plain-text/CSV reporting.
//!
//! All binaries accept `--scale small|paper` (default `small`): `small` runs
//! laptop-sized versions of each experiment (fewer circuits, fewer shots,
//! coarser grids) in seconds-to-minutes; `paper` uses the circuit counts and
//! shot counts reported in §VI.

#![warn(missing_docs)]

use apps::workloads::{fermi_hubbard_circuit, qaoa_circuit, qft_echo_circuit, qv_circuit};
use apps::{cross_entropy_difference, heavy_output_probability, linear_xeb_fidelity, success_rate};
use circuit::Circuit;
use compiler::{CompileError, CompiledCircuit, Compiler, CompilerOptions};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;
use serde::{Deserialize, Serialize};
use sim::{Counts, ExecutionEngine, FusionPolicy, IdealSimulator, NoiseModel, SimJob};
use std::sync::Arc;
use telemetry::Collector;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Laptop-sized: few circuits, few shots, coarse grids.
    Small,
    /// The paper's configuration (100 circuits per benchmark, 10000 shots).
    Paper,
}

impl Scale {
    /// Parses `--scale small|paper` from the process arguments (default
    /// Small). Malformed values print a clear message to stderr and exit with
    /// status 2 — never a silent fall-through to the default.
    pub fn from_args() -> Scale {
        exit_on_arg_error(Scale::try_from_arg_list(
            &std::env::args().collect::<Vec<_>>(),
        ))
    }

    /// [`Scale::from_args`] over an explicit argument list (testable core).
    /// Unknown scales and a trailing `--scale` with no value are rejected.
    pub fn try_from_arg_list(args: &[String]) -> Result<Scale, ArgError> {
        let mut scale = Scale::Small;
        for (flag, value) in flag_values(args, "--scale")? {
            scale = match value.to_ascii_lowercase().as_str() {
                "small" => Scale::Small,
                "paper" => Scale::Paper,
                other => {
                    return Err(ArgError {
                        flag,
                        value: other.to_string(),
                        expected: "small|paper",
                    })
                }
            };
        }
        Ok(scale)
    }

    /// Picks the small or paper value.
    pub fn pick(&self, small: usize, paper: usize) -> usize {
        match self {
            Scale::Small => small,
            Scale::Paper => paper,
        }
    }

    /// Number of random circuits per benchmark.
    pub fn circuits(&self) -> usize {
        self.pick(8, 100)
    }

    /// Number of measurement shots per circuit.
    pub fn shots(&self) -> usize {
        self.pick(500, 10000)
    }

    /// Compiler options (cheaper optimizer at small scale).
    pub fn compiler_options(&self) -> CompilerOptions {
        match self {
            Scale::Small => CompilerOptions::sweep(),
            Scale::Paper => CompilerOptions::default(),
        }
    }
}

/// A malformed command-line value: the flag, what was given, what was
/// expected.
///
/// The figure binaries used to silently ignore values they could not parse
/// (`--sim-threads x` fell back to the default thread count), which makes a
/// typo in a benchmark invocation indistinguishable from the intended run.
/// Now every malformed value is rejected with a clear message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    /// The flag whose value failed to parse (e.g. `--sim-threads`).
    pub flag: &'static str,
    /// The offending value (empty when the flag had no value at all).
    pub value: String,
    /// Human-readable description of what the flag accepts.
    pub expected: &'static str,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.value.is_empty() {
            write!(f, "{} requires a value ({})", self.flag, self.expected)
        } else {
            write!(
                f,
                "invalid value {:?} for {} (expected {})",
                self.value, self.flag, self.expected
            )
        }
    }
}

impl std::error::Error for ArgError {}

/// Collects every `(flag, value)` occurrence of `flag` in `args`, rejecting a
/// trailing flag with no value.
fn flag_values<'a>(
    args: &'a [String],
    flag: &'static str,
) -> Result<Vec<(&'static str, &'a str)>, ArgError> {
    let mut values = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == flag {
            match iter.next() {
                Some(value) => values.push((flag, value.as_str())),
                None => {
                    return Err(ArgError {
                        flag,
                        value: String::new(),
                        expected: "a value",
                    })
                }
            }
        }
    }
    Ok(values)
}

/// Prints an argument error to stderr and exits with status 2 (binaries
/// only; library code and tests use the `try_*` variants).
fn exit_on_arg_error<T>(result: Result<T, ArgError>) -> T {
    result.unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    })
}

/// A `--trace <path>` destination: an enabled [`telemetry::Collector`] plus
/// the file the collected spans are written to (as Chrome Trace Event JSON,
/// loadable in Perfetto) when the run finishes.
#[derive(Debug)]
pub struct TraceSink {
    path: String,
    collector: Arc<Collector>,
}

impl TraceSink {
    /// The collector recording this run's spans. Attach it to engines and
    /// compilers (their builders take `.telemetry(...)`).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// The destination path given on the command line.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Writes every span collected so far to the destination as Chrome
    /// Trace Event JSON.
    pub fn write(&self) -> std::io::Result<()> {
        let trace = telemetry::export::trace_json(&self.collector.completed_spans());
        std::fs::write(&self.path, trace)
    }
}

/// Parses `--trace <path>` from the process arguments (default none).
/// Unwritable paths are rejected at parse time, before the experiment runs.
pub fn trace_sink_from_args() -> Option<TraceSink> {
    exit_on_arg_error(trace_sink_from_arg_list(
        &std::env::args().collect::<Vec<_>>(),
    ))
}

/// [`trace_sink_from_args`] over an explicit argument list (testable core).
/// The path is probed by creating (or truncating) the file now, so a typo'd
/// directory fails before minutes of simulation, with the same typed
/// [`ArgError`] framing as `--sim-threads`.
pub fn trace_sink_from_arg_list(args: &[String]) -> Result<Option<TraceSink>, ArgError> {
    let mut path: Option<&str> = None;
    for (_, value) in flag_values(args, "--trace")? {
        path = Some(value);
    }
    let Some(path) = path else { return Ok(None) };
    if std::fs::write(path, "").is_err() {
        return Err(ArgError {
            flag: "--trace",
            value: path.to_string(),
            expected: "a writable file path",
        });
    }
    let collector = Arc::new(Collector::new());
    collector.set_enabled(true);
    Ok(Some(TraceSink {
        path: path.to_string(),
        collector,
    }))
}

/// Writes the sink (when one was requested) and reports the destination;
/// write failures exit with status 2. Call at the end of a figure binary.
pub fn write_trace_or_exit(sink: &Option<TraceSink>) {
    if let Some(sink) = sink {
        if let Err(err) = sink.write() {
            eprintln!("error: failed to write trace to {}: {err}", sink.path());
            std::process::exit(2);
        }
        eprintln!("trace written to {}", sink.path());
    }
}

/// Builds the simulation engine the figure binaries share, honouring two
/// optional command-line knobs:
///
/// - `--fusion off|safe` — gate-fusion policy jobs are lowered under
///   (default `safe`; never changes counts, see `sim::precompiled`).
/// - `--sim-threads N` — worker-thread cap for the engine (default: the
///   machine's available parallelism). Thread count never changes results.
///
/// Malformed values (`--fusion blah`, `--sim-threads x`, `--sim-threads 0`)
/// print a clear message to stderr and exit with status 2.
pub fn engine_from_args() -> ExecutionEngine {
    exit_on_arg_error(engine_from_arg_list(&std::env::args().collect::<Vec<_>>()))
}

/// [`engine_from_args`] plus `--trace <path>`: when a trace is requested the
/// engine is built with the sink's collector attached, so its precompile /
/// simulate / shard spans land in the written trace.
pub fn engine_and_trace_from_args() -> (ExecutionEngine, Option<TraceSink>) {
    exit_on_arg_error(engine_and_trace_from_arg_list(
        &std::env::args().collect::<Vec<_>>(),
    ))
}

/// [`engine_and_trace_from_args`] over an explicit argument list.
pub fn engine_and_trace_from_arg_list(
    args: &[String],
) -> Result<(ExecutionEngine, Option<TraceSink>), ArgError> {
    let sink = trace_sink_from_arg_list(args)?;
    let collector = sink.as_ref().map(|s| Arc::clone(s.collector()));
    Ok((engine_from_arg_list_with(args, collector)?, sink))
}

/// [`engine_from_args`] over an explicit argument list (testable core).
pub fn engine_from_arg_list(args: &[String]) -> Result<ExecutionEngine, ArgError> {
    engine_from_arg_list_with(args, None)
}

fn engine_from_arg_list_with(
    args: &[String],
    collector: Option<Arc<Collector>>,
) -> Result<ExecutionEngine, ArgError> {
    let mut builder = ExecutionEngine::builder();
    if let Some(collector) = collector {
        builder = builder.telemetry(collector);
    }
    for (flag, value) in flag_values(args, "--fusion")? {
        builder = match value.to_ascii_lowercase().as_str() {
            "off" => builder.fusion(FusionPolicy::Off),
            "safe" => builder.fusion(FusionPolicy::Safe),
            other => {
                return Err(ArgError {
                    flag,
                    value: other.to_string(),
                    expected: "off|safe",
                })
            }
        };
    }
    for (flag, value) in flag_values(args, "--sim-threads")? {
        // Zero threads is a typed EngineConfigError at build(); report it
        // with the same flag/value framing as an unparsable number.
        match value.parse::<usize>() {
            Ok(threads) if threads > 0 => builder = builder.threads(threads),
            _ => {
                return Err(ArgError {
                    flag,
                    value: value.to_string(),
                    expected: "a positive integer",
                })
            }
        }
    }
    Ok(builder
        .build()
        .expect("default chunk size and positive threads are a valid config"))
}

/// Which metric scores a benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Heavy-output probability (QV).
    Hop,
    /// Cross-entropy difference (QAOA).
    Xed,
    /// Linear XEB fidelity (Fermi–Hubbard).
    Xeb,
    /// Success rate (QFT echo).
    SuccessRate,
}

impl Metric {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Hop => "HOP",
            Metric::Xed => "XED",
            Metric::Xeb => "XEB fidelity",
            Metric::SuccessRate => "success rate",
        }
    }
}

/// One benchmark circuit plus the data needed to score it.
#[derive(Debug, Clone)]
pub struct BenchCircuit {
    /// The logical (device-independent) circuit.
    pub circuit: Circuit,
    /// Metric used to score it.
    pub metric: Metric,
    /// Expected outcome for success-rate benchmarks.
    pub expected_outcome: Option<usize>,
}

/// An all-depolarizing noise model for the fusion benchmarks and the TVD
/// harness: every 1q gate carries a `depolarizing_1q(1 - one_qubit_fidelity)`
/// channel and every 2q gate a `depolarizing_2q(1 - two_qubit_fidelity)`
/// channel, with no relaxation (so channels stay exact unitary mixtures and
/// the scaled-unitary fast path applies). With noise on *every* gate,
/// `FusionPolicy::Safe` cannot fuse across any boundary while `Aggressive`
/// conjugates the channels past the unitaries and composes them — the widest
/// gap between the two policies, which is exactly what the
/// `noisy_trajectory_20q` bench grid and `bin/tvd` measure.
pub fn all_depolarizing_noise(
    num_qubits: usize,
    one_qubit_fidelity: f64,
    two_qubit_fidelity: f64,
) -> NoiseModel {
    use device::{EdgeCalibration, GateDurations, QubitCalibration, Topology};
    let mut topology = Topology::new(num_qubits);
    for a in 0..num_qubits {
        for b in (a + 1)..num_qubits {
            topology.add_edge(a, b);
        }
    }
    let mut edges = std::collections::BTreeMap::new();
    for (a, b) in topology.edges() {
        edges.insert((a, b), EdgeCalibration::new(two_qubit_fidelity));
    }
    let qubits = vec![QubitCalibration::new(1e6, 1e6, 0.0, one_qubit_fidelity); num_qubits];
    let device = DeviceModel::new(
        "all-depolarizing",
        topology,
        edges,
        qubits,
        GateDurations::default(),
    );
    let mut noise = NoiseModel::from_device(&device);
    noise.with_relaxation = false;
    noise
}

/// Builds the QV benchmark suite: `count` random `n`-qubit QV circuits.
pub fn qv_suite(n: usize, count: usize, seed: RngSeed) -> Vec<BenchCircuit> {
    (0..count)
        .map(|i| BenchCircuit {
            circuit: qv_circuit(n, seed.child(i as u64)),
            metric: Metric::Hop,
            expected_outcome: None,
        })
        .collect()
}

/// Builds the QAOA benchmark suite.
pub fn qaoa_suite(n: usize, count: usize, seed: RngSeed) -> Vec<BenchCircuit> {
    (0..count)
        .map(|i| BenchCircuit {
            circuit: qaoa_circuit(n, seed.child(i as u64)),
            metric: Metric::Xed,
            expected_outcome: None,
        })
        .collect()
}

/// Builds the QFT-echo benchmark suite (the paper uses one QFT circuit per
/// size; we allow several random input states).
pub fn qft_suite(n: usize, count: usize, seed: RngSeed) -> Vec<BenchCircuit> {
    (0..count)
        .map(|i| {
            let (circuit, expected) = qft_echo_circuit(n, seed.child(i as u64));
            BenchCircuit {
                circuit,
                metric: Metric::SuccessRate,
                expected_outcome: Some(expected),
            }
        })
        .collect()
}

/// Builds the Fermi–Hubbard benchmark suite.
pub fn fh_suite(n: usize, count: usize, seed: RngSeed) -> Vec<BenchCircuit> {
    (0..count)
        .map(|i| BenchCircuit {
            circuit: fermi_hubbard_circuit(n, seed.child(i as u64)),
            metric: Metric::Xeb,
            expected_outcome: None,
        })
        .collect()
}

/// Result of evaluating one instruction set on one benchmark suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SetResult {
    /// Instruction-set name.
    pub set: String,
    /// Mean metric value across circuits (higher is better).
    pub mean_metric: f64,
    /// Mean number of two-qubit hardware gates per compiled circuit.
    pub mean_two_qubit_gates: f64,
    /// Mean routing SWAPs inserted per circuit.
    pub mean_swaps: f64,
    /// Mean estimated circuit fidelity from the compiler's model.
    pub mean_estimated_fidelity: f64,
}

/// Builds a reusable [`Compiler`] for a (device, instruction set, options)
/// triple. The returned service shares its decomposition cache across every
/// compile, which is what makes repeated-workload sweeps fast.
pub fn compiler_for(
    device: &DeviceModel,
    set: &InstructionSet,
    options: &CompilerOptions,
) -> Result<Compiler, CompileError> {
    Compiler::for_device(device.clone())
        .instruction_set(set.clone())
        .options(options.clone())
        .build()
}

/// The simulation job for one compiled benchmark circuit: its physical
/// circuit under the carved-out subdevice's calibrated noise.
pub fn sim_job(compiled: &CompiledCircuit, shots: usize, seed: RngSeed) -> SimJob {
    SimJob::noisy(
        compiled.circuit.clone(),
        NoiseModel::from_device(&compiled.subdevice),
        shots,
        seed,
    )
}

/// Scores already-measured counts of a compiled benchmark circuit against the
/// ideal distribution of its logical circuit.
pub fn score_counts(bench: &BenchCircuit, compiled: &CompiledCircuit, counts: &Counts) -> f64 {
    let logical = compiled.logical_counts(counts);
    let ideal = IdealSimulator::probabilities(&bench.circuit.without_measurements());
    match bench.metric {
        Metric::Hop => heavy_output_probability(&logical, &ideal),
        Metric::Xed => cross_entropy_difference(&logical, &ideal),
        Metric::Xeb => linear_xeb_fidelity(&logical, &ideal),
        Metric::SuccessRate => success_rate(
            &logical,
            bench.expected_outcome.expect("expected outcome set"),
        ),
    }
}

/// Simulates and scores one compiled benchmark circuit (a single-job
/// [`ExecutionEngine`] run; suites should prefer
/// [`evaluate_set`] / [`ExecutionEngine::run_batch`]).
pub fn score_compiled(
    bench: &BenchCircuit,
    compiled: &CompiledCircuit,
    shots: usize,
    seed: RngSeed,
) -> f64 {
    let result = ExecutionEngine::new().run_job(&sim_job(compiled, shots, seed));
    score_counts(bench, compiled, &result.counts)
}

/// Compiles, simulates and scores one benchmark circuit with a reusable
/// compiler service.
pub fn run_circuit(
    bench: &BenchCircuit,
    compiler: &Compiler,
    shots: usize,
    seed: RngSeed,
) -> Result<(f64, CompiledCircuit), CompileError> {
    let compiled = compiler.compile(&bench.circuit)?;
    let metric = score_compiled(bench, &compiled, shots, seed);
    Ok((metric, compiled))
}

/// Evaluates an instruction set over a whole suite with a default-configured
/// [`ExecutionEngine`]. See [`evaluate_set_with_engine`].
pub fn evaluate_set(
    suite: &[BenchCircuit],
    compiler: &Compiler,
    shots: usize,
    seed: RngSeed,
) -> Result<SetResult, CompileError> {
    evaluate_set_with_engine(suite, compiler, &ExecutionEngine::new(), shots, seed)
}

/// Evaluates an instruction set over a whole suite.
///
/// The suite is compiled as one [`Compiler::compile_batch`] fan-out (worker
/// threads share the compiler's decomposition cache, so suites with repeated
/// unitaries only pay for each distinct decomposition once) and then simulated
/// as one [`ExecutionEngine::run_batch`] call: every circuit is lowered to its
/// Kraus channels once and its shots are sharded across the engine's worker
/// threads, with per-shard seed streams keeping scores independent of the
/// thread count.
pub fn evaluate_set_with_engine(
    suite: &[BenchCircuit],
    compiler: &Compiler,
    engine: &ExecutionEngine,
    shots: usize,
    seed: RngSeed,
) -> Result<SetResult, CompileError> {
    assert!(!suite.is_empty(), "benchmark suite must not be empty");
    let circuits: Vec<Circuit> = suite.iter().map(|b| b.circuit.clone()).collect();
    let compiled: Vec<CompiledCircuit> = compiler
        .compile_batch(&circuits)
        .into_iter()
        .collect::<Result<_, _>>()?;
    let jobs: Vec<SimJob> = compiled
        .iter()
        .enumerate()
        .map(|(i, c)| sim_job(c, shots, seed.child(i as u64)))
        .collect();
    let results = engine.run_batch(&jobs);
    let mut metric_sum = 0.0;
    let mut gate_sum = 0.0;
    let mut swap_sum = 0.0;
    let mut fid_sum = 0.0;
    for ((bench, compiled), result) in suite.iter().zip(compiled.iter()).zip(results.iter()) {
        metric_sum += score_counts(bench, compiled, &result.counts);
        gate_sum += compiled.two_qubit_gate_count() as f64;
        swap_sum += compiled.swap_count as f64;
        fid_sum += compiled.pass_stats.estimated_circuit_fidelity;
    }
    let n = suite.len() as f64;
    Ok(SetResult {
        set: compiler.instruction_set().name().to_string(),
        mean_metric: metric_sum / n,
        mean_two_qubit_gates: gate_sum / n,
        mean_swaps: swap_sum / n,
        mean_estimated_fidelity: fid_sum / n,
    })
}

/// Prints a results table in the style of the paper's bar-chart annotations
/// (metric value plus the two-qubit instruction count above each bar).
pub fn print_results(title: &str, metric: Metric, results: &[SetResult]) {
    println!("\n== {title} ==");
    println!(
        "{:<10} {:>14} {:>12} {:>10} {:>12}",
        "set",
        metric.name(),
        "2Q gates",
        "SWAPs",
        "est. fid."
    );
    for r in results {
        println!(
            "{:<10} {:>14.4} {:>12.1} {:>10.1} {:>12.4}",
            r.set, r.mean_metric, r.mean_two_qubit_gates, r.mean_swaps, r.mean_estimated_fidelity
        );
    }
}

/// Prints results as CSV (for plotting).
pub fn print_csv(metric: Metric, results: &[SetResult]) {
    println!(
        "set,{},two_qubit_gates,swaps,estimated_fidelity",
        metric.name().replace(' ', "_")
    );
    for r in results {
        println!(
            "{},{:.6},{:.3},{:.3},{:.6}",
            r.set, r.mean_metric, r.mean_two_qubit_gates, r.mean_swaps, r.mean_estimated_fidelity
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks_values() {
        assert_eq!(Scale::Small.pick(3, 100), 3);
        assert_eq!(Scale::Paper.pick(3, 100), 100);
        assert!(Scale::Small.shots() < Scale::Paper.shots());
    }

    #[test]
    fn suites_have_requested_sizes_and_metrics() {
        let qv = qv_suite(3, 4, RngSeed(1));
        assert_eq!(qv.len(), 4);
        assert!(qv.iter().all(|b| b.metric == Metric::Hop));
        let qft = qft_suite(3, 2, RngSeed(2));
        assert!(qft.iter().all(|b| b.expected_outcome.is_some()));
        let fh = fh_suite(4, 2, RngSeed(3));
        assert!(fh.iter().all(|b| b.metric == Metric::Xeb));
        let qaoa = qaoa_suite(4, 2, RngSeed(4));
        assert!(qaoa.iter().all(|b| b.metric == Metric::Xed));
    }

    #[test]
    fn evaluate_set_produces_sane_numbers() {
        let device = DeviceModel::aspen8(RngSeed(5));
        let suite = qaoa_suite(3, 2, RngSeed(6));
        let compiler =
            compiler_for(&device, &InstructionSet::s(3), &CompilerOptions::sweep()).unwrap();
        let result = evaluate_set(&suite, &compiler, 200, RngSeed(7)).unwrap();
        assert_eq!(result.set, "S3");
        assert!(result.mean_two_qubit_gates >= suite[0].circuit.two_qubit_gate_count() as f64);
        assert!(result.mean_estimated_fidelity > 0.0 && result.mean_estimated_fidelity <= 1.0);
        assert!(result.mean_metric.is_finite());
    }

    #[test]
    fn evaluate_set_surfaces_compile_errors() {
        let device = DeviceModel::ideal(2, 0.99);
        let suite = qaoa_suite(3, 1, RngSeed(8)); // needs 3 qubits
        let compiler =
            compiler_for(&device, &InstructionSet::s(3), &CompilerOptions::sweep()).unwrap();
        assert!(matches!(
            evaluate_set(&suite, &compiler, 50, RngSeed(9)),
            Err(CompileError::RegionUnavailable { .. })
        ));
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn engine_args_parse_fusion_and_threads() {
        let engine =
            engine_from_arg_list(&args(&["fig", "--fusion", "off", "--sim-threads", "3"])).unwrap();
        assert_eq!(engine.fusion(), FusionPolicy::Off);
        assert_eq!(engine.threads(), 3);
        // Defaults with no flags at all.
        let engine = engine_from_arg_list(&args(&["fig"])).unwrap();
        assert_eq!(engine.fusion(), FusionPolicy::Safe);
        // Later occurrences win, like most CLI parsers.
        let engine =
            engine_from_arg_list(&args(&["fig", "--fusion", "off", "--fusion", "safe"])).unwrap();
        assert_eq!(engine.fusion(), FusionPolicy::Safe);
    }

    #[test]
    fn malformed_engine_args_are_rejected_not_ignored() {
        // `--sim-threads x` used to silently fall back to the default; now it
        // is a typed error with the offending value in the message.
        let err = engine_from_arg_list(&args(&["fig", "--sim-threads", "x"])).unwrap_err();
        assert_eq!(err.flag, "--sim-threads");
        assert!(err.to_string().contains("\"x\""));
        assert!(err.to_string().contains("positive integer"));

        let err = engine_from_arg_list(&args(&["fig", "--sim-threads", "0"])).unwrap_err();
        assert!(err.to_string().contains("\"0\""));

        let err = engine_from_arg_list(&args(&["fig", "--fusion", "blah"])).unwrap_err();
        assert_eq!(err.flag, "--fusion");
        assert!(err.to_string().contains("off|safe"));

        // A trailing flag with no value is also an error.
        let err = engine_from_arg_list(&args(&["fig", "--sim-threads"])).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
        let err = engine_from_arg_list(&args(&["fig", "--fusion"])).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn scale_args_parse_and_reject() {
        assert_eq!(
            Scale::try_from_arg_list(&args(&["fig", "--scale", "paper"])).unwrap(),
            Scale::Paper
        );
        assert_eq!(
            Scale::try_from_arg_list(&args(&["fig", "--scale", "SMALL"])).unwrap(),
            Scale::Small
        );
        assert_eq!(
            Scale::try_from_arg_list(&args(&["fig"])).unwrap(),
            Scale::Small
        );
        let err = Scale::try_from_arg_list(&args(&["fig", "--scale", "bogus"])).unwrap_err();
        assert_eq!(err.flag, "--scale");
        assert!(err.to_string().contains("small|paper"));
        let err = Scale::try_from_arg_list(&args(&["fig", "--scale"])).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::Hop.name(), "HOP");
        assert_eq!(Metric::SuccessRate.name(), "success rate");
    }

    #[test]
    fn trace_flag_is_optional_and_rejects_unwritable_paths() {
        assert!(trace_sink_from_arg_list(&args(&["fig"])).unwrap().is_none());
        let err = trace_sink_from_arg_list(&args(&["fig", "--trace", "/nonexistent-dir/x.json"]))
            .unwrap_err();
        assert_eq!(err.flag, "--trace");
        assert!(err.to_string().contains("writable file path"));
        let err = trace_sink_from_arg_list(&args(&["fig", "--trace"])).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn traced_engine_writes_perfetto_loadable_json() {
        let path = std::env::temp_dir().join("bench-lib-trace-test.json");
        let path_str = path.to_str().unwrap().to_string();
        let (engine, sink) =
            engine_and_trace_from_arg_list(&args(&["fig", "--trace", &path_str])).unwrap();
        let sink = sink.expect("--trace yields a sink");
        assert_eq!(sink.path(), path_str);
        // Run one tiny job through the traced engine, then write the sink.
        let mut circuit = Circuit::new(2);
        circuit.push(circuit::Operation::h(0));
        circuit.measure_all();
        engine.run_job(&SimJob::ideal(circuit, 16, RngSeed(1)));
        assert!(!sink.collector().completed_spans().is_empty());
        sink.write().unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.starts_with("{\"traceEvents\":["));
        assert!(written.contains("\"name\":\"simulate\""));
        let _ = std::fs::remove_file(&path);
    }
}
