//! Figure 2: example decompositions of a QV (SU(4)) unitary and a QAOA (ZZ)
//! unitary into CZ and sqrt(iSWAP) hardware gates using NuOp.

use gates::{standard, GateType};
use nuop_core::{decompose_fixed, DecomposeConfig};
use qmath::{haar_random_su4, hilbert_schmidt_fidelity, Mat4, RngSeed};

fn report(title: &str, target: &Mat4, gate: &GateType, cfg: &DecomposeConfig) {
    let d = decompose_fixed(target, gate, cfg);
    let realized = d.realized_unitary();
    println!(
        "\n{title} with {}: {} two-qubit gates, F_d = {:.8}, |1 - F| = {:.2e}",
        gate.name(),
        d.layers,
        d.decomposition_fidelity,
        1.0 - hilbert_schmidt_fidelity(&realized, target)
    );
    for op in d.to_operations(0, 1) {
        println!("  {op}");
    }
}

fn main() {
    let cfg = DecomposeConfig::default();
    let mut rng = RngSeed(0xF16).rng();
    let qv = haar_random_su4(&mut rng);
    let qaoa = standard::zz_interaction(0.0303);

    println!("Figure 2: decomposition examples (paper Fig. 2)");
    report("(c) QV unitary", &qv, &GateType::cz(), &cfg);
    report(
        "(d) QAOA unitary exp(-0.0303 i ZZ)",
        &qaoa,
        &GateType::cz(),
        &cfg,
    );
    report("(e) QV unitary", &qv, &GateType::sqrt_iswap(), &cfg);
    report(
        "(f) QAOA unitary exp(-0.0303 i ZZ)",
        &qaoa,
        &GateType::sqrt_iswap(),
        &cfg,
    );
    println!("\nExpected shape (paper): QV needs 3 gates with either type; the QAOA");
    println!("interaction needs 2 CZ but 3 sqrt_iSWAP gates -- CZ is the more");
    println!("expressive type for QAOA, sqrt_iSWAP-family types for QV.");
}
