//! Figure 10 (a-e): application reliability on the Google Sycamore model for
//! S1-S7, G1-G7 and FullfSim, including the error-inflated continuous set
//! (1.5x/2x/2.5x/3x) and the no-noise-variation ablation.

use bench::{
    compiler_for, evaluate_set, fh_suite, print_results, qaoa_suite, qft_suite, qv_suite, Metric,
    Scale, SetResult,
};
use compiler::Compiler;
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

fn google_sets() -> Vec<InstructionSet> {
    let mut sets: Vec<InstructionSet> = (1..=7).map(InstructionSet::s).collect();
    sets.extend((1..=7).map(InstructionSet::g));
    sets.push(InstructionSet::full_fsim());
    sets
}

fn main() {
    let scale = Scale::from_args();
    let circuits = scale.pick(3, 100);
    let shots = scale.pick(300, 10000);
    let (qv_n, qaoa_n, qft_n, fh_n) = match scale {
        Scale::Small => (3usize, 3usize, 3usize, 4usize),
        Scale::Paper => (6, 6, 6, 10),
    };
    let seed = RngSeed(0xF10);
    let device = DeviceModel::sycamore(seed.child(0));
    let options = scale.compiler_options();

    let experiments = [
        (
            "(a) QV on Sycamore",
            Metric::Hop,
            qv_suite(qv_n, circuits, seed.child(1)),
        ),
        (
            "(b) QAOA on Sycamore",
            Metric::Xed,
            qaoa_suite(qaoa_n, circuits, seed.child(2)),
        ),
        (
            "(c) QFT on Sycamore",
            Metric::SuccessRate,
            qft_suite(qft_n, circuits.min(2), seed.child(3)),
        ),
        (
            "(d) Fermi-Hubbard on Sycamore",
            Metric::Xeb,
            fh_suite(fh_n, circuits.min(2), seed.child(4)),
        ),
    ];
    // Long-lived compilers, reused across all four experiment suites: one per
    // Google set plus one per error-inflated continuous-set device variant.
    let compilers: Vec<Compiler> = google_sets()
        .iter()
        .map(|set| compiler_for(&device, set, &options).expect("valid compiler configuration"))
        .collect();
    let inflated_compilers: Vec<(f64, Compiler)> = [1.5, 2.0, 2.5, 3.0]
        .into_iter()
        .map(|factor| {
            let inflated = device.with_error_scale(factor);
            let compiler = compiler_for(&inflated, &InstructionSet::full_fsim(), &options)
                .expect("valid compiler configuration");
            (factor, compiler)
        })
        .collect();
    for (title, metric, suite) in &experiments {
        let mut results: Vec<SetResult> = compilers
            .iter()
            .map(|compiler| {
                evaluate_set(suite, compiler, shots, seed.child(7)).expect("suite compiles")
            })
            .collect();
        // Error-inflated continuous set (the 1.5x-3x bars of Fig. 10a-c).
        for (factor, compiler) in &inflated_compilers {
            let mut r =
                evaluate_set(suite, compiler, shots, seed.child(8)).expect("suite compiles");
            r.set = format!("Full x{factor}");
            results.push(r);
        }
        print_results(title, *metric, &results);
    }

    // (e) ablation: no noise variation across gate types.
    let flat = device.without_noise_variation();
    let suite = qaoa_suite(qaoa_n, circuits, seed.child(2));
    let results: Vec<SetResult> = google_sets()
        .iter()
        .map(|set| {
            let compiler =
                compiler_for(&flat, set, &options).expect("valid compiler configuration");
            evaluate_set(&suite, &compiler, shots, seed.child(9)).expect("suite compiles")
        })
        .collect();
    print_results(
        "(e) QAOA, no noise variation across gate types",
        Metric::Xed,
        &results,
    );

    println!("\nExpected shape (paper Fig. 10): G1-G7 beat S1-S7; G7 (native SWAP)");
    println!("matches FullfSim; the continuous set loses its edge once its average");
    println!("error rate is inflated 1.5-2.5x; and without noise variation the gains");
    println!("of G1-G6 shrink while G7 still stands out.");
}
