//! Table II: the instruction sets studied in this work, with their member
//! gate types and calibration-model cost.

use calibration::CalibrationModel;
use gates::InstructionSet;

fn main() {
    let model = CalibrationModel::default();
    println!("Table II: instruction sets studied (see paper Table II)");
    println!(
        "{:<10} {:>6} {:>18} {:>16}  members",
        "set", "types", "cal. circuits(54q)", "cal. hours"
    );
    for set in InstructionSet::table2() {
        let types = set
            .num_gate_types()
            .map_or_else(|| "inf".to_string(), |n| n.to_string());
        let circuits = model.circuits_for_set(&set, 54);
        let hours = model.hours_for_set(&set);
        let members = if set.is_continuous() {
            set.family()
                .map(|f| f.name().to_string())
                .unwrap_or_default()
        } else {
            set.gate_types()
                .iter()
                .map(|g| g.name().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "{:<10} {:>6} {:>18.2e} {:>16.1}  {{{members}}}",
            set.name(),
            types,
            circuits,
            hours
        );
    }
}
