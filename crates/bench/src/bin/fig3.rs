//! Figure 3: layout and per-edge calibrated fidelities of the first eight
//! qubits (one octagon) of Rigetti Aspen-8.

use device::DeviceModel;
use qmath::RngSeed;

fn main() {
    let device = DeviceModel::aspen8(RngSeed(1));
    println!("Figure 3: Aspen-8 first ring calibration (paper Fig. 3)");
    println!("{:<8} {:>10} {:>10}  best gate", "edge", "XY(pi)", "CZ");
    use nuop_core::HardwareFidelityProvider as _;
    for i in 0..8usize {
        let a = i;
        let b = (i + 1) % 8;
        let edge = device.edge(a, b).expect("ring edge");
        let has_xy = edge.calibrated_gates().any(|(name, _)| name == "XY(pi)");
        let xy = if has_xy {
            device.two_qubit_fidelity(a, b, "XY(pi)")
        } else {
            0.0
        };
        let cz = device.two_qubit_fidelity(a, b, "CZ");
        let best = if xy > cz { "XY(pi)" } else { "CZ" };
        println!(
            "{:<8} {:>10.2} {:>10.2}  {best}",
            format!("({a},{b})"),
            xy,
            cz
        );
    }
    println!("\nThe best gate type varies across qubit pairs, which is what makes");
    println!("noise-adaptive gate-type selection (Section V.B) profitable.");
}
