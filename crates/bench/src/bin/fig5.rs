//! Figure 5: noise-adaptive approximate decomposition of a 3-qubit circuit on
//! Aspen-8 qubits [2, 3, 4] -- the chosen gate type differs per qubit pair.

use device::DeviceModel;
use gates::GateType;
use nuop_core::{decompose_with_gate_choice, DecomposeConfig, HardwareGate};
use qmath::{haar_random_su4, RngSeed};

fn main() {
    let device = DeviceModel::aspen8(RngSeed(1));
    let cfg = DecomposeConfig::default();
    let mut rng = RngSeed(0xF5).rng();
    let su4 = haar_random_su4(&mut rng);

    println!("Figure 5: noise-adaptive decomposition on Aspen-8 qubits [2,3,4]");
    use nuop_core::HardwareFidelityProvider as _;
    for (a, b) in [(2usize, 3usize), (3, 4)] {
        let candidates = vec![
            HardwareGate::new(GateType::cz(), device.two_qubit_fidelity(a, b, "CZ")),
            HardwareGate::new(GateType::iswap(), device.two_qubit_fidelity(a, b, "XY(pi)")),
        ];
        let choice = decompose_with_gate_choice(&su4, &candidates, &cfg);
        println!(
            "\npair ({a},{b}): CZ fid {:.2}, XY(pi) fid {:.2}  ->  chose {} ({} gates, F_d={:.4}, F_h={:.4}, F_u={:.4})",
            candidates[0].fidelity,
            candidates[1].fidelity,
            choice.chosen_gate,
            choice.decomposition.layers,
            choice.decomposition.decomposition_fidelity,
            choice.decomposition.hardware_fidelity,
            choice.decomposition.overall_fidelity,
        );
        println!(
            "   candidate overall fidelities: {:?}",
            choice.candidate_fidelities
        );
    }
    println!("\nExpected shape (paper Fig. 5): whichever gate type is better calibrated on");
    println!("a pair wins on that pair -- CZ on the pair where CZ is stronger, the");
    println!("XY/iSWAP type on the pair where it is stronger -- and the approximate mode");
    println!("uses fewer gates than an exact decomposition would.");
}
