//! Figure 8: expressivity heatmaps -- average two-qubit gate count needed to
//! decompose QV / QAOA / QFT / FH / SWAP unitaries into each point of the
//! fSim(theta, phi) parameter plane.

use apps::workloads::{unitary_pool, Workload};
use bench::Scale;
use gates::fsim::grid;
use gates::GateType;
use nuop_core::{decompose_fixed, DecomposeConfig};
use qmath::RngSeed;

fn main() {
    let scale = Scale::from_args();
    // Paper: 19x19 grid, 1000 QV + 1000 QAOA + 10 QFT + 60 FH unitaries.
    let grid_n = scale.pick(7, 19);
    let pool_size = scale.pick(4, 60);
    let cfg = DecomposeConfig::sweep();
    let seed = RngSeed(0xF8);

    println!("Figure 8: average two-qubit gate count over the fSim(theta, phi) plane");
    println!("grid: {grid_n}x{grid_n}, unitaries per workload: {pool_size}");
    println!("CSV columns: workload,theta,phi,mean_gate_count");
    for workload in Workload::all() {
        let pool = unitary_pool(workload, pool_size, seed.child(workload as u64));
        for point in grid(grid_n, grid_n) {
            let gate = GateType::from_fsim(
                format!("fSim({:.3},{:.3})", point.theta, point.phi),
                point.theta,
                point.phi,
            );
            let mean: f64 = pool
                .iter()
                .map(|u| {
                    let d = decompose_fixed(u, &gate, &cfg);
                    if d.decomposition_fidelity >= cfg.fidelity_threshold {
                        d.layers as f64
                    } else {
                        // The target is not expressible with this gate type
                        // within the layer budget (e.g. entangling targets at
                        // the identity corner of the plane): censor at the
                        // budget, mirroring the paper's saturated color scale.
                        (cfg.max_layers + 1) as f64
                    }
                })
                .sum::<f64>()
                / pool.len() as f64;
            println!(
                "{},{:.4},{:.4},{:.3}",
                workload.name(),
                point.theta,
                point.phi,
                mean
            );
        }
    }
    eprintln!("\nExpected shape (paper Fig. 8): QV unitaries are cheapest near");
    eprintln!("fSim(5pi/12,0) and fSim(pi/6,pi) (~2 gates); QAOA near CZ and iSWAP;");
    eprintln!("FH near sqrt_iSWAP; SWAP costs 3 gates over most of the plane but 1 at");
    eprintln!("fSim(pi/2,pi).");
}
