//! Figure 7: exact vs approximate decomposition as a function of the mean
//! hardware error rate (multiples of the SYC 0.62% error), scored by QV HOP
//! and QAOA XED on the Sycamore model.

use bench::{
    compiler_for, engine_and_trace_from_args, evaluate_set_with_engine, qaoa_suite, qv_suite,
    write_trace_or_exit, Scale,
};
use compiler::CompilerOptions;
use device::DeviceModel;
use gates::InstructionSet;
use nuop_core::DecomposeConfig;
use qmath::RngSeed;
use sim::ExecutionEngine;

fn main() {
    let scale = Scale::from_args();
    let circuits = scale.pick(4, 100);
    let shots = scale.pick(300, 10000);
    let (qv_n, qaoa_n) = match scale {
        Scale::Small => (3, 3),
        Scale::Paper => (5, 4),
    };
    let seed = RngSeed(0xF7);
    let qv = qv_suite(qv_n, circuits, seed.child(1));
    let qaoa = qaoa_suite(qaoa_n, circuits, seed.child(2));
    let set = InstructionSet::s(1); // SYC
                                    // Honours --fusion off|safe, --sim-threads N (neither changes
                                    // counts) and --trace <path> (Trace Event JSON of the run).
    let (engine, trace) = engine_and_trace_from_args();

    let exact_options = CompilerOptions {
        decompose: DecomposeConfig {
            // Exact mode: ignore hardware fidelity when choosing layer counts.
            one_qubit_fidelity: 1.0,
            ..scale.compiler_options().decompose
        },
        ..scale.compiler_options()
    };

    println!("Figure 7: exact vs approximate decomposition vs hardware error rate");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "error scale (x0.62%)", "QV approx", "QV exact", "QAOA approx", "QAOA exact"
    );
    for factor in [0.5, 1.0, 2.0, 4.0] {
        let device = DeviceModel::sycamore(seed.child(3)).with_error_scale(factor);
        // Approximate mode (Eq. 2): the default pipeline. One compiler serves
        // both suites, sharing its decomposition cache.
        let approx_compiler = compiler_for(&device, &set, &scale.compiler_options())
            .expect("valid compiler configuration");
        let qv_a = evaluate_set_with_engine(&qv, &approx_compiler, &engine, shots, seed.child(10))
            .expect("suite compiles");
        let qaoa_a =
            evaluate_set_with_engine(&qaoa, &approx_compiler, &engine, shots, seed.child(11))
                .expect("suite compiles");
        // Exact mode: compile against a perfect-fidelity view of the device so
        // the decomposition never trades accuracy for gate count, then run on
        // the noisy device.
        let qv_e = evaluate_exact(
            &qv,
            &device,
            &set,
            &exact_options,
            &engine,
            shots,
            seed.child(12),
        );
        let qaoa_e = evaluate_exact(
            &qaoa,
            &device,
            &set,
            &exact_options,
            &engine,
            shots,
            seed.child(13),
        );
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            format!("{factor:.1}x"),
            qv_a.mean_metric,
            qv_e,
            qaoa_a.mean_metric,
            qaoa_e
        );
    }
    println!("\nExpected shape (paper Fig. 7): the two modes tie at low error rates and");
    println!("the approximate mode pulls ahead as error rates grow past ~0.62%.");
    write_trace_or_exit(&trace);
}

fn evaluate_exact(
    suite: &[bench::BenchCircuit],
    device: &DeviceModel,
    set: &InstructionSet,
    options: &CompilerOptions,
    engine: &ExecutionEngine,
    shots: usize,
    seed: RngSeed,
) -> f64 {
    use sim::{NoiseModel, SimJob};
    // Compile against a zero-error view (exact decomposition), execute on
    // the real noisy device calibration.
    let perfect = device.without_noise_variation().with_error_scale(0.0);
    let exact_compiler =
        compiler_for(&perfect, set, options).expect("valid compiler configuration");
    let compiled: Vec<_> = suite
        .iter()
        .map(|bench_circuit| {
            exact_compiler
                .compile(&bench_circuit.circuit)
                .expect("suite compiles")
        })
        .collect();
    // One batched simulation across the whole suite: each job carries the
    // *noisy* calibration of the region the exact compiler picked.
    let jobs: Vec<SimJob> = compiled
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let noisy_sub = device.subdevice(&c.region);
            SimJob::noisy(
                c.circuit.clone(),
                NoiseModel::from_device(&noisy_sub),
                shots,
                seed.child(i as u64),
            )
        })
        .collect();
    let results = engine.run_batch(&jobs);
    let total: f64 = suite
        .iter()
        .zip(compiled.iter())
        .zip(results.iter())
        .map(|((bench_circuit, c), result)| bench::score_counts(bench_circuit, c, &result.counts))
        .sum();
    total / suite.len() as f64
}
