//! Statistical fusion-equivalence harness: `Aggressive` fusion rewrites the
//! channel stream (conjugation past unitaries, composition, tensor
//! embedding), so its RNG consumption differs from `Safe` and counts are
//! compared statistically instead of bit-exactly. The harness runs the same
//! seed-pinned noisy layered workload under both policies, measures the
//! empirical total-variation distance between the two count histograms, and
//! checks it against the analytic two-sample concentration bound from
//! [`verify::tvd_bound`] (the `fusion/tvd-bound` rule, per-qubit marginals
//! plus the full distribution when samples allow).
//!
//! ```text
//! cargo run --release -p bench --bin tvd -- --smoke   # CI: 4 qubits, 800 shots
//! cargo run --release -p bench --bin tvd              # 6 qubits, 4000 shots
//! ```
//!
//! A JSON report is printed to stdout; the process exits nonzero when the
//! statistical verifier reports an error-level finding (observed TVD above
//! the bound — the distributions are identical by construction, so that
//! would mean the aggressive lowering changed the sampled distribution).

use bench::{all_depolarizing_noise, trace_sink_from_args, write_trace_or_exit};
use circuit::{Circuit, Operation};
use qmath::RngSeed;
use sim::{ExecutionEngine, FusionPolicy, SimJob};
use verify::{two_sample_tvd, Artifact, DistributionArtifact, Severity, Verifier};

/// The same layered shape as the statevector benches: rotation layers
/// interleaved with CNOT chains, so `Aggressive` has channels to carry and
/// compose while `Safe` leaves every entangler's channel pinned in place.
fn layered_circuit(n: usize, rounds: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for r in 0..rounds {
        for q in 0..n {
            c.push(Operation::rx(q, 0.1 + (q + r) as f64 * 0.07));
        }
        for q in 1..n {
            c.push(Operation::cnot(q - 1, q));
        }
        for q in 0..n {
            c.push(Operation::rz(q, 0.3 + (q * (r + 1)) as f64 * 0.05));
        }
    }
    c.measure_all();
    c
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // --trace <path>: record simulate/shard spans of both policy runs.
    let trace = trace_sink_from_args();
    let (num_qubits, rounds, shots) = if smoke { (4, 2, 800) } else { (6, 3, 4000) };

    // Noise on every gate: `Safe` cannot fuse across any channel while
    // `Aggressive` composes and tensor-embeds them, merging RNG draws — so
    // the two policies genuinely consume different random streams and the
    // comparison exercises the statistical (not bit-exact) pathway.
    let noise = all_depolarizing_noise(num_qubits, 0.999, 0.95);
    let job = SimJob::noisy(
        layered_circuit(num_qubits, rounds),
        noise,
        shots,
        RngSeed(29),
    );
    let run = |policy: FusionPolicy| {
        let mut builder = ExecutionEngine::builder().fusion(policy);
        if let Some(trace) = &trace {
            builder = builder.telemetry(std::sync::Arc::clone(trace.collector()));
        }
        builder
            .build()
            .expect("default engine knobs are a valid config")
            .run_job(&job)
    };
    let safe = run(FusionPolicy::Safe);
    let aggressive = run(FusionPolicy::Aggressive);

    let counts_a: Vec<(usize, usize)> = safe.counts.iter().collect();
    let counts_b: Vec<(usize, usize)> = aggressive.counts.iter().collect();
    let tvd = two_sample_tvd(&counts_a, &counts_b);
    let artifact = DistributionArtifact {
        num_qubits,
        label_a: "safe-fusion sample",
        label_b: "aggressive-fusion sample",
        counts_a: &counts_a,
        counts_b: &counts_b,
    };
    let report = Verifier::statistical().run(&Artifact::Distributions(&artifact));
    let errors = report
        .diagnostics()
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();

    println!("{{");
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!("  \"num_qubits\": {num_qubits},");
    println!("  \"shots_per_policy\": {shots},");
    println!("  \"fused_ops_safe\": {},", safe.report.fused_ops);
    println!(
        "  \"fused_ops_aggressive\": {},",
        aggressive.report.fused_ops
    );
    println!("  \"observed_tvd\": {tvd:.6},");
    println!("  \"error_findings\": {errors},");
    println!("  \"diagnostics\": [");
    let diags = report.diagnostics();
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 < diags.len() { "," } else { "" };
        println!(
            "    {{\"rule\": \"{}\", \"severity\": \"{:?}\", \"message\": \"{}\"}}{comma}",
            d.rule(),
            d.severity(),
            d.message().replace('"', "'")
        );
    }
    println!("  ]");
    println!("}}");

    write_trace_or_exit(&trace);
    if report.has_errors() {
        eprintln!("tvd: observed distance exceeded the analytic bound");
        std::process::exit(1);
    }
}
