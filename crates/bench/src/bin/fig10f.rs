//! Figure 10f: Fermi-Hubbard fidelity for the multi-type set G7 vs the
//! single-type set S2 as the mean two-qubit error rate is swept from 0.36%
//! down to 0.0225%, for 10- and 20-qubit chains.

use bench::{compiler_for, evaluate_set, fh_suite, Scale};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

fn main() {
    let scale = Scale::from_args();
    let circuits = scale.pick(1, 5);
    let shots = scale.pick(100, 2000);
    let sizes: Vec<usize> = match scale {
        Scale::Small => vec![6],
        Scale::Paper => vec![10, 20],
    };
    let seed = RngSeed(0xF10F);
    let base = DeviceModel::sycamore(seed.child(0));
    let base_error = 1.0 - base.mean_two_qubit_fidelity();
    let options = scale.compiler_options();

    println!("Figure 10f: FH fidelity vs mean two-qubit error rate");
    println!(
        "{:<10} {:>22} {:>12} {:>12}",
        "qubits", "mean 2q error (%)", "G7", "S2"
    );
    for &n in &sizes {
        let suite = fh_suite(n, circuits, seed.child(n as u64));
        for target_error in [0.0036, 0.0018, 0.0009, 0.00045, 0.000225] {
            let device = base.with_error_scale(target_error / base_error);
            let g7_compiler = compiler_for(&device, &InstructionSet::g(7), &options)
                .expect("valid compiler configuration");
            let s2_compiler = compiler_for(&device, &InstructionSet::s(2), &options)
                .expect("valid compiler configuration");
            let g7 =
                evaluate_set(&suite, &g7_compiler, shots, seed.child(1)).expect("suite compiles");
            let s2 =
                evaluate_set(&suite, &s2_compiler, shots, seed.child(2)).expect("suite compiles");
            println!(
                "{:<10} {:>22.4} {:>12.4} {:>12.4}",
                n,
                target_error * 100.0,
                g7.mean_metric,
                s2.mean_metric
            );
        }
    }
    println!("\nExpected shape (paper Fig. 10f): G7 outperforms S2 at every noise level,");
    println!("with the largest advantage (up to ~1.7x) at today's error rates and a");
    println!("shrinking gap as hardware improves.");
}
