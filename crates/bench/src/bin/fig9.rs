//! Figure 9: application reliability on the Rigetti Aspen-8 model for
//! single-type sets (S2-S6), Rigetti multi-type sets (R1-R5) and FullXY.
//! (a) 3-qubit QV HOP, (b) 4-qubit QAOA XED, (c) 3-qubit QFT success rate.

use bench::{
    compiler_for, engine_and_trace_from_args, evaluate_set_with_engine, print_results, qaoa_suite,
    qft_suite, qv_suite, write_trace_or_exit, Metric, Scale,
};
use compiler::Compiler;
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

fn rigetti_sets() -> Vec<InstructionSet> {
    let mut sets: Vec<InstructionSet> = (2..=6).map(InstructionSet::s).collect();
    sets.extend((1..=5).map(InstructionSet::r));
    sets.push(InstructionSet::full_xy());
    sets
}

fn main() {
    let scale = Scale::from_args();
    let circuits = scale.pick(4, 100);
    let qft_instances = scale.pick(2, 1);
    let shots = scale.pick(300, 10000);
    let seed = RngSeed(0xF9);
    let device = DeviceModel::aspen8(seed.child(0));
    let options = scale.compiler_options();
    // Honours --fusion off|safe, --sim-threads N (neither changes counts)
    // and --trace <path> (Trace Event JSON of the run).
    let (engine, trace) = engine_and_trace_from_args();

    let experiments = [
        (
            "(a) 3-qubit QV on Aspen-8",
            Metric::Hop,
            qv_suite(3, circuits, seed.child(1)),
        ),
        (
            "(b) 4-qubit QAOA on Aspen-8",
            Metric::Xed,
            qaoa_suite(4, circuits, seed.child(2)),
        ),
        (
            "(c) 3-qubit QFT on Aspen-8",
            Metric::SuccessRate,
            qft_suite(3, qft_instances.max(1), seed.child(3)),
        ),
    ];
    // One long-lived compiler per instruction set: its decomposition cache is
    // shared across all three experiment suites.
    let compilers: Vec<Compiler> = rigetti_sets()
        .iter()
        .map(|set| compiler_for(&device, set, &options).expect("valid compiler configuration"))
        .collect();
    for (title, metric, suite) in experiments {
        let results: Vec<_> = compilers
            .iter()
            .map(|compiler| {
                evaluate_set_with_engine(&suite, compiler, &engine, shots, seed.child(7))
                    .expect("suite compiles")
            })
            .collect();
        print_results(title, metric, &results);
    }
    println!("\nExpected shape (paper Fig. 9): multi-type sets R1-R5 beat the");
    println!("single-type sets; only R3-R5 cross the HOP=2/3 threshold; R5 (native");
    println!("SWAP) approaches FullXY in both reliability and instruction count.");
    write_trace_or_exit(&trace);
}
