//! Table I: current and anticipated two-qubit gate types in Rigetti and Google
//! systems, printed with their unitaries and fSim coordinates.

use gates::fsim::{fsim, xy};
use gates::GateType;

fn print_gate(name: &str, m: &qmath::Mat4) {
    println!("\n{name}:");
    for r in 0..4 {
        let row: Vec<String> = (0..4)
            .map(|c| format!("{:>18}", format!("{}", m[(r, c)])))
            .collect();
        println!("  [{}]", row.join(" "));
    }
}

fn main() {
    println!("Table I: two-qubit gate types (see paper Table I)");
    print_gate(
        "CZ (Rigetti current / Google current)",
        GateType::cz().unitary(),
    );
    print_gate("XY(pi) (Rigetti current)", &xy(std::f64::consts::PI));
    print_gate(
        "XY(theta=pi/2) (Rigetti anticipated family sample)",
        &xy(std::f64::consts::FRAC_PI_2),
    );
    print_gate(
        "SYC = fSim(pi/2, pi/6) (Google current)",
        GateType::syc().unitary(),
    );
    print_gate(
        "sqrt_iSWAP = fSim(pi/4, 0) (Google current)",
        GateType::sqrt_iswap().unitary(),
    );
    print_gate(
        "fSim(theta=pi/5, phi=pi/3) (Google anticipated family sample)",
        &fsim(std::f64::consts::PI / 5.0, std::f64::consts::PI / 3.0),
    );
    println!("\nFidelities assumed in this study (paper Table I / Section VI):");
    println!("  Rigetti current XY(pi)/CZ : ~95%  (per-edge values of Fig. 3)");
    println!("  Rigetti anticipated XY(theta): 95-99% (uniform)");
    println!("  Google SYC               : ~99.4%");
    println!("  Google other fSim types  : error ~ N(0.62%, 0.24%)");
}
