//! Static-verification audit: sweep the paper's instruction sets over
//! fig7/fig9-style workloads and prove every compiled and lowered artifact
//! legal — without executing a single shot.
//!
//! For every Table II instruction set × {QV, QAOA} workload the audit
//! compiles with per-stage verification enabled (coupling legality, gate-set
//! conformance, layout bijections, swap consistency), then lowers the
//! compiled circuit under both fusion policies and runs the semantic kernel
//! rules (unitarity, Kraus completeness, fused-vs-unfused equivalence and
//! RNG-draw-order fidelity).
//!
//! A machine-readable JSON report is printed to stdout after the sweep. The
//! process exits nonzero when any error-level finding survives, so CI can
//! gate on it directly:
//!
//! ```text
//! cargo run -p bench --bin audit -- --smoke   # CI: tiny sweep, fail on Error
//! cargo run -p bench --bin audit             # full small-scale sweep
//! cargo run -p bench --bin audit -- --scale paper
//! ```

use bench::{qaoa_suite, qv_suite, trace_sink_from_args, write_trace_or_exit, BenchCircuit, Scale};
use compiler::{CompiledCircuit, Compiler, VerifyLevel};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;
use sim::{FusionPolicy, NoiseModel, PrecompiledCircuit};
use verify::{Diagnostic, Severity};

/// One finding plus the sweep coordinates it was found at.
struct Located {
    set: String,
    workload: &'static str,
    fusion: &'static str,
    phase: &'static str,
    diagnostic: Diagnostic,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    // --trace <path>: record per-pass compiler spans as Trace Event JSON.
    let trace = trace_sink_from_args();
    let seed = RngSeed(0xA0D1);

    let sets: Vec<InstructionSet> = if smoke {
        // The CI smoke slice: one single-type set, one multi-type discrete
        // set and one continuous family — every rule family gets exercised.
        vec![
            InstructionSet::s(1),
            InstructionSet::r(2),
            InstructionSet::full_xy(),
        ]
    } else {
        InstructionSet::table2()
    };
    let circuits = if smoke { 1 } else { scale.pick(2, 8) };
    let n = 3;
    let workloads: [(&str, Vec<BenchCircuit>); 2] = [
        ("qv", qv_suite(n, circuits, seed.child(1))),
        ("qaoa", qaoa_suite(n, circuits, seed.child(2))),
    ];
    let device = DeviceModel::sycamore(seed.child(3));
    let options = scale.compiler_options();

    let mut findings: Vec<Located> = Vec::new();
    let mut combinations = 0usize;
    for set in &sets {
        let mut builder = Compiler::for_device(device.clone())
            .instruction_set(set.clone())
            .options(options.clone())
            .verify(VerifyLevel::PerStage);
        if let Some(trace) = &trace {
            builder = builder.telemetry(std::sync::Arc::clone(trace.collector()));
        }
        let compiler = builder
            .build()
            .expect("table2 sets are valid compiler configurations");
        for (workload, suite) in &workloads {
            for (index, bench) in suite.iter().enumerate() {
                combinations += 1;
                let (compiled, report) = match compiler.compile_with_report(&bench.circuit) {
                    Ok(pair) => pair,
                    Err(e) => {
                        eprintln!(
                            "audit: {} {workload}[{index}] failed to compile: {e}",
                            set.name()
                        );
                        std::process::exit(2);
                    }
                };
                locate(
                    &mut findings,
                    set,
                    workload,
                    "-",
                    "compile",
                    report.diagnostics,
                );
                locate(
                    &mut findings,
                    set,
                    workload,
                    "-",
                    "artifact",
                    compiled.verify(set).into_diagnostics(),
                );
                audit_lowering(&mut findings, set, workload, &compiled);
            }
        }
    }

    let errors = count(&findings, Severity::Error);
    let warnings = count(&findings, Severity::Warning);
    println!(
        "{}",
        render_report(combinations, errors, warnings, &findings)
    );
    eprintln!(
        "audit: {combinations} combinations, {} findings ({errors} errors, {warnings} warnings)",
        findings.len()
    );
    write_trace_or_exit(&trace);
    if errors > 0 {
        std::process::exit(1);
    }
}

/// Lowers the compiled circuit under both fusion policies and runs the
/// semantic kernel rules; `Safe` is checked against its unfused baseline.
fn audit_lowering(
    findings: &mut Vec<Located>,
    set: &InstructionSet,
    workload: &'static str,
    compiled: &CompiledCircuit,
) {
    let noise = NoiseModel::from_device(&compiled.subdevice);
    let unfused = PrecompiledCircuit::new(&compiled.circuit, &noise);
    locate(
        findings,
        set,
        workload,
        "off",
        "kernels",
        unfused.verify_artifact(None).into_diagnostics(),
    );
    let fused = PrecompiledCircuit::with_fusion(&compiled.circuit, &noise, FusionPolicy::Safe);
    locate(
        findings,
        set,
        workload,
        "safe",
        "kernels",
        fused.verify_artifact(Some(&unfused)).into_diagnostics(),
    );
}

/// Tags raw diagnostics with their sweep coordinates.
fn locate(
    findings: &mut Vec<Located>,
    set: &InstructionSet,
    workload: &'static str,
    fusion: &'static str,
    phase: &'static str,
    diagnostics: Vec<Diagnostic>,
) {
    for diagnostic in diagnostics {
        findings.push(Located {
            set: set.name().to_string(),
            workload,
            fusion,
            phase,
            diagnostic,
        });
    }
}

fn count(findings: &[Located], severity: Severity) -> usize {
    findings
        .iter()
        .filter(|f| f.diagnostic.severity() == severity)
        .count()
}

/// The machine-readable report, hand-rolled like the server's metrics
/// endpoint (the vendored `serde` is marker-only).
fn render_report(
    combinations: usize,
    errors: usize,
    warnings: usize,
    findings: &[Located],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"combinations\": {combinations},\n"));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"set\": \"{}\", \"workload\": \"{}\", \"fusion\": \"{}\", \"phase\": \"{}\", \"finding\": {}}}",
            f.set,
            f.workload,
            f.fusion,
            f.phase,
            f.diagnostic.to_json()
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}
