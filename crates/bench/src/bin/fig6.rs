//! Figure 6: hardware gate counts of the Cirq-style KAK baseline vs NuOp at
//! several approximation levels (100%, 99.9%, 99%, 95%), averaged over QV,
//! QAOA and QFT unitaries, for CZ / SYC / iSWAP / sqrt(iSWAP) targets.

use apps::workloads::{qaoa_unitaries, qft_unitaries, qv_unitaries};
use bench::Scale;
use gates::GateType;
use nuop_core::{decompose_approx, decompose_fixed, DecomposeConfig};
use qmath::{Mat4, RngSeed};
use synth::{cirq_gate_count, CirqTargetGate};

fn mean_counts(
    unitaries: &[Mat4],
    gate: &GateType,
    cirq_gate: CirqTargetGate,
    cfg: &DecomposeConfig,
) -> (Option<f64>, [f64; 4]) {
    let mut cirq_total = 0usize;
    let mut cirq_supported = true;
    let mut nuop = [0.0f64; 4]; // 100%, 99.9%, 99%, 95%
    for u in unitaries {
        match cirq_gate_count(u, cirq_gate) {
            Some(c) => cirq_total += c,
            None => cirq_supported = false,
        }
        nuop[0] += decompose_fixed(u, gate, cfg).layers as f64;
        for (slot, hw_fid) in [(1usize, 0.999f64), (2, 0.99), (3, 0.95)] {
            nuop[slot] += decompose_approx(u, gate, hw_fid, cfg).layers as f64;
        }
    }
    let n = unitaries.len() as f64;
    (
        if cirq_supported {
            Some(cirq_total as f64 / n)
        } else {
            None
        },
        [nuop[0] / n, nuop[1] / n, nuop[2] / n, nuop[3] / n],
    )
}

fn main() {
    let scale = Scale::from_args();
    let per_app = scale.pick(5, 100);
    let cfg = match scale {
        Scale::Small => DecomposeConfig::sweep(),
        Scale::Paper => DecomposeConfig::default(),
    };
    let seed = RngSeed(0xF6);

    let mut pool: Vec<Mat4> = Vec::new();
    pool.extend(qv_unitaries(per_app, seed.child(1)));
    pool.extend(qaoa_unitaries(per_app, seed.child(2)));
    pool.extend(qft_unitaries(6).into_iter().take(per_app));

    println!(
        "Figure 6: Cirq baseline vs NuOp gate counts ({} unitaries)",
        pool.len()
    );
    println!(
        "{:<12} {:>8} {:>10} {:>11} {:>10} {:>10}",
        "target", "Cirq", "NuOp-100%", "NuOp-99.9%", "NuOp-99%", "NuOp-95%"
    );
    for (gate, cirq_gate) in [
        (GateType::cz(), CirqTargetGate::Cz),
        (GateType::syc(), CirqTargetGate::Syc),
        (GateType::iswap(), CirqTargetGate::Iswap),
        (GateType::sqrt_iswap(), CirqTargetGate::SqrtIswap),
    ] {
        let (cirq, nuop) = mean_counts(&pool, &gate, cirq_gate, &cfg);
        let cirq_str = cirq.map_or_else(|| "n/a".to_string(), |c| format!("{c:.2}"));
        println!(
            "{:<12} {:>8} {:>10.2} {:>11.2} {:>10.2} {:>10.2}",
            gate.name(),
            cirq_str,
            nuop[0],
            nuop[1],
            nuop[2],
            nuop[3]
        );
    }
    println!("\nExpected shape (paper Fig. 6): NuOp-100% matches or beats the Cirq/KAK");
    println!("baseline (notably 3 vs 6 for SYC), approximation lowers counts further,");
    println!("and Cirq has no sqrt_iSWAP decomposition for generic (QV) unitaries.");
}
