//! Figure 11: calibration overhead vs application benefit.
//! (a) number of calibration circuits vs number of fSim parameter combinations
//!     for 2 / 54 / 1000-qubit devices;
//! (b) calibration hours and mean reliability improvement vs number of gate
//!     types.

use bench::{compiler_for, evaluate_set, qaoa_suite, qv_suite, BenchCircuit, Scale, SetResult};
use calibration::{CalibrationModel, CONTINUOUS_FAMILY_COMBINATIONS};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

fn main() {
    let scale = Scale::from_args();
    let model = CalibrationModel::default();

    println!("Figure 11a: calibration circuits vs number of fSim parameter combinations");
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "combinations", "2 qubits", "54 qubits", "1000 qubits"
    );
    for combos in [
        2usize,
        4,
        8,
        16,
        32,
        64,
        128,
        256,
        CONTINUOUS_FAMILY_COMBINATIONS,
    ] {
        println!(
            "{:<14} {:>14.3e} {:>14.3e} {:>14.3e}",
            combos,
            model.total_circuits(combos, 2),
            model.total_circuits(combos, 54),
            model.total_circuits(combos, 1000)
        );
    }

    println!("\nFigure 11b: calibration hours and reliability improvement vs #gate types");
    let circuits = scale.pick(3, 50);
    let shots = scale.pick(300, 10000);
    let seed = RngSeed(0xF11);
    let sycamore = DeviceModel::sycamore(seed.child(0));
    let aspen = DeviceModel::aspen8(seed.child(1));
    let options = scale.compiler_options();
    let qv = qv_suite(3, circuits, seed.child(2));
    let qaoa = qaoa_suite(3, circuits, seed.child(3));

    let eval = |suite: &[BenchCircuit],
                device: &DeviceModel,
                set: &InstructionSet,
                child: u64|
     -> SetResult {
        let compiler = compiler_for(device, set, &options).expect("valid compiler configuration");
        evaluate_set(suite, &compiler, shots, seed.child(child)).expect("suite compiles")
    };

    // Baselines: the best single-type set per vendor.
    let google_base = eval(&qv, &sycamore, &InstructionSet::s(1), 4);
    let rigetti_base = eval(&qv, &aspen, &InstructionSet::s(3), 5);
    let google_base_qaoa = eval(&qaoa, &sycamore, &InstructionSet::s(1), 6);
    let rigetti_base_qaoa = eval(&qaoa, &aspen, &InstructionSet::s(3), 7);

    println!(
        "{:<12} {:>12} {:>16} {:>16} {:>16} {:>16}",
        "gate types", "cal. hours", "Google-QV", "Google-QAOA", "Rigetti-QV", "Rigetti-QAOA"
    );
    println!(
        "{:<12} {:>12} {:>16.3} {:>16.3} {:>16.3} {:>16.3}",
        "1 (baseline)",
        model.hours(1),
        google_base.mean_metric,
        google_base_qaoa.mean_metric,
        rigetti_base.mean_metric,
        rigetti_base_qaoa.mean_metric
    );
    let google_sets = [
        InstructionSet::g(1),
        InstructionSet::g(2),
        InstructionSet::g(3),
        InstructionSet::g(5),
        InstructionSet::g(7),
    ];
    let rigetti_sets = [
        InstructionSet::r(1),
        InstructionSet::r(2),
        InstructionSet::r(3),
        InstructionSet::r(4),
        InstructionSet::r(5),
    ];
    for (g, r) in google_sets.iter().zip(rigetti_sets.iter()) {
        let types = g.num_gate_types().expect("discrete set");
        let hours = model.hours(types);
        // One compiler per (device, set): the two suites share its cache.
        let google_compiler =
            compiler_for(&sycamore, g, &options).expect("valid compiler configuration");
        let rigetti_compiler =
            compiler_for(&aspen, r, &options).expect("valid compiler configuration");
        let gq =
            evaluate_set(&qv, &google_compiler, shots, seed.child(10)).expect("suite compiles");
        let ga =
            evaluate_set(&qaoa, &google_compiler, shots, seed.child(11)).expect("suite compiles");
        let rq =
            evaluate_set(&qv, &rigetti_compiler, shots, seed.child(12)).expect("suite compiles");
        let ra =
            evaluate_set(&qaoa, &rigetti_compiler, shots, seed.child(13)).expect("suite compiles");
        println!(
            "{:<12} {:>12.1} {:>16.3} {:>16.3} {:>16.3} {:>16.3}",
            types, hours, gq.mean_metric, ga.mean_metric, rq.mean_metric, ra.mean_metric,
        );
    }
    let continuous_hours = model.hours_for_set(&InstructionSet::full_fsim());
    println!(
        "{:<12} {:>12.1}  (continuous family, priced as {} combinations)",
        "Inf", continuous_hours, CONTINUOUS_FAMILY_COMBINATIONS
    );
    println!("\nExpected shape (paper Fig. 11): circuits and hours grow linearly with the");
    println!("number of gate types; reliability improves with diminishing returns after");
    println!("~5 types; 4-8 calibrated types give two orders of magnitude less");
    println!("calibration than the continuous family at comparable reliability.");
}
