//! Micro-benchmarks for the stack-allocated small-matrix kernel (PR 4).
//!
//! Two layers are measured:
//!
//! * **Raw 4×4 / 2×2 kernels** — multiply, adjoint and Kronecker product for
//!   the heap-allocated `CMatrix` versus the stack-allocated `SmallMat`, the
//!   operations that dominate the NuOp objective function.
//! * **Cold decomposition** — a full `decompose_fixed` run on a Haar-random
//!   SU(4), the end-to-end hot path the `DecompositionCache` cannot help with.
//!   Compare against the PR3 baseline recorded in `BENCH_small_mat.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gates::{standard, GateType};
use nuop_core::{decompose_fixed, DecomposeConfig, Template};
use qmath::{
    haar_random_su4, haar_random_unitary, hilbert_schmidt_fidelity, CMatrix, Mat2, Mat4, RngSeed,
};

/// Raw 4×4 multiply: CMatrix (heap) vs Mat4 (stack).
fn bench_mul_4x4(c: &mut Criterion) {
    let mut rng = RngSeed(1).rng();
    let a = haar_random_su4(&mut rng);
    let b = haar_random_su4(&mut rng);
    let a_heap = CMatrix::from(a);
    let b_heap = CMatrix::from(b);
    let mut group = c.benchmark_group("mul_4x4");
    group.sample_size(100_000);
    group.bench_function("cmatrix", |bch| bch.iter(|| black_box(&a_heap) * &b_heap));
    group.bench_function("small_mat", |bch| bch.iter(|| black_box(a) * b));
    group.finish();
}

/// Adjoint (conjugate transpose) of a 4×4.
fn bench_adjoint_4x4(c: &mut Criterion) {
    let mut rng = RngSeed(2).rng();
    let a = haar_random_su4(&mut rng);
    let a_heap = CMatrix::from(a);
    let mut group = c.benchmark_group("adjoint_4x4");
    group.sample_size(100_000);
    group.bench_function("cmatrix", |bch| bch.iter(|| black_box(&a_heap).dagger()));
    group.bench_function("small_mat", |bch| bch.iter(|| black_box(a).dagger()));
    group.finish();
}

/// Kronecker product `2x2 ⊗ 2x2 → 4x4` (the single-qubit layer of a template).
fn bench_kron_2x2(c: &mut Criterion) {
    let mut rng = RngSeed(3).rng();
    let a_heap = haar_random_unitary(2, &mut rng);
    let b_heap = haar_random_unitary(2, &mut rng);
    let a = Mat2::try_from(&a_heap).unwrap();
    let b = Mat2::try_from(&b_heap).unwrap();
    let mut group = c.benchmark_group("kron_2x2");
    group.sample_size(100_000);
    group.bench_function("cmatrix", |bch| {
        bch.iter(|| black_box(&a_heap).kron(&b_heap));
    });
    group.bench_function("small_mat", |bch| bch.iter(|| black_box(&a).kron(&b)));
    group.finish();
}

/// One evaluation of the NuOp objective (3-layer CZ template + HS fidelity):
/// the exact kernel BFGS calls thousands of times per decomposition.
fn bench_objective_eval(c: &mut Criterion) {
    let mut rng = RngSeed(4).rng();
    let target = haar_random_su4(&mut rng);
    let template = Template::fixed(standard::cz(), 3);
    let params: Vec<f64> = (0..template.parameter_count())
        .map(|i| (i as f64 * 0.37).sin())
        .collect();
    let mut group = c.benchmark_group("objective_eval");
    group.sample_size(10_000);
    group.bench_function("three_layer_cz", |bch| {
        bch.iter(|| 1.0 - hilbert_schmidt_fidelity(&template.unitary(black_box(&params)), &target));
    });
    group.finish();
}

/// Cold decomposition of a Haar-random SU(4): the full optimizer pipeline on
/// top of the small-matrix kernel. This is the number to compare against the
/// PR3 `CMatrix` baseline in `BENCH_small_mat.json`.
fn bench_cold_decompose(c: &mut Criterion) {
    let mut rng = RngSeed(1).rng();
    let target = haar_random_su4(&mut rng);
    let mut group = c.benchmark_group("cold_decompose");
    group.sample_size(10);
    group.bench_function("su4_cz_sweep", |bch| {
        bch.iter(|| decompose_fixed(&target, &GateType::cz(), &DecomposeConfig::sweep()));
    });
    group.bench_function("su4_cz_exact", |bch| {
        bch.iter(|| decompose_fixed(&target, &GateType::cz(), &DecomposeConfig::default()));
    });
    group.finish();
}

/// Boundary conversions stay cheap (they only run outside the inner loop).
fn bench_conversions(c: &mut Criterion) {
    let mut rng = RngSeed(5).rng();
    let small = haar_random_su4(&mut rng);
    let heap = CMatrix::from(small);
    let mut group = c.benchmark_group("conversions");
    group.sample_size(100_000);
    group.bench_function("cmatrix_to_mat4", |bch| {
        bch.iter(|| Mat4::try_from(black_box(&heap)).unwrap());
    });
    group.bench_function("mat4_to_cmatrix", |bch| {
        bch.iter(|| CMatrix::from(black_box(&small)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mul_4x4,
    bench_adjoint_4x4,
    bench_kron_2x2,
    bench_objective_eval,
    bench_cold_decompose,
    bench_conversions
);
criterion_main!(benches);
