//! Criterion benches for the parallel batched-shot execution engine:
//! precompiled-vs-naive single shots, and 1-vs-N-thread batch throughput on a
//! figure-style workload. Headline numbers are recorded in
//! `BENCH_sim_engine.json` at the repository root.

use circuit::Circuit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use device::DeviceModel;
use qmath::RngSeed;
use rand::Rng;
use sim::{Counts, ExecutionEngine, NoiseModel, NoisySimulator, SimJob};

/// The pre-engine `NoisySimulator::run` loop, verbatim: one fresh per-shot RNG,
/// a trajectory that re-derives every op's matrices and Kraus channels from
/// the noise model, then measurement and readout error. This is the baseline
/// the engine's precompilation and sharding are measured against.
fn naive_run(sim: &NoisySimulator, circuit: &Circuit, shots: usize, seed: RngSeed) -> Counts {
    let n = circuit.num_qubits();
    let mut counts = Counts::new(n);
    for shot in 0..shots {
        let mut rng = seed.child(shot as u64).rng();
        let state = sim.run_trajectory(circuit, &mut rng);
        let mut outcome = state.sample_measurement(&mut rng);
        for q in 0..n {
            let p = sim.noise().readout_error(q);
            if p > 0.0 && rng.gen_bool(p) {
                outcome ^= 1 << (n - 1 - q);
            }
        }
        counts.record(outcome);
    }
    counts
}

/// A fig6/fig9-style workload: several QV circuits on a calibrated device
/// region, thousands of shots each.
fn fig_workload(circuits: usize, n: usize) -> (Vec<Circuit>, NoiseModel) {
    let device = DeviceModel::sycamore(RngSeed(1));
    let region: Vec<usize> = (0..n).collect();
    let sub = device.subdevice(&region);
    let noise = NoiseModel::from_device(&sub);
    let circuits = (0..circuits)
        .map(|i| apps::workloads::qv_circuit(n, RngSeed(100 + i as u64)))
        .collect();
    (circuits, noise)
}

fn bench_single_shot(c: &mut Criterion) {
    let (circuits, noise) = fig_workload(1, 4);
    let circuit = &circuits[0];
    let sim = NoisySimulator::new(noise);
    let pre = sim.precompile(circuit);
    let mut group = c.benchmark_group("single_shot");
    group.sample_size(200);
    // Naive: rebuilds (and completeness-checks) every op's channels in-shot.
    group.bench_function("naive", |b| {
        let mut shot = 0u64;
        b.iter(|| {
            shot += 1;
            let mut rng = RngSeed(7).child(shot).rng();
            sim.run_trajectory(circuit, &mut rng)
        });
    });
    // Precompiled: channels were built once, the shot only samples them.
    group.bench_function("precompiled", |b| {
        let mut shot = 0u64;
        b.iter(|| {
            shot += 1;
            let mut rng = RngSeed(7).child(shot).rng();
            pre.run_trajectory(&mut rng)
        });
    });
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let (circuits, noise) = fig_workload(4, 4);
    let shots = 2000;
    let jobs: Vec<SimJob> = circuits
        .iter()
        .enumerate()
        .map(|(i, circ)| SimJob::noisy(circ.clone(), noise.clone(), shots, RngSeed(i as u64)))
        .collect();
    let sims: Vec<NoisySimulator> = circuits
        .iter()
        .map(|_| NoisySimulator::new(noise.clone()))
        .collect();
    let mut group = c.benchmark_group("fig_workload_throughput");
    group.sample_size(10);
    // The pre-engine loop: serial circuits, serial shots, per-shot channels.
    group.bench_function("naive_loop", |b| {
        b.iter(|| {
            circuits
                .iter()
                .zip(sims.iter())
                .enumerate()
                .map(|(i, (circ, sim))| naive_run(sim, circ, shots, RngSeed(i as u64)))
                .collect::<Vec<_>>()
        });
    });
    for threads in [1usize, 2, 8] {
        let engine = ExecutionEngine::builder().threads(threads).build().unwrap();
        group.bench_with_input(
            BenchmarkId::new("engine", format!("{threads}_threads")),
            &engine,
            |b, engine| b.iter(|| engine.run_batch(&jobs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_shot, bench_batch_throughput);
criterion_main!(benches);
