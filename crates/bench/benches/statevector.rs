//! Criterion benches for the statevector hot path at 20+ qubits: base-index
//! amplitude sweeps vs the old full-scan loops, gate fusion vs unfused
//! lowering (serial and with threaded sweeps), cumulative-table measurement
//! sampling vs the per-shot linear scan, the noisy-trajectory fusion grid
//! (`Off` / `Safe` / `Aggressive`), and the serial-vs-threaded sweep
//! crossover used to calibrate `PARALLEL_SWEEP_MIN_QUBITS`. Headline numbers
//! are recorded in `BENCH_statevector.json` at the repository root.

use circuit::{Circuit, Operation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmath::{Complex, Mat2, Mat4, RngSeed};
use sim::{FusionPolicy, PrecompiledCircuit, PrecompiledKind, StateVector};

const NUM_QUBITS: usize = 20;

/// The pre-fusion sweep loop, verbatim: visit every index of the register and
/// mask-test for the cleared target bit. This is the PR 5 baseline the
/// base-index iteration is measured against.
fn full_scan_apply_one_qubit(amps: &mut [Complex], m: &Mat2, q: usize, n: usize) {
    let shift = n - 1 - q;
    let mask = 1usize << shift;
    for i in 0..amps.len() {
        if i & mask == 0 {
            let j = i | mask;
            let a0 = amps[i];
            let a1 = amps[j];
            amps[i] = m[(0, 0)] * a0 + m[(0, 1)] * a1;
            amps[j] = m[(1, 0)] * a0 + m[(1, 1)] * a1;
        }
    }
}

/// The pre-fusion two-qubit sweep loop: full scan with two mask tests.
fn full_scan_apply_two_qubit(amps: &mut [Complex], m: &Mat4, q0: usize, q1: usize, n: usize) {
    let mask0 = 1usize << (n - 1 - q0);
    let mask1 = 1usize << (n - 1 - q1);
    for i in 0..amps.len() {
        if i & mask0 == 0 && i & mask1 == 0 {
            let idx = [i, i | mask1, i | mask0, i | mask0 | mask1];
            let a = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
            for (r, &out) in idx.iter().enumerate() {
                amps[out] =
                    m[(r, 0)] * a[0] + m[(r, 1)] * a[1] + m[(r, 2)] * a[2] + m[(r, 3)] * a[3];
            }
        }
    }
}

/// Runs an ideal trajectory with the full-scan loops above — the complete
/// PR 5 execution path for a noiseless circuit.
fn full_scan_trajectory(pre: &PrecompiledCircuit) -> Vec<Complex> {
    let n = pre.num_qubits();
    let mut amps = vec![Complex::ZERO; 1 << n];
    amps[0] = Complex::ONE;
    for op in pre.ops() {
        match &op.kind {
            PrecompiledKind::Unitary1Q { matrix, qubit } => {
                full_scan_apply_one_qubit(&mut amps, matrix, *qubit, n);
            }
            PrecompiledKind::Unitary2Q { matrix, q0, q1 } => {
                full_scan_apply_two_qubit(&mut amps, matrix, *q0, *q1, n);
            }
            PrecompiledKind::Silent => {}
        }
    }
    amps
}

/// A layered 20+ qubit workload: rotation layers interleaved with CNOT
/// chains, the structure gate fusion exploits (each rotation layer fuses into
/// the entangler layer that follows it).
fn layered_circuit(n: usize, rounds: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for r in 0..rounds {
        for q in 0..n {
            c.push(Operation::rx(q, 0.1 + (q + r) as f64 * 0.07));
        }
        for q in 1..n {
            c.push(Operation::cnot(q - 1, q));
        }
        for q in 0..n {
            c.push(Operation::rz(q, 0.3 + (q * (r + 1)) as f64 * 0.05));
        }
    }
    c.measure_all();
    c
}

fn scrambled_state(n: usize, rounds: usize) -> StateVector {
    let pre =
        PrecompiledCircuit::ideal_with_fusion(&layered_circuit(n, rounds), FusionPolicy::Safe);
    pre.run_trajectory(&mut RngSeed(3).rng())
}

fn bench_amplitude_sweep(c: &mut Criterion) {
    let n = NUM_QUBITS;
    let state = scrambled_state(n, 1);
    let h = gates::standard::h();
    let cnot = gates::standard::cnot();
    let mut group = c.benchmark_group("amplitude_sweep_20q");
    group.sample_size(20);
    group.bench_function("full_scan_1q", |b| {
        let mut amps = state.amplitudes().to_vec();
        b.iter(|| full_scan_apply_one_qubit(&mut amps, &h, n / 2, n));
    });
    group.bench_function("base_index_1q", |b| {
        let mut s = state.clone();
        b.iter(|| s.apply_one_qubit(&h, n / 2));
    });
    group.bench_function("base_index_1q_threaded", |b| {
        let mut s = state.clone();
        b.iter(|| s.apply_one_qubit_threaded(&h, n / 2, 4));
    });
    group.bench_function("full_scan_2q", |b| {
        let mut amps = state.amplitudes().to_vec();
        b.iter(|| full_scan_apply_two_qubit(&mut amps, &cnot, n / 2 - 1, n / 2, n));
    });
    group.bench_function("base_index_2q", |b| {
        let mut s = state.clone();
        b.iter(|| s.apply_two_qubit(&cnot, n / 2 - 1, n / 2));
    });
    group.bench_function("base_index_2q_threaded", |b| {
        let mut s = state.clone();
        b.iter(|| s.apply_two_qubit_threaded(&cnot, n / 2 - 1, n / 2, 4));
    });
    group.finish();
}

fn bench_trajectory_grid(c: &mut Criterion) {
    let circuit = layered_circuit(NUM_QUBITS, 2);
    let unfused = PrecompiledCircuit::ideal(&circuit);
    let fused = PrecompiledCircuit::ideal_with_fusion(&circuit, FusionPolicy::Safe);
    let mut group = c.benchmark_group("trajectory_20q");
    group.sample_size(5);
    // The complete PR 5 path: unfused ops, full-scan sweeps.
    group.bench_function("baseline_full_scan", |b| {
        b.iter(|| full_scan_trajectory(&unfused));
    });
    for (label, pre) in [("unfused", &unfused), ("fused", &fused)] {
        group.bench_with_input(BenchmarkId::new(label, "serial"), pre, |b, pre| {
            b.iter(|| pre.run_trajectory(&mut RngSeed(1).rng()));
        });
        group.bench_with_input(BenchmarkId::new(label, "parallel4"), pre, |b, pre| {
            b.iter(|| pre.run_trajectory_threaded(&mut RngSeed(1).rng(), 4));
        });
    }
    group.finish();
}

fn bench_measurement_sampling(c: &mut Criterion) {
    // Deep scramble: probability mass is spread across the register, so the
    // linear scan cannot systematically exit early.
    let state = scrambled_state(NUM_QUBITS, 3);
    let shots = 256usize;
    let mut group = c.benchmark_group("sampling_20q_256shots");
    group.sample_size(5);
    // Per-shot linear scan over all 2^20 probabilities (the PR 5 fast path).
    group.bench_function("linear_rescan", |b| {
        b.iter(|| {
            let mut rng = RngSeed(9).rng();
            (0..shots)
                .map(|_| state.sample_measurement(&mut rng))
                .sum::<usize>()
        });
    });
    // One cumulative table, then a binary search per shot.
    group.bench_function("cumulative_table", |b| {
        b.iter(|| {
            let mut rng = RngSeed(9).rng();
            let sampler = state.measurement_sampler();
            (0..shots).map(|_| sampler.sample(&mut rng)).sum::<usize>()
        });
    });
    group.finish();
}

/// The acceptance workload: one noisy trajectory of the 20-qubit layered
/// circuit under each fusion policy, with depolarizing noise on *every* gate
/// (`bench::all_depolarizing_noise`) so `Safe` cannot fuse across any
/// boundary while `Aggressive` composes channels. Distribution-identity of
/// `Aggressive` against `Safe` on this workload shape is pinned by the TVD
/// harness (`cargo run -p bench --bin tvd`).
fn bench_noisy_trajectory_grid(c: &mut Criterion) {
    let circuit = layered_circuit(NUM_QUBITS, 2);
    let noise = bench::all_depolarizing_noise(NUM_QUBITS, 0.999, 0.95);
    let mut group = c.benchmark_group("noisy_trajectory_20q");
    group.sample_size(5);
    for (label, policy) in [
        ("off", FusionPolicy::Off),
        ("safe", FusionPolicy::Safe),
        ("aggressive", FusionPolicy::Aggressive),
    ] {
        let pre = PrecompiledCircuit::with_fusion(&circuit, &noise, policy);
        group.bench_function(label, |b| {
            b.iter(|| pre.run_trajectory(&mut RngSeed(11).rng()));
        });
    }
    group.finish();
}

/// Serial vs 4-thread sweep at increasing register widths: the crossover
/// point is what the `EngineBuilder::parallel_sweep_min_qubits` knob (default
/// `PARALLEL_SWEEP_MIN_QUBITS`) should be calibrated to on a given host.
fn bench_parallel_threshold_sweep(c: &mut Criterion) {
    let h = gates::standard::h();
    let mut group = c.benchmark_group("parallel_threshold_sweep");
    group.sample_size(10);
    for n in [12usize, 16, 18, 20] {
        let state = scrambled_state(n, 1);
        group.bench_with_input(BenchmarkId::new("serial_1q", n), &state, |b, state| {
            let mut s = state.clone();
            b.iter(|| s.apply_one_qubit(&h, n / 2));
        });
        group.bench_with_input(BenchmarkId::new("threaded4_1q", n), &state, |b, state| {
            let mut s = state.clone();
            b.iter(|| s.apply_one_qubit_threaded(&h, n / 2, 4));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_amplitude_sweep,
    bench_trajectory_grid,
    bench_measurement_sampling,
    bench_noisy_trajectory_grid,
    bench_parallel_threshold_sweep
);
criterion_main!(benches);
