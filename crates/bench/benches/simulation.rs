//! Criterion micro-benchmarks for the simulation and compilation substrate:
//! state-vector scaling, noisy trajectories, and the end-to-end pipeline
//! kernels behind Figs. 9-10.

use bench::{compiler_for, qaoa_suite, qv_suite};
use compiler::CompilerOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;
use sim::{IdealSimulator, NoiseModel, NoisySimulator};

fn bench_statevector_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ideal_simulation");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let circuit = apps::workloads::qv_circuit(n, RngSeed(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circ| {
            b.iter(|| IdealSimulator::probabilities(circ));
        });
    }
    group.finish();
}

fn bench_noisy_trajectories(c: &mut Criterion) {
    let device = DeviceModel::sycamore(RngSeed(1));
    let region: Vec<usize> = (0..4).collect();
    let sub = device.subdevice(&region);
    let circuit = apps::workloads::qaoa_circuit(4, RngSeed(2));
    let noise = NoiseModel::from_device(&sub);
    let sim = NoisySimulator::new(noise);
    let mut group = c.benchmark_group("noisy_simulation");
    group.sample_size(10);
    for shots in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(shots), &shots, |b, &shots| {
            b.iter(|| sim.run(&circuit, shots, RngSeed(3)));
        });
    }
    group.finish();
}

fn bench_compile_pipeline(c: &mut Criterion) {
    let device = DeviceModel::aspen8(RngSeed(4));
    let suite = qv_suite(3, 1, RngSeed(5));
    let options = CompilerOptions::sweep();
    let mut group = c.benchmark_group("compile_pipeline");
    group.sample_size(10);
    for set in [InstructionSet::s(3), InstructionSet::r(5)] {
        // Fresh compiler per iteration: measures the cold-cache pipeline.
        group.bench_with_input(BenchmarkId::new("qv3_cold", set.name()), &set, |b, set| {
            b.iter(|| {
                let compiler = compiler_for(&device, set, &options).expect("valid configuration");
                compiler.compile(&suite[0].circuit).expect("circuit fits")
            });
        });
        // Reused compiler: after the first iteration every decomposition is a
        // cache hit — the service's steady-state cost.
        let warm = compiler_for(&device, &set, &options).expect("valid configuration");
        group.bench_with_input(BenchmarkId::new("qv3_warm", set.name()), &set, |b, _| {
            b.iter(|| warm.compile(&suite[0].circuit).expect("circuit fits"));
        });
    }
    let qaoa = qaoa_suite(3, 1, RngSeed(6));
    let g3 = compiler_for(&device, &InstructionSet::g(3), &options).expect("valid configuration");
    group.bench_function("qaoa3_G3_warm", |b| {
        b.iter(|| g3.compile(&qaoa[0].circuit).expect("circuit fits"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector_scaling,
    bench_noisy_trajectories,
    bench_compile_pipeline
);
criterion_main!(benches);
