//! Criterion micro-benchmarks for the NuOp decomposition pass and its
//! ablations (exact vs approximate, layer growth, noise-adaptive selection,
//! KAK baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gates::GateType;
use nuop_core::{
    decompose_approx, decompose_continuous, decompose_fixed, decompose_with_gate_choice,
    DecomposeConfig, HardwareGate,
};
use qmath::{haar_random_su4, RngSeed};
use synth::{cirq_gate_count, minimal_cnot_count, CirqTargetGate};

fn sweep_config() -> DecomposeConfig {
    DecomposeConfig::sweep()
}

/// Fig. 6 kernel: decompose a QV unitary into each hardware gate type.
fn bench_fig6_nuop_vs_cirq(c: &mut Criterion) {
    let mut rng = RngSeed(1).rng();
    let target = haar_random_su4(&mut rng);
    let mut group = c.benchmark_group("fig6_decomposition");
    group.sample_size(10);
    for gate in [GateType::cz(), GateType::syc(), GateType::sqrt_iswap()] {
        group.bench_with_input(
            BenchmarkId::new("nuop_exact", gate.name()),
            &gate,
            |b, g| b.iter(|| decompose_fixed(&target, g, &sweep_config())),
        );
    }
    group.bench_function("cirq_kak_count", |b| {
        b.iter(|| cirq_gate_count(&target, CirqTargetGate::Cz));
    });
    group.bench_function("sbm_minimal_cnot_count", |b| {
        b.iter(|| minimal_cnot_count(&target));
    });
    group.finish();
}

/// Ablation: exact vs approximate decomposition (Eq. 1 vs Eq. 2).
fn bench_approx_vs_exact(c: &mut Criterion) {
    let mut rng = RngSeed(2).rng();
    let target = haar_random_su4(&mut rng);
    let mut group = c.benchmark_group("approx_vs_exact");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| decompose_fixed(&target, &GateType::cz(), &sweep_config()));
    });
    group.bench_function("approx_99", |b| {
        b.iter(|| decompose_approx(&target, &GateType::cz(), 0.99, &sweep_config()));
    });
    group.bench_function("approx_95", |b| {
        b.iter(|| decompose_approx(&target, &GateType::cz(), 0.95, &sweep_config()));
    });
    group.finish();
}

/// Ablation: template depth (optimization cost grows with the layer count).
fn bench_nuop_layers(c: &mut Criterion) {
    let mut rng = RngSeed(3).rng();
    let target = haar_random_su4(&mut rng);
    let mut group = c.benchmark_group("nuop_layer_growth");
    group.sample_size(10);
    for max_layers in [1usize, 2, 3] {
        let cfg = DecomposeConfig {
            max_layers,
            ..DecomposeConfig::sweep()
        };
        group.bench_with_input(BenchmarkId::from_parameter(max_layers), &cfg, |b, cfg| {
            b.iter(|| decompose_fixed(&target, &GateType::syc(), cfg));
        });
    }
    group.finish();
}

/// Ablation: noise-adaptive selection across 1, 2 and 4 candidate gate types.
fn bench_noise_adaptive(c: &mut Criterion) {
    let mut rng = RngSeed(4).rng();
    let target = haar_random_su4(&mut rng);
    let candidates = [
        HardwareGate::new(GateType::syc(), 0.994),
        HardwareGate::new(GateType::sqrt_iswap(), 0.992),
        HardwareGate::new(GateType::cz(), 0.99),
        HardwareGate::new(GateType::iswap(), 0.988),
    ];
    let mut group = c.benchmark_group("noise_adaptive_selection");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| decompose_with_gate_choice(&target, &candidates[..n], &sweep_config()));
        });
    }
    group.finish();
}

/// Continuous-family (FullfSim) decomposition, the most expensive template.
fn bench_continuous_family(c: &mut Criterion) {
    let mut rng = RngSeed(5).rng();
    let target = haar_random_su4(&mut rng);
    let mut group = c.benchmark_group("continuous_family");
    group.sample_size(10);
    group.bench_function("full_fsim", |b| {
        b.iter(|| {
            decompose_continuous(
                &target,
                gates::fsim::ContinuousFamily::FullFsim,
                &DecomposeConfig {
                    max_layers: 2,
                    ..DecomposeConfig::sweep()
                },
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig6_nuop_vs_cirq,
    bench_approx_vs_exact,
    bench_nuop_layers,
    bench_noise_adaptive,
    bench_continuous_family
);
criterion_main!(benches);
