//! Embedding small operators into an `n`-qubit register operator.
//!
//! The convention throughout the workspace is big-endian: qubit 0 is the most
//! significant bit of a basis-state index. A basis index `b` of an `n`-qubit
//! register therefore decomposes as `b = q0 q1 … q_{n-1}` in binary.

use qmath::{CMatrix, Complex, MatRef};

use crate::ops::QubitId;

/// Extracts bit `qubit` (big-endian) from basis index `idx` of an `n`-qubit register.
#[inline]
pub(crate) fn bit_of(idx: usize, qubit: QubitId, n: usize) -> usize {
    (idx >> (n - 1 - qubit)) & 1
}

/// Sets bit `qubit` (big-endian) of basis index `idx` to `value`.
#[inline]
pub(crate) fn with_bit(idx: usize, qubit: QubitId, n: usize, value: usize) -> usize {
    let shift = n - 1 - qubit;
    (idx & !(1 << shift)) | (value << shift)
}

/// Embeds a 2×2 operator acting on `qubit` into the full `2^n × 2^n` operator.
///
/// # Panics
/// Panics if `qubit >= n` or the matrix is not 2×2.
pub fn embed_one_qubit<M: MatRef + ?Sized>(gate: &M, qubit: QubitId, n: usize) -> CMatrix {
    assert!(qubit < n, "qubit index out of range");
    assert_eq!(gate.nrows(), 2, "expected a 2x2 matrix");
    assert_eq!(gate.ncols(), 2, "expected a 2x2 matrix");
    let dim = 1usize << n;
    let mut out = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let cb = bit_of(col, qubit, n);
        for rb in 0..2 {
            let row = with_bit(col, qubit, n, rb);
            let amp = gate.at(rb, cb);
            if amp != Complex::ZERO {
                out[(row, col)] += amp;
            }
        }
    }
    out
}

/// Embeds a 4×4 operator acting on `(q0, q1)` into the full `2^n × 2^n`
/// operator. `q0` is the most significant qubit of the 4×4 matrix.
///
/// # Panics
/// Panics if the qubit indices are out of range or equal, or the matrix is not 4×4.
pub fn embed_two_qubit<M: MatRef + ?Sized>(
    gate: &M,
    q0: QubitId,
    q1: QubitId,
    n: usize,
) -> CMatrix {
    assert!(q0 < n && q1 < n, "qubit index out of range");
    assert_ne!(q0, q1, "two-qubit gate requires distinct qubits");
    assert_eq!(gate.nrows(), 4, "expected a 4x4 matrix");
    assert_eq!(gate.ncols(), 4, "expected a 4x4 matrix");
    let dim = 1usize << n;
    let mut out = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let cb = (bit_of(col, q0, n) << 1) | bit_of(col, q1, n);
        for rb in 0..4 {
            let amp = gate.at(rb, cb);
            if amp == Complex::ZERO {
                continue;
            }
            let row = with_bit(with_bit(col, q0, n, rb >> 1), q1, n, rb & 1);
            out[(row, col)] += amp;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;

    #[test]
    fn bit_helpers_roundtrip() {
        let n = 4;
        for idx in 0..16 {
            for q in 0..n {
                let b = bit_of(idx, q, n);
                assert_eq!(with_bit(idx, q, n, b), idx);
                assert_eq!(bit_of(with_bit(idx, q, n, 1), q, n), 1);
                assert_eq!(bit_of(with_bit(idx, q, n, 0), q, n), 0);
            }
        }
    }

    #[test]
    fn one_qubit_embedding_matches_kron() {
        let x = CMatrix::from(standard::x());
        let id = CMatrix::identity(2);
        // X on qubit 0 of 2: X ⊗ I
        assert!(embed_one_qubit(&x, 0, 2).approx_eq(&x.kron(&id), 1e-12));
        // X on qubit 1 of 2: I ⊗ X
        assert!(embed_one_qubit(&x, 1, 2).approx_eq(&id.kron(&x), 1e-12));
        // Middle qubit of 3: I ⊗ X ⊗ I
        let expect = id.kron(&x).kron(&id);
        assert!(embed_one_qubit(&x, 1, 3).approx_eq(&expect, 1e-12));
    }

    #[test]
    fn two_qubit_embedding_on_adjacent_pair_matches_kron() {
        let cz = CMatrix::from(standard::cz());
        let id = CMatrix::identity(2);
        // CZ on (0,1) of 3 qubits: CZ ⊗ I
        assert!(embed_two_qubit(&cz, 0, 1, 3).approx_eq(&cz.kron(&id), 1e-12));
        // CZ on (1,2) of 3 qubits: I ⊗ CZ
        assert!(embed_two_qubit(&cz, 1, 2, 3).approx_eq(&id.kron(&cz), 1e-12));
    }

    #[test]
    fn reversed_qubit_order_transposes_cnot() {
        // CNOT with control 1, target 0 on a 2-qubit register equals
        // (H⊗H) CNOT (H⊗H).
        let cnot = standard::cnot();
        let rev = embed_two_qubit(&cnot, 1, 0, 2);
        let hh = standard::h().kron(&standard::h());
        let expect = hh * cnot * hh;
        assert!(rev.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn embedding_preserves_unitarity_on_non_adjacent_qubits() {
        let syc = gates::GateType::syc();
        let u = embed_two_qubit(syc.unitary(), 0, 2, 3);
        assert!(u.is_unitary(1e-12));
        let u2 = embed_two_qubit(syc.unitary(), 3, 1, 4);
        assert!(u2.is_unitary(1e-12));
    }

    #[test]
    fn swap_embedding_permutes_basis_states() {
        let swap = standard::swap();
        let u = embed_two_qubit(&swap, 0, 2, 3);
        // |100> (idx 4) should map to |001> (idx 1).
        assert!((u[(1, 4)] - Complex::ONE).norm() < 1e-12);
        assert!((u[(4, 1)] - Complex::ONE).norm() < 1e-12);
        // |010> untouched.
        assert!((u[(2, 2)] - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let _ = embed_one_qubit(&standard::x(), 2, 2);
    }
}
