//! Quantum circuit intermediate representation.
//!
//! The compiler, the NuOp decomposition pass and the simulators all exchange
//! circuits in this crate's [`Circuit`] form: an ordered list of
//! [`Operation`]s over integer-indexed qubits. The representation is
//! deliberately "flat" (no classical control flow), which matches the NISQ
//! applications studied in the paper.
//!
//! * [`ops`] — operations: labelled 1-qubit / 2-qubit unitaries, measurement,
//!   barrier.
//! * [`circuit`] — the [`Circuit`] container, gate counting, composition,
//!   inversion and unitary extraction for small circuits.
//! * [`mod@moments`] — ASAP moment (layer) scheduling and depth computation.
//! * [`embed`] — embedding a 1- or 2-qubit operator into the full
//!   `2^n × 2^n` operator of an `n`-qubit register.
//!
//! # Example
//!
//! ```
//! use circuit::{Circuit, Operation};
//!
//! let mut c = Circuit::new(2);
//! c.push(Operation::h(0));
//! c.push(Operation::cz(0, 1));
//! c.push(Operation::h(1));
//! assert_eq!(c.two_qubit_gate_count(), 1);
//! assert_eq!(c.depth(), 3);
//! let u = c.unitary();
//! assert!(u.is_unitary(1e-10));
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod embed;
pub mod moments;
pub mod ops;

pub use crate::circuit::Circuit;
pub use embed::{embed_one_qubit, embed_two_qubit};
pub use moments::{moments, Moment};
pub use ops::{OpKind, Operation, QubitId};
