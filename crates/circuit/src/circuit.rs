//! The [`Circuit`] container.

use std::collections::BTreeMap;
use std::fmt;

use qmath::CMatrix;
use serde::{Deserialize, Serialize};

use crate::embed::{embed_one_qubit, embed_two_qubit};
use crate::moments::moments;
use crate::ops::{OpKind, Operation, QubitId};

/// An ordered sequence of operations over `n` qubits.
///
/// ```
/// use circuit::{Circuit, Operation};
/// let mut bell = Circuit::new(2);
/// bell.push(Operation::h(0));
/// bell.push(Operation::cnot(0, 1));
/// assert_eq!(bell.len(), 2);
/// assert_eq!(bell.two_qubit_gate_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    ///
    /// # Panics
    /// Panics if `num_qubits` is zero.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "a circuit needs at least one qubit");
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends an operation.
    ///
    /// # Panics
    /// Panics if the operation references a qubit outside the register.
    pub fn push(&mut self, op: Operation) {
        for &q in op.qubits() {
            assert!(
                q < self.num_qubits,
                "operation qubit {q} out of range (n={})",
                self.num_qubits
            );
        }
        self.ops.push(op);
    }

    /// Appends every operation of `other` (which must fit in this register).
    pub fn append_circuit(&mut self, other: &Circuit) {
        for op in other.iter() {
            self.push(op.clone());
        }
    }

    /// Iterates over operations in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// The operations as a slice.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of two-qubit unitary operations (the paper's primary instruction
    /// count metric).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_two_qubit_unitary()).count()
    }

    /// Number of single-qubit unitary operations.
    pub fn one_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_one_qubit_unitary()).count()
    }

    /// Count of two-qubit operations per label (e.g. how many `CZ` vs `SYC`).
    pub fn two_qubit_counts_by_label(&self) -> BTreeMap<String, usize> {
        let mut map = BTreeMap::new();
        for op in &self.ops {
            if op.is_two_qubit_unitary() {
                *map.entry(op.label().to_string()).or_insert(0) += 1;
            }
        }
        map
    }

    /// Circuit depth: the number of moments when operations are scheduled ASAP.
    pub fn depth(&self) -> usize {
        moments(self).len()
    }

    /// Depth counting only two-qubit gates (1Q gates are an order of magnitude
    /// faster and less error-prone, so 2Q depth dominates decoherence).
    pub fn two_qubit_depth(&self) -> usize {
        let mut layer_of_qubit = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for op in &self.ops {
            if !op.is_two_qubit_unitary() {
                continue;
            }
            let start = op
                .qubits()
                .iter()
                .map(|&q| layer_of_qubit[q])
                .max()
                .unwrap_or(0);
            let layer = start + 1;
            for &q in op.qubits() {
                layer_of_qubit[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Appends a measurement of every qubit.
    pub fn measure_all(&mut self) {
        let qubits: Vec<QubitId> = (0..self.num_qubits).collect();
        self.push(Operation::measure(qubits));
    }

    /// True when the circuit ends with measurements (at least one).
    pub fn has_measurements(&self) -> bool {
        self.ops.iter().any(|o| o.is_measurement())
    }

    /// Returns the circuit without measurement and barrier operations.
    pub fn without_measurements(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        for op in &self.ops {
            match op.kind() {
                OpKind::Measure | OpKind::Barrier => {}
                _ => c.push(op.clone()),
            }
        }
        c
    }

    /// The adjoint circuit: operations reversed and each inverted. Measurement
    /// and barrier operations are dropped.
    pub fn inverse(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        for op in self.ops.iter().rev() {
            match op.kind() {
                OpKind::Measure | OpKind::Barrier => {}
                _ => c.push(op.inverse()),
            }
        }
        c
    }

    /// The full `2^n × 2^n` unitary implemented by the circuit (ignoring
    /// measurements and barriers).
    ///
    /// Intended for small circuits (tests, decomposition verification); the
    /// cost is `O(len · 4^n)` memory and worse time.
    ///
    /// # Panics
    /// Panics if `num_qubits > 12` to guard against accidental huge allocations.
    pub fn unitary(&self) -> CMatrix {
        assert!(
            self.num_qubits <= 12,
            "Circuit::unitary is intended for small circuits (n <= 12)"
        );
        let dim = 1usize << self.num_qubits;
        let mut u = CMatrix::identity(dim);
        for op in &self.ops {
            let full = match op.kind() {
                OpKind::Unitary1Q { matrix, .. } => {
                    embed_one_qubit(matrix, op.qubits()[0], self.num_qubits)
                }
                OpKind::Unitary2Q { matrix, .. } => {
                    embed_two_qubit(matrix, op.qubits()[0], op.qubits()[1], self.num_qubits)
                }
                OpKind::Measure | OpKind::Barrier => continue,
            };
            u = &full * &u;
        }
        u
    }

    /// Renames qubits according to `mapping` (`mapping[logical] = physical`),
    /// producing a circuit over `new_num_qubits` qubits.
    ///
    /// # Panics
    /// Panics if the mapping is shorter than the register or maps outside
    /// `new_num_qubits`.
    pub fn remapped(&self, mapping: &[QubitId], new_num_qubits: usize) -> Circuit {
        assert!(mapping.len() >= self.num_qubits, "mapping too short");
        let mut c = Circuit::new(new_num_qubits);
        for op in &self.ops {
            let new_qubits: Vec<QubitId> = op.qubits().iter().map(|&q| mapping[q]).collect();
            c.push(op.retargeted(new_qubits));
        }
        c
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit({} qubits, {} ops)",
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl Extend<Operation> for Circuit {
    fn extend<T: IntoIterator<Item = Operation>>(&mut self, iter: T) {
        for op in iter {
            self.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        c
    }

    #[test]
    fn counts_and_depth() {
        let mut c = Circuit::new(3);
        c.push(Operation::h(0));
        c.push(Operation::h(1));
        c.push(Operation::cz(0, 1));
        c.push(Operation::cz(1, 2));
        c.push(Operation::h(2));
        assert_eq!(c.len(), 5);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.one_qubit_gate_count(), 3);
        // H(0), H(1) in moment 0; CZ(0,1) in moment 1; CZ(1,2) in moment 2;
        // H(2) follows CZ(1,2) in program order, so it lands in moment 3.
        assert_eq!(c.depth(), 4);
        assert_eq!(c.two_qubit_depth(), 2);
    }

    #[test]
    fn label_counts() {
        let mut c = Circuit::new(2);
        c.push(Operation::cz(0, 1));
        c.push(Operation::cz(0, 1));
        c.push(Operation::swap(0, 1));
        let counts = c.two_qubit_counts_by_label();
        assert_eq!(counts["CZ"], 2);
        assert_eq!(counts["SWAP"], 1);
    }

    #[test]
    fn bell_unitary_is_correct() {
        let u = bell().unitary();
        // First column should be (1/sqrt2, 0, 0, 1/sqrt2).
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((u[(0, 0)].re - s).abs() < 1e-12);
        assert!((u[(3, 0)].re - s).abs() < 1e-12);
        assert!(u[(1, 0)].norm() < 1e-12);
        assert!(u[(2, 0)].norm() < 1e-12);
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn inverse_circuit_gives_identity() {
        let c = bell();
        let mut both = c.clone();
        both.append_circuit(&c.inverse());
        let u = both.unitary();
        assert!(u.approx_eq(&CMatrix::identity(4), 1e-10));
    }

    #[test]
    fn unitary_ignores_measurements() {
        let mut c = bell();
        c.measure_all();
        assert!(c.has_measurements());
        assert!(c.unitary().approx_eq(&bell().unitary(), 1e-12));
        assert!(!c.without_measurements().has_measurements());
    }

    #[test]
    fn remap_moves_operations() {
        let c = bell();
        let mapped = c.remapped(&[2, 0], 3);
        assert_eq!(mapped.num_qubits(), 3);
        assert_eq!(mapped.operations()[0].qubits(), &[2]);
        assert_eq!(mapped.operations()[1].qubits(), &[2, 0]);
    }

    #[test]
    fn gate_order_matters_in_unitary() {
        let mut a = Circuit::new(1);
        a.push(Operation::unitary1q("X", standard::x(), 0));
        a.push(Operation::unitary1q("S", standard::s(), 0));
        let mut b = Circuit::new(1);
        b.push(Operation::unitary1q("S", standard::s(), 0));
        b.push(Operation::unitary1q("X", standard::x(), 0));
        assert!(!a.unitary().approx_eq(&b.unitary(), 1e-9));
    }

    #[test]
    fn extend_trait_and_intoiter() {
        let mut c = Circuit::new(2);
        c.extend(vec![Operation::h(0), Operation::cz(0, 1)]);
        assert_eq!(c.len(), 2);
        let labels: Vec<&str> = (&c).into_iter().map(|o| o.label()).collect();
        assert_eq!(labels, vec!["H", "CZ"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pushing_out_of_range_op_panics() {
        let mut c = Circuit::new(2);
        c.push(Operation::h(5));
    }

    #[test]
    fn display_contains_ops() {
        let text = format!("{}", bell());
        assert!(text.contains("CNOT"));
        assert!(text.contains("2 qubits"));
    }
}
