//! ASAP moment scheduling.
//!
//! A *moment* is a set of operations that act on disjoint qubits and can
//! execute simultaneously. The simulator uses moments to apply decoherence for
//! idle qubits, and the compiler reports circuit depth as the moment count.

use serde::{Deserialize, Serialize};

use crate::circuit::Circuit;
use crate::ops::Operation;

/// One parallel layer of operations (indices into the source circuit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Moment {
    /// Indices of operations (into `Circuit::operations()`) in this moment.
    pub op_indices: Vec<usize>,
}

impl Moment {
    /// Operations of the moment resolved against a circuit.
    pub fn resolve<'c>(&self, circuit: &'c Circuit) -> Vec<&'c Operation> {
        self.op_indices
            .iter()
            .map(|&i| &circuit.operations()[i])
            .collect()
    }
}

/// Greedy ASAP scheduling: each operation is placed in the earliest moment
/// after the last moment that touches any of its qubits.
///
/// Barriers occupy a moment slot on their qubits (forcing later operations on
/// those qubits into strictly later moments) but are included in the schedule
/// so callers can see them.
pub fn moments(circuit: &Circuit) -> Vec<Moment> {
    let n = circuit.num_qubits();
    // earliest free moment per qubit
    let mut frontier = vec![0usize; n];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for (idx, op) in circuit.iter().enumerate() {
        let start = op.qubits().iter().map(|&q| frontier[q]).max().unwrap_or(0);
        if start >= layers.len() {
            layers.resize_with(start + 1, Vec::new);
        }
        layers[start].push(idx);
        for &q in op.qubits() {
            frontier[q] = start + 1;
        }
    }
    layers
        .into_iter()
        .filter(|l| !l.is_empty())
        .map(|op_indices| Moment { op_indices })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Operation;

    #[test]
    fn parallel_gates_share_a_moment() {
        let mut c = Circuit::new(4);
        c.push(Operation::h(0));
        c.push(Operation::h(1));
        c.push(Operation::h(2));
        c.push(Operation::h(3));
        let m = moments(&c);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].op_indices.len(), 4);
    }

    #[test]
    fn dependent_gates_get_separate_moments() {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cz(0, 1));
        c.push(Operation::h(1));
        let m = moments(&c);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn independent_two_qubit_gates_are_parallel() {
        let mut c = Circuit::new(4);
        c.push(Operation::cz(0, 1));
        c.push(Operation::cz(2, 3));
        c.push(Operation::cz(1, 2));
        let m = moments(&c);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].op_indices, vec![0, 1]);
        assert_eq!(m[1].op_indices, vec![2]);
    }

    #[test]
    fn barrier_forces_a_new_moment() {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::barrier(vec![0, 1]));
        c.push(Operation::h(1));
        let m = moments(&c);
        // H(1) could otherwise run in moment 0, but the barrier pushes it later.
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn resolve_returns_ops() {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::x(1));
        let m = moments(&c);
        let ops = m[0].resolve(&c);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].label(), "H");
        assert_eq!(ops[1].label(), "X");
    }

    #[test]
    fn empty_circuit_has_no_moments() {
        let c = Circuit::new(3);
        assert!(moments(&c).is_empty());
        assert_eq!(c.depth(), 0);
    }
}
