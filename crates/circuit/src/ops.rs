//! Circuit operations.

use std::fmt;

use gates::{standard, GateType};
use qmath::CMatrix;
use serde::{Deserialize, Serialize};

/// Index of a qubit within a circuit or device.
pub type QubitId = usize;

/// The kind of an operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// A single-qubit unitary with a human-readable label (e.g. `"U3(…)"`).
    Unitary1Q {
        /// Display label.
        label: String,
        /// 2×2 unitary matrix.
        matrix: CMatrix,
    },
    /// A two-qubit unitary with a label (e.g. `"CZ"`, `"fSim(pi/6,pi)"`, `"SU4"`).
    Unitary2Q {
        /// Display label.
        label: String,
        /// 4×4 unitary matrix.
        matrix: CMatrix,
    },
    /// Computational-basis measurement of the operation's qubits.
    Measure,
    /// Scheduling barrier across the operation's qubits.
    Barrier,
}

/// One operation applied to an ordered list of qubits.
///
/// For two-qubit unitaries the qubit order matters: `qubits()[0]` is the first
/// (most-significant) index of the 4×4 matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    kind: OpKind,
    qubits: Vec<QubitId>,
}

impl Operation {
    /// Creates an operation from a kind and qubit list.
    ///
    /// # Panics
    /// Panics if the arity does not match the kind (1 qubit for 1Q unitaries,
    /// 2 distinct qubits for 2Q unitaries, ≥1 for measure/barrier).
    pub fn new(kind: OpKind, qubits: Vec<QubitId>) -> Self {
        match &kind {
            OpKind::Unitary1Q { matrix, .. } => {
                assert_eq!(qubits.len(), 1, "1Q unitary must act on exactly one qubit");
                assert_eq!(matrix.rows(), 2, "1Q unitary must be 2x2");
            }
            OpKind::Unitary2Q { matrix, .. } => {
                assert_eq!(qubits.len(), 2, "2Q unitary must act on exactly two qubits");
                assert_ne!(qubits[0], qubits[1], "2Q unitary qubits must be distinct");
                assert_eq!(matrix.rows(), 4, "2Q unitary must be 4x4");
            }
            OpKind::Measure | OpKind::Barrier => {
                assert!(
                    !qubits.is_empty(),
                    "measure/barrier needs at least one qubit"
                );
            }
        }
        Operation { kind, qubits }
    }

    /// A labelled single-qubit unitary. Accepts either matrix representation
    /// (`CMatrix` or the stack-allocated `Mat2`).
    pub fn unitary1q(label: impl Into<String>, matrix: impl Into<CMatrix>, q: QubitId) -> Self {
        Operation::new(
            OpKind::Unitary1Q {
                label: label.into(),
                matrix: matrix.into(),
            },
            vec![q],
        )
    }

    /// A labelled two-qubit unitary. Accepts either matrix representation
    /// (`CMatrix` or the stack-allocated `Mat4`).
    pub fn unitary2q(
        label: impl Into<String>,
        matrix: impl Into<CMatrix>,
        q0: QubitId,
        q1: QubitId,
    ) -> Self {
        Operation::new(
            OpKind::Unitary2Q {
                label: label.into(),
                matrix: matrix.into(),
            },
            vec![q0, q1],
        )
    }

    /// A two-qubit operation from a named hardware [`GateType`].
    pub fn from_gate_type(gate: &GateType, q0: QubitId, q1: QubitId) -> Self {
        Operation::unitary2q(gate.name(), *gate.unitary(), q0, q1)
    }

    /// Arbitrary single-qubit rotation `U3(α, β, λ)`.
    pub fn u3(q: QubitId, alpha: f64, beta: f64, lambda: f64) -> Self {
        Operation::unitary1q(
            format!("U3({alpha:.3},{beta:.3},{lambda:.3})"),
            standard::u3(alpha, beta, lambda),
            q,
        )
    }

    /// Hadamard gate.
    pub fn h(q: QubitId) -> Self {
        Operation::unitary1q("H", standard::h(), q)
    }

    /// Pauli-X gate.
    pub fn x(q: QubitId) -> Self {
        Operation::unitary1q("X", standard::x(), q)
    }

    /// X-rotation gate.
    pub fn rx(q: QubitId, theta: f64) -> Self {
        Operation::unitary1q(format!("RX({theta:.3})"), standard::rx(theta), q)
    }

    /// Z-rotation gate.
    pub fn rz(q: QubitId, theta: f64) -> Self {
        Operation::unitary1q(format!("RZ({theta:.3})"), standard::rz(theta), q)
    }

    /// CZ gate.
    pub fn cz(q0: QubitId, q1: QubitId) -> Self {
        Operation::unitary2q("CZ", standard::cz(), q0, q1)
    }

    /// CNOT gate (control `q0`, target `q1`).
    pub fn cnot(q0: QubitId, q1: QubitId) -> Self {
        Operation::unitary2q("CNOT", standard::cnot(), q0, q1)
    }

    /// SWAP gate.
    pub fn swap(q0: QubitId, q1: QubitId) -> Self {
        Operation::unitary2q("SWAP", standard::swap(), q0, q1)
    }

    /// Controlled-phase gate `CZ(φ)`.
    pub fn cphase(q0: QubitId, q1: QubitId, phi: f64) -> Self {
        Operation::unitary2q(format!("CZ({phi:.3})"), standard::cphase(phi), q0, q1)
    }

    /// ZZ interaction `exp(-i β Z⊗Z)` (QAOA cost term).
    pub fn zz(q0: QubitId, q1: QubitId, beta: f64) -> Self {
        Operation::unitary2q(
            format!("ZZ({beta:.3})"),
            standard::zz_interaction(beta),
            q0,
            q1,
        )
    }

    /// XX+YY interaction (Fermi–Hubbard hopping term).
    pub fn xx_plus_yy(q0: QubitId, q1: QubitId, t: f64) -> Self {
        Operation::unitary2q(
            format!("XXPlusYY({t:.3})"),
            standard::xx_plus_yy_interaction(t),
            q0,
            q1,
        )
    }

    /// Measurement of the listed qubits.
    pub fn measure(qubits: Vec<QubitId>) -> Self {
        Operation::new(OpKind::Measure, qubits)
    }

    /// Scheduling barrier across the listed qubits.
    pub fn barrier(qubits: Vec<QubitId>) -> Self {
        Operation::new(OpKind::Barrier, qubits)
    }

    /// The operation kind.
    pub fn kind(&self) -> &OpKind {
        &self.kind
    }

    /// The qubits the operation acts on, in order.
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// Display label of the operation.
    pub fn label(&self) -> &str {
        match &self.kind {
            OpKind::Unitary1Q { label, .. } | OpKind::Unitary2Q { label, .. } => label,
            OpKind::Measure => "measure",
            OpKind::Barrier => "barrier",
        }
    }

    /// The unitary matrix, for unitary operations.
    pub fn matrix(&self) -> Option<&CMatrix> {
        match &self.kind {
            OpKind::Unitary1Q { matrix, .. } | OpKind::Unitary2Q { matrix, .. } => Some(matrix),
            _ => None,
        }
    }

    /// True for two-qubit unitary operations.
    pub fn is_two_qubit_unitary(&self) -> bool {
        matches!(self.kind, OpKind::Unitary2Q { .. })
    }

    /// True for single-qubit unitary operations.
    pub fn is_one_qubit_unitary(&self) -> bool {
        matches!(self.kind, OpKind::Unitary1Q { .. })
    }

    /// True for measurement operations.
    pub fn is_measurement(&self) -> bool {
        matches!(self.kind, OpKind::Measure)
    }

    /// Returns a copy of the operation re-targeted onto new qubits (used by
    /// qubit mapping). The qubit count must match.
    ///
    /// # Panics
    /// Panics if `new_qubits.len()` differs from the current arity.
    pub fn retargeted(&self, new_qubits: Vec<QubitId>) -> Operation {
        assert_eq!(
            new_qubits.len(),
            self.qubits.len(),
            "arity mismatch in retarget"
        );
        Operation::new(self.kind.clone(), new_qubits)
    }

    /// The inverse (adjoint) of a unitary operation.
    ///
    /// # Panics
    /// Panics when called on a measurement or barrier.
    pub fn inverse(&self) -> Operation {
        match &self.kind {
            OpKind::Unitary1Q { label, matrix } => Operation::new(
                OpKind::Unitary1Q {
                    label: format!("{label}^-1"),
                    matrix: matrix.dagger(),
                },
                self.qubits.clone(),
            ),
            OpKind::Unitary2Q { label, matrix } => Operation::new(
                OpKind::Unitary2Q {
                    label: format!("{label}^-1"),
                    matrix: matrix.dagger(),
                },
                self.qubits.clone(),
            ),
            _ => panic!("cannot invert a non-unitary operation"),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?}", self.label(), self.qubits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_arity_and_labels() {
        let h = Operation::h(3);
        assert_eq!(h.qubits(), &[3]);
        assert_eq!(h.label(), "H");
        assert!(h.is_one_qubit_unitary());

        let cz = Operation::cz(0, 1);
        assert_eq!(cz.qubits(), &[0, 1]);
        assert!(cz.is_two_qubit_unitary());

        let m = Operation::measure(vec![0, 1, 2]);
        assert!(m.is_measurement());
        assert_eq!(m.label(), "measure");
    }

    #[test]
    fn matrices_are_unitary() {
        for op in [
            Operation::h(0),
            Operation::x(0),
            Operation::rx(0, 0.3),
            Operation::rz(0, 1.2),
            Operation::u3(0, 0.1, 0.2, 0.3),
            Operation::cz(0, 1),
            Operation::cnot(0, 1),
            Operation::swap(0, 1),
            Operation::cphase(0, 1, 0.4),
            Operation::zz(0, 1, 0.25),
            Operation::xx_plus_yy(0, 1, 0.6),
        ] {
            assert!(op.matrix().unwrap().is_unitary(1e-12), "{op}");
        }
        assert!(Operation::measure(vec![0]).matrix().is_none());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let op = Operation::u3(0, 0.7, 1.1, 2.2);
        let inv = op.inverse();
        let prod = &(op.matrix().unwrap().clone()) * inv.matrix().unwrap();
        assert!(prod.approx_eq(&qmath::CMatrix::identity(2), 1e-12));
    }

    #[test]
    fn retarget_preserves_kind() {
        let op = Operation::cz(0, 1);
        let moved = op.retargeted(vec![4, 7]);
        assert_eq!(moved.qubits(), &[4, 7]);
        assert_eq!(moved.label(), "CZ");
    }

    #[test]
    fn from_gate_type_uses_gate_unitary() {
        let syc = GateType::syc();
        let op = Operation::from_gate_type(&syc, 2, 5);
        assert_eq!(op.label(), "SYC");
        assert!(op.matrix().unwrap().approx_eq(syc.unitary(), 1e-12));
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn two_qubit_op_rejects_equal_qubits() {
        let _ = Operation::cz(1, 1);
    }

    #[test]
    #[should_panic(expected = "cannot invert")]
    fn inverse_of_measurement_panics() {
        let _ = Operation::measure(vec![0]).inverse();
    }
}
