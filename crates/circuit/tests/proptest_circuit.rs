//! Property-based tests for the circuit IR.

use circuit::{Circuit, Operation};
use proptest::prelude::*;

/// Strategy generating a random small circuit over `n` qubits.
fn arb_circuit(n: usize, max_ops: usize) -> impl Strategy<Value = Circuit> {
    let op = (0..6u8, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, a, b, angle)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Operation::h(a),
            1 => Operation::rx(a, angle),
            2 => Operation::rz(a, angle),
            3 => Operation::cz(a, b),
            4 => Operation::zz(a, b, angle),
            _ => Operation::swap(a, b),
        }
    });
    proptest::collection::vec(op, 1..max_ops).prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for op in ops {
            c.push(op);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn depth_is_bounded_by_length(c in arb_circuit(4, 12)) {
        prop_assert!(c.depth() <= c.len());
        prop_assert!(c.two_qubit_depth() <= c.two_qubit_gate_count());
    }

    #[test]
    fn gate_counts_are_consistent(c in arb_circuit(4, 12)) {
        let by_label: usize = c.two_qubit_counts_by_label().values().sum();
        prop_assert_eq!(by_label, c.two_qubit_gate_count());
        prop_assert_eq!(c.two_qubit_gate_count() + c.one_qubit_gate_count(), c.len());
    }

    #[test]
    fn circuit_unitary_is_unitary(c in arb_circuit(3, 10)) {
        prop_assert!(c.unitary().is_unitary(1e-8));
    }

    #[test]
    fn inverse_circuit_undoes_the_circuit(c in arb_circuit(3, 8)) {
        let mut full = c.clone();
        full.append_circuit(&c.inverse());
        let u = full.unitary();
        prop_assert!(u.approx_eq(&qmath::CMatrix::identity(8), 1e-7));
    }

    #[test]
    fn remapping_preserves_structure(c in arb_circuit(3, 10)) {
        let mapped = c.remapped(&[2, 0, 1], 3);
        prop_assert_eq!(mapped.len(), c.len());
        prop_assert_eq!(mapped.two_qubit_gate_count(), c.two_qubit_gate_count());
        prop_assert_eq!(mapped.depth(), c.depth());
    }

    #[test]
    fn moments_partition_all_operations(c in arb_circuit(4, 12)) {
        let moments = circuit::moments(&c);
        let total: usize = moments.iter().map(|m| m.op_indices.len()).sum();
        prop_assert_eq!(total, c.len());
        // No qubit appears twice within one moment.
        for m in &moments {
            let mut seen = std::collections::HashSet::new();
            for op in m.resolve(&c) {
                for &q in op.qubits() {
                    prop_assert!(seen.insert(q));
                }
            }
        }
    }
}
