//! Property-based tests for gate families and instruction sets.

use gates::fsim::{fsim, xy, ContinuousFamily, FsimPoint};
use gates::{standard, GateType, InstructionSet};
use proptest::prelude::*;

proptest! {
    // Seed-pinned tier-1 suite: case count fixed here, RNG stream fixed by
    // PROPTEST_RNG_SEED (see vendor/proptest) so CI runs are reproducible.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fsim_is_unitary_for_all_angles(theta in 0.0f64..std::f64::consts::PI, phi in 0.0f64..(2.0 * std::f64::consts::PI)) {
        prop_assert!(fsim(theta, phi).is_unitary(1e-10));
    }

    #[test]
    fn xy_is_unitary_and_periodic(theta in -10.0f64..10.0) {
        let u = xy(theta);
        prop_assert!(u.is_unitary(1e-10));
        // XY is 4π-periodic in matrix form (2π flips the sign of the block).
        let shifted = xy(theta + 4.0 * std::f64::consts::PI);
        prop_assert!(u.approx_eq(&shifted, 1e-9));
    }

    #[test]
    fn fsim_composes_additively_in_theta_on_the_xy_line(a in 0.0f64..1.5, b in 0.0f64..1.5) {
        // fSim(a,0)·fSim(b,0) = fSim(a+b,0): the iSWAP-like rotations commute.
        let lhs = fsim(a, 0.0) * fsim(b, 0.0);
        prop_assert!(lhs.approx_eq(&fsim(a + b, 0.0), 1e-9));
    }

    #[test]
    fn cphase_composes_additively(a in 0.0f64..3.0, b in 0.0f64..3.0) {
        let lhs = standard::cphase(a) * standard::cphase(b);
        prop_assert!(lhs.approx_eq(&standard::cphase(a + b), 1e-9));
    }

    #[test]
    fn u3_is_always_unitary(alpha in -7.0f64..7.0, beta in -7.0f64..7.0, lambda in -7.0f64..7.0) {
        prop_assert!(standard::u3(alpha, beta, lambda).is_unitary(1e-10));
    }

    #[test]
    fn zz_and_hopping_interactions_are_unitary(angle in -3.0f64..3.0) {
        prop_assert!(standard::zz_interaction(angle).is_unitary(1e-10));
        prop_assert!(standard::xx_plus_yy_interaction(angle).is_unitary(1e-10));
    }

    #[test]
    fn continuous_family_unitaries_are_unitary(theta in 0.0f64..std::f64::consts::FRAC_PI_2, phi in 0.0f64..std::f64::consts::PI) {
        prop_assert!(ContinuousFamily::FullFsim.unitary(&[theta, phi]).is_unitary(1e-10));
        prop_assert!(ContinuousFamily::FullXy.unitary(&[theta]).is_unitary(1e-10));
    }

    #[test]
    fn fsim_point_distance_is_a_metric(a in 0.0f64..1.5, b in 0.0f64..3.1, c in 0.0f64..1.5, d in 0.0f64..3.1) {
        let p = FsimPoint::new(a, b);
        let q = FsimPoint::new(c, d);
        prop_assert!(p.distance(&q) >= 0.0);
        prop_assert!((p.distance(&q) - q.distance(&p)).abs() < 1e-12);
        prop_assert!(p.distance(&p) < 1e-12);
    }

    #[test]
    fn gate_type_from_fsim_records_coordinates(theta in 0.0f64..std::f64::consts::FRAC_PI_2, phi in 0.0f64..std::f64::consts::PI) {
        let g = GateType::from_fsim("probe", theta, phi);
        let coords = g.fsim_coords().unwrap();
        prop_assert!((coords.theta - theta).abs() < 1e-12);
        prop_assert!((coords.phi - phi).abs() < 1e-12);
        prop_assert!(g.unitary().approx_eq(&fsim(theta, phi), 1e-12));
    }
}

#[test]
fn every_table2_set_is_well_formed() {
    for set in InstructionSet::table2() {
        if set.is_continuous() {
            assert!(set.family().is_some());
        } else {
            assert!(!set.gate_types().is_empty());
            for g in set.gate_types() {
                assert!(
                    g.unitary().is_unitary(1e-10),
                    "{} in {}",
                    g.name(),
                    set.name()
                );
            }
        }
        // Round-trip through the by-name lookup.
        assert_eq!(
            InstructionSet::by_name(set.name()).unwrap().name(),
            set.name()
        );
    }
}
