//! Standard fixed gates and the parameterized single-qubit rotation `U3`.
//!
//! All matrices use the computational-basis ordering `|00⟩, |01⟩, |10⟩, |11⟩`
//! with the first qubit as the most significant bit, matching the paper's
//! Table I. Constructors return the stack-allocated [`Mat2`] / [`Mat4`]
//! representations so the synthesis hot path never allocates; convert with
//! `CMatrix::from(...)` where a heap matrix is needed.

use qmath::{Complex, Mat2, Mat4};

/// Arbitrary single-qubit rotation (paper footnote 1):
///
/// ```text
/// U3(α, β, λ) = [ cos(α/2)             -e^{iλ} sin(α/2)      ]
///               [ e^{iβ} sin(α/2)       e^{i(β+λ)} cos(α/2)  ]
/// ```
///
/// NuOp templates interleave layers of `U3` gates (three free parameters per
/// qubit) with the fixed hardware two-qubit gate.
pub fn u3(alpha: f64, beta: f64, lambda: f64) -> Mat2 {
    let (c, s) = ((alpha / 2.0).cos(), (alpha / 2.0).sin());
    Mat2::from_rows(&[
        Complex::from_real(c),
        -Complex::cis(lambda) * s,
        Complex::cis(beta) * s,
        Complex::cis(beta + lambda) * c,
    ])
}

/// Pauli X.
pub fn x() -> Mat2 {
    Mat2::from_real(&[0.0, 1.0, 1.0, 0.0])
}

/// Pauli Y.
pub fn y() -> Mat2 {
    Mat2::from_rows(&[
        Complex::ZERO,
        Complex::new(0.0, -1.0),
        Complex::new(0.0, 1.0),
        Complex::ZERO,
    ])
}

/// Pauli Z.
pub fn z() -> Mat2 {
    Mat2::from_real(&[1.0, 0.0, 0.0, -1.0])
}

/// Hadamard gate.
pub fn h() -> Mat2 {
    Mat2::from_real(&[1.0, 1.0, 1.0, -1.0]).scale(std::f64::consts::FRAC_1_SQRT_2)
}

/// Phase gate S = diag(1, i).
pub fn s() -> Mat2 {
    Mat2::diagonal(&[Complex::ONE, Complex::I])
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> Mat2 {
    Mat2::diagonal(&[Complex::ONE, Complex::cis(std::f64::consts::FRAC_PI_4)])
}

/// Rotation about X: `RX(θ) = exp(-i θ X / 2)`.
pub fn rx(theta: f64) -> Mat2 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Mat2::from_rows(&[
        Complex::from_real(c),
        Complex::new(0.0, -s),
        Complex::new(0.0, -s),
        Complex::from_real(c),
    ])
}

/// Rotation about Y: `RY(θ) = exp(-i θ Y / 2)`.
pub fn ry(theta: f64) -> Mat2 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Mat2::from_real(&[c, -s, s, c])
}

/// Rotation about Z: `RZ(θ) = exp(-i θ Z / 2)`.
pub fn rz(theta: f64) -> Mat2 {
    Mat2::diagonal(&[Complex::cis(-theta / 2.0), Complex::cis(theta / 2.0)])
}

/// Single-qubit phase gate `P(φ) = diag(1, e^{iφ})`.
pub fn phase(phi: f64) -> Mat2 {
    Mat2::diagonal(&[Complex::ONE, Complex::cis(phi)])
}

/// Controlled-Z gate (Table I).
pub fn cz() -> Mat4 {
    Mat4::diagonal(&[Complex::ONE, Complex::ONE, Complex::ONE, -Complex::ONE])
}

/// Controlled-NOT with the first qubit as control.
pub fn cnot() -> Mat4 {
    Mat4::from_real(&[
        1.0, 0.0, 0.0, 0.0, //
        0.0, 1.0, 0.0, 0.0, //
        0.0, 0.0, 0.0, 1.0, //
        0.0, 0.0, 1.0, 0.0,
    ])
}

/// SWAP gate.
pub fn swap() -> Mat4 {
    Mat4::from_real(&[
        1.0, 0.0, 0.0, 0.0, //
        0.0, 0.0, 1.0, 0.0, //
        0.0, 1.0, 0.0, 0.0, //
        0.0, 0.0, 0.0, 1.0,
    ])
}

/// iSWAP gate in the textbook convention (`+i` off-diagonal swap amplitudes).
///
/// The paper's `iSWAP` gate type is `fSim(π/2, 0)`, which has `-i` amplitudes;
/// the two differ only by single-qubit Z rotations and are interchangeable for
/// expressivity purposes. See [`crate::fsim::fsim`].
pub fn iswap() -> Mat4 {
    Mat4::from_rows(&[
        Complex::ONE,
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::ZERO,
        Complex::I,
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::I,
        Complex::ZERO,
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        Complex::ONE,
    ])
}

/// Two-qubit identity.
pub fn identity2q() -> Mat4 {
    Mat4::identity()
}

/// Controlled-phase gate `CZ(φ) = diag(1, 1, 1, e^{iφ})`.
///
/// QFT circuits are built from `CZ(π/2^t)` gates.
pub fn cphase(phi: f64) -> Mat4 {
    Mat4::diagonal(&[Complex::ONE, Complex::ONE, Complex::ONE, Complex::cis(phi)])
}

/// Two-qubit ZZ-interaction `exp(-i β Z⊗Z)` used by QAOA circuits (Fig. 2b).
pub fn zz_interaction(beta: f64) -> Mat4 {
    Mat4::diagonal(&[
        Complex::cis(-beta),
        Complex::cis(beta),
        Complex::cis(beta),
        Complex::cis(-beta),
    ])
}

/// Two-qubit XX+YY interaction `exp(-i t (X⊗X + Y⊗Y) / 2)` used by the
/// Fermi–Hubbard hopping terms.
pub fn xx_plus_yy_interaction(t: f64) -> Mat4 {
    // In the {|01>, |10>} subspace this acts as a rotation; it is exactly the
    // XY(θ) family with θ = -2 t (up to convention).
    let (c, s) = (t.cos(), t.sin());
    Mat4::from_rows(&[
        Complex::ONE,
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::from_real(c),
        Complex::new(0.0, -s),
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::new(0.0, -s),
        Complex::from_real(c),
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        Complex::ONE,
    ])
}

/// Embeds two single-qubit unitaries as `a ⊗ b` on two qubits.
pub fn kron2(a: &Mat2, b: &Mat2) -> Mat4 {
    a.kron(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::CMatrix;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn all_fixed_gates_are_unitary() {
        for (name, g) in [
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("h", h()),
            ("s", s()),
            ("t", t()),
        ] {
            assert!(g.is_unitary(1e-12), "{name} is not unitary");
        }
        for (name, g) in [
            ("cz", cz()),
            ("cnot", cnot()),
            ("swap", swap()),
            ("iswap", iswap()),
        ] {
            assert!(g.is_unitary(1e-12), "{name} is not unitary");
        }
    }

    #[test]
    fn rotations_are_unitary_for_many_angles() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!(rx(theta).is_unitary(1e-12));
            assert!(ry(theta).is_unitary(1e-12));
            assert!(rz(theta).is_unitary(1e-12));
            assert!(u3(theta, 0.3 * theta, 1.7 * theta).is_unitary(1e-12));
            assert!(cphase(theta).is_unitary(1e-12));
            assert!(zz_interaction(theta).is_unitary(1e-12));
            assert!(xx_plus_yy_interaction(theta).is_unitary(1e-12));
        }
    }

    #[test]
    fn hadamard_diagonalizes_x() {
        // H X H = Z
        let hxh = h() * x() * h();
        assert!(hxh.approx_eq(&z(), 1e-12));
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        assert!((s() * s()).approx_eq(&z(), 1e-12));
        assert!((t() * t()).approx_eq(&s(), 1e-12));
    }

    #[test]
    fn cnot_from_cz_and_hadamards() {
        // CNOT = (I ⊗ H) CZ (I ⊗ H)
        let ih = Mat2::identity().kron(&h());
        let built = ih * cz() * ih;
        assert!(built.approx_eq(&cnot(), 1e-12));
    }

    #[test]
    fn swap_from_three_cnots() {
        let cnot01 = cnot();
        // CNOT with target as first qubit = (H⊗H) CNOT (H⊗H)
        let hh = h().kron(&h());
        let cnot10 = hh * cnot01 * hh;
        let built = cnot01 * cnot10 * cnot01;
        assert!(built.approx_eq(&swap(), 1e-12));
    }

    #[test]
    fn u3_special_cases() {
        // U3(0, 0, 0) = I
        assert!(u3(0.0, 0.0, 0.0).approx_eq(&Mat2::identity(), 1e-12));
        // U3(pi, 0, pi) = X
        assert!(u3(PI, 0.0, PI).approx_eq(&x(), 1e-12));
        // U3(pi/2, 0, pi) = H
        assert!(u3(FRAC_PI_2, 0.0, PI).approx_eq(&h(), 1e-12));
        // U3(0, 0, lambda) = P(lambda) up to convention
        assert!(u3(0.0, 0.0, 0.77).approx_eq(&phase(0.77), 1e-12));
    }

    #[test]
    fn rz_is_phase_up_to_global_phase() {
        let theta = 0.9;
        assert!(rz(theta).approx_eq_up_to_phase(&phase(theta), 1e-12));
    }

    #[test]
    fn rotations_compose_additively() {
        let a = 0.4;
        let b = 1.1;
        assert!((rx(a) * rx(b)).approx_eq(&rx(a + b), 1e-12));
        assert!((ry(a) * ry(b)).approx_eq(&ry(a + b), 1e-12));
        assert!((rz(a) * rz(b)).approx_eq(&rz(a + b), 1e-12));
    }

    #[test]
    fn cphase_pi_is_cz() {
        assert!(cphase(PI).approx_eq(&cz(), 1e-12));
    }

    #[test]
    fn zz_interaction_matches_paper_example() {
        // Fig. 2b: e^{-0.0303 i ZZ} has diagonal (e^{-0.0303 i}, e^{+...}, e^{+...}, e^{-...})
        // with |entries| all 1 and real part ~0.9995.
        let u = zz_interaction(0.0303);
        assert!((u[(1, 1)].re - 0.9995).abs() < 1e-3);
        assert!((u[(0, 0)] - u[(3, 3)]).norm() < 1e-12);
        assert!((u[(1, 1)] - u[(2, 2)]).norm() < 1e-12);
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn xx_plus_yy_preserves_excitation_number() {
        // |00> and |11> amplitudes untouched.
        let u = xx_plus_yy_interaction(0.8);
        assert!((u[(0, 0)] - Complex::ONE).norm() < 1e-12);
        assert!((u[(3, 3)] - Complex::ONE).norm() < 1e-12);
        assert!(u[(0, 3)].norm() < 1e-12);
        assert!(u[(3, 0)].norm() < 1e-12);
    }

    #[test]
    fn iswap_is_swap_times_phases() {
        // iSWAP differs from SWAP only by i phases on the swapped amplitudes.
        let is = iswap();
        assert!((is[(1, 2)] - Complex::I).norm() < 1e-12);
        assert!((is[(2, 1)] - Complex::I).norm() < 1e-12);
    }

    #[test]
    fn gates_convert_losslessly_to_cmatrix() {
        let heap: CMatrix = swap().into();
        assert!(heap.is_unitary(1e-12));
        assert!(heap.approx_eq(&swap(), 0.0));
    }
}
