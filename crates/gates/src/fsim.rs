//! Continuous two-qubit gate families: `fSim(θ, φ)`, `XY(θ)` and `CPHASE(φ)`.
//!
//! Table I of the paper defines
//!
//! ```text
//! fSim(θ, φ) = [ 1      0          0         0        ]
//!              [ 0      cos θ     -i sin θ   0        ]
//!              [ 0     -i sin θ    cos θ     0        ]
//!              [ 0      0          0         e^{-iφ}  ]
//!
//! XY(θ)      = [ 1      0            0           0 ]
//!              [ 0      cos(θ/2)     i sin(θ/2)  0 ]
//!              [ 0      i sin(θ/2)   cos(θ/2)    0 ]
//!              [ 0      0            0           1 ]
//! ```
//!
//! with the identities (up to single-qubit rotations) `XY(θ) = iSWAP(θ/2) =
//! fSim(θ/2, 0)` and `CZ(φ) = fSim(0, φ)` used throughout Table II.

use qmath::{Complex, Mat4};
use serde::{Deserialize, Serialize};

/// The Google `fSim(θ, φ)` unitary (Table I).
///
/// ```
/// use gates::fsim::fsim;
/// // fSim(0, pi) is the CZ gate.
/// let cz = fsim(0.0, std::f64::consts::PI);
/// assert!((cz[(3, 3)].re + 1.0).abs() < 1e-12);
/// ```
pub fn fsim(theta: f64, phi: f64) -> Mat4 {
    let (c, s) = (theta.cos(), theta.sin());
    Mat4::from_rows(&[
        Complex::ONE,
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::from_real(c),
        Complex::new(0.0, -s),
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::new(0.0, -s),
        Complex::from_real(c),
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        Complex::cis(-phi),
    ])
}

/// The Rigetti `XY(θ)` unitary (Table I).
pub fn xy(theta: f64) -> Mat4 {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    Mat4::from_rows(&[
        Complex::ONE,
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::from_real(c),
        Complex::new(0.0, s),
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::new(0.0, s),
        Complex::from_real(c),
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::ZERO,
        Complex::ZERO,
        Complex::ONE,
    ])
}

/// The controlled-phase family `CPHASE(φ) = fSim(0, -φ)` in the paper's sign
/// convention, i.e. `diag(1, 1, 1, e^{iφ})`.
pub fn cphase(phi: f64) -> Mat4 {
    crate::standard::cphase(phi)
}

/// Coordinates of a gate type inside the `fSim(θ, φ)` parameter plane.
///
/// Figure 8 of the paper sweeps this plane on a 19×19 grid with
/// `θ ∈ [0, π/2]` and `φ ∈ [0, π]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsimPoint {
    /// iSWAP-like rotation angle θ.
    pub theta: f64,
    /// Controlled-phase angle φ.
    pub phi: f64,
}

impl FsimPoint {
    /// Creates a new parameter point.
    pub const fn new(theta: f64, phi: f64) -> Self {
        FsimPoint { theta, phi }
    }

    /// The unitary matrix at this point of the family.
    pub fn unitary(&self) -> Mat4 {
        fsim(self.theta, self.phi)
    }

    /// Euclidean distance to another point in (θ, φ) space. Used by the
    /// calibration model to reason about parameter-space coverage.
    pub fn distance(&self, other: &FsimPoint) -> f64 {
        ((self.theta - other.theta).powi(2) + (self.phi - other.phi).powi(2)).sqrt()
    }
}

/// Description of a continuous gate family (FullXY or FullfSim in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContinuousFamily {
    /// Rigetti's `XY(θ)` family, θ ∈ [0, π], i.e. the `φ = 0` line of fSim.
    FullXy,
    /// Google's full `fSim(θ, φ)` family, θ ∈ [0, π/2], φ ∈ [0, π].
    FullFsim,
}

impl ContinuousFamily {
    /// Human-readable name matching the paper's Table II.
    pub fn name(&self) -> &'static str {
        match self {
            ContinuousFamily::FullXy => "FullXY",
            ContinuousFamily::FullFsim => "FullfSim",
        }
    }

    /// Number of free continuous parameters of the family.
    pub fn parameter_count(&self) -> usize {
        match self {
            ContinuousFamily::FullXy => 1,
            ContinuousFamily::FullFsim => 2,
        }
    }

    /// The unitary at a parameter vector. For `FullXy` only `params[0]` (θ) is
    /// read; for `FullFsim` both θ and φ are read.
    ///
    /// # Panics
    /// Panics if `params` is shorter than [`Self::parameter_count`].
    pub fn unitary(&self, params: &[f64]) -> Mat4 {
        match self {
            ContinuousFamily::FullXy => {
                assert!(!params.is_empty(), "FullXY needs one parameter");
                // XY(θ) = fSim(θ/2, 0) up to single-qubit rotations; we use the
                // fSim form directly so the continuous-template optimizer works
                // in a single coordinate system.
                fsim(params[0] / 2.0, 0.0)
            }
            ContinuousFamily::FullFsim => {
                assert!(params.len() >= 2, "FullfSim needs two parameters");
                fsim(params[0], params[1])
            }
        }
    }

    /// Parameter bounds `(lo, hi)` per parameter, used to initialize and clamp
    /// the continuous-template optimization.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        match self {
            ContinuousFamily::FullXy => vec![(0.0, std::f64::consts::PI)],
            ContinuousFamily::FullFsim => vec![
                (0.0, std::f64::consts::FRAC_PI_2),
                (0.0, std::f64::consts::PI),
            ],
        }
    }
}

/// Returns the uniformly discretized 19×19 grid of `fSim` parameter points used
/// in Figure 8: θ on 19 points over [0, π/2], φ on 19 points over [0, π].
pub fn figure8_grid() -> Vec<FsimPoint> {
    grid(19, 19)
}

/// A `nt × np` uniform grid over θ ∈ [0, π/2], φ ∈ [0, π].
pub fn grid(nt: usize, np: usize) -> Vec<FsimPoint> {
    assert!(nt >= 2 && np >= 2, "grid needs at least 2 points per axis");
    let mut points = Vec::with_capacity(nt * np);
    for ip in 0..np {
        for it in 0..nt {
            let theta = std::f64::consts::FRAC_PI_2 * it as f64 / (nt - 1) as f64;
            let phi = std::f64::consts::PI * ip as f64 / (np - 1) as f64;
            points.push(FsimPoint::new(theta, phi));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn fsim_is_unitary_across_the_plane() {
        for p in grid(7, 7) {
            assert!(
                p.unitary().is_unitary(1e-12),
                "fSim({}, {}) not unitary",
                p.theta,
                p.phi
            );
        }
    }

    #[test]
    fn xy_is_unitary() {
        for k in 0..9 {
            let theta = PI * k as f64 / 8.0;
            assert!(xy(theta).is_unitary(1e-12));
        }
    }

    #[test]
    fn fsim_zero_pi_is_cz() {
        assert!(fsim(0.0, PI).approx_eq(&standard::cz(), 1e-12));
    }

    #[test]
    fn fsim_zero_zero_is_identity() {
        assert!(fsim(0.0, 0.0).approx_eq(&Mat4::identity(), 1e-12));
    }

    #[test]
    fn fsim_pi_over_2_zero_is_iswap_up_to_1q_phases() {
        // fSim(pi/2, 0) has -i amplitudes; standard iSWAP has +i. They are
        // related by Z rotations, hence equal up to global phase after
        // conjugation by Z ⊗ I... simplest check: squares match SWAP-like
        // structure and the matrix is the conjugate of iSWAP.
        let f = fsim(FRAC_PI_2, 0.0);
        let isw = standard::iswap();
        assert!(f.approx_eq(&isw.conj(), 1e-12));
    }

    #[test]
    fn xy_matches_fsim_half_angle() {
        // XY(θ) and fSim(θ/2, 0) are equal up to single-qubit Z rotations; in
        // matrix form XY(θ) = conj(fSim(θ/2, 0)) because the sign of the i·sin
        // term flips.
        for k in 0..9 {
            let theta = PI * k as f64 / 8.0;
            let a = xy(theta);
            let b = fsim(theta / 2.0, 0.0).conj();
            assert!(a.approx_eq(&b, 1e-12), "mismatch at theta={theta}");
        }
    }

    #[test]
    fn xy_pi_excitation_swap() {
        // XY(pi) fully swaps |01> and |10> (with i phases).
        let u = xy(PI);
        assert!(u[(1, 1)].norm() < 1e-12);
        assert!((u[(1, 2)] - Complex::I).norm() < 1e-12);
    }

    #[test]
    fn syc_and_sqrt_iswap_coordinates() {
        // SYC = fSim(pi/2, pi/6); sqrt(iSWAP) = fSim(pi/4, 0) (Table I).
        let syc = fsim(FRAC_PI_2, PI / 6.0);
        assert!(syc[(1, 1)].norm() < 1e-12);
        assert!((syc[(3, 3)] - Complex::cis(-PI / 6.0)).norm() < 1e-12);
        let sqiswap = fsim(FRAC_PI_4, 0.0);
        assert!((sqiswap[(1, 1)].re - FRAC_PI_4.cos()).abs() < 1e-12);
    }

    #[test]
    fn cphase_family_matches_diag() {
        let u = cphase(0.3);
        assert!((u[(3, 3)] - Complex::cis(0.3)).norm() < 1e-12);
    }

    #[test]
    fn continuous_family_bounds_and_dims() {
        assert_eq!(ContinuousFamily::FullXy.parameter_count(), 1);
        assert_eq!(ContinuousFamily::FullFsim.parameter_count(), 2);
        assert_eq!(ContinuousFamily::FullXy.bounds().len(), 1);
        assert_eq!(ContinuousFamily::FullFsim.bounds().len(), 2);
        assert_eq!(ContinuousFamily::FullXy.name(), "FullXY");
        assert_eq!(ContinuousFamily::FullFsim.name(), "FullfSim");
    }

    #[test]
    fn continuous_family_unitaries_are_unitary() {
        for t in [0.0, 0.5, 1.5, 3.0] {
            assert!(ContinuousFamily::FullXy.unitary(&[t]).is_unitary(1e-12));
            assert!(ContinuousFamily::FullFsim
                .unitary(&[t / 2.0, t])
                .is_unitary(1e-12));
        }
    }

    #[test]
    fn figure8_grid_has_361_points() {
        let g = figure8_grid();
        assert_eq!(g.len(), 19 * 19);
        // Corners of the plane.
        assert!(g
            .iter()
            .any(|p| p.theta.abs() < 1e-12 && p.phi.abs() < 1e-12));
        assert!(g
            .iter()
            .any(|p| (p.theta - FRAC_PI_2).abs() < 1e-12 && (p.phi - PI).abs() < 1e-12));
    }

    #[test]
    fn fsim_point_distance() {
        let a = FsimPoint::new(0.0, 0.0);
        let b = FsimPoint::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
