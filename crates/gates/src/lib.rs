//! Quantum gate definitions and instruction sets.
//!
//! This crate encodes the gate-level vocabulary of the ISCA'21 paper
//! *"Designing Calibration and Expressivity-Efficient Instruction Sets for
//! Quantum Computing"*:
//!
//! * Standard fixed gates (Pauli, Hadamard, CZ, CNOT, SWAP, iSWAP, …) and the
//!   arbitrary single-qubit rotation `U3(α, β, λ)` used by NuOp templates
//!   ([`standard`]).
//! * The continuous two-qubit **gate families** proposed by Rigetti and Google —
//!   `XY(θ)`, `CPHASE(φ)` and `fSim(θ, φ)` (Table I) — in [`fsim`].
//! * Named two-qubit **gate types** (fixed points of a family) such as `SYC`,
//!   `√iSWAP` and the `S1..S7` types the paper selects ([`gate_type`]).
//! * The **instruction sets** studied by the paper (Table II): single-type sets
//!   `S1`–`S7`, the Google combinations `G1`–`G7`, the Rigetti combinations
//!   `R1`–`R5`, and the continuous `FullXY` / `FullfSim` sets
//!   ([`instruction_set`]).
//!
//! The terminology follows §II of the paper: a gate *family* is a
//! continuously-parameterized set of unitaries; a gate *type* is one fixed
//! parameter choice in a family.
//!
//! # Example
//!
//! ```
//! use gates::{fsim, standard, GateType};
//!
//! // CZ is fSim(0, pi) (Table I identity).
//! let cz = standard::cz();
//! let as_fsim = fsim::fsim(0.0, std::f64::consts::PI);
//! assert!(cz.approx_eq(&as_fsim, 1e-12));
//!
//! // A named gate type carries its fSim coordinates.
//! let syc = GateType::syc();
//! assert_eq!(syc.name(), "SYC");
//! assert!(syc.unitary().is_unitary(1e-12));
//! ```

#![warn(missing_docs)]

pub mod fsim;
pub mod gate_type;
pub mod instruction_set;
pub mod standard;

pub use gate_type::GateType;
pub use instruction_set::{GateSetKind, InstructionSet, InvalidInstructionSet};
