//! Instruction sets (Table II of the paper).
//!
//! An instruction set is the collection of two-qubit gate types a device
//! exposes to the compiler (arbitrary single-qubit rotations are always
//! included and are not represented explicitly). The paper studies:
//!
//! * single-type sets `S1..S7`,
//! * Google multi-type sets `G1..G7` (nested combinations of `S1..S7` plus
//!   SWAP in `G7`),
//! * Rigetti multi-type sets `R1..R5` (subsets realizable with the XY family
//!   plus CZ, plus SWAP in `R5`),
//! * the continuous `FullXY` and `FullfSim` families.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fsim::ContinuousFamily;
use crate::gate_type::GateType;

/// Error returned by the fallible [`InstructionSet`] constructors
/// ([`InstructionSet::try_s`], [`InstructionSet::try_g`],
/// [`InstructionSet::try_r`]) when the requested set does not exist in
/// Table II.
///
/// ```
/// use gates::InstructionSet;
/// let err = InstructionSet::try_g(8).unwrap_err();
/// assert!(err.to_string().contains("G8 is not defined"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvalidInstructionSet {
    /// The name that was requested (e.g. `"G8"`).
    pub name: String,
    /// Human-readable explanation of why the set is invalid.
    pub reason: String,
}

impl InvalidInstructionSet {
    /// Creates an error for `name` with an explanatory `reason`.
    pub fn new(name: impl Into<String>, reason: impl Into<String>) -> Self {
        InvalidInstructionSet {
            name: name.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for InvalidInstructionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for InvalidInstructionSet {}

/// Whether an instruction set is a finite list of calibrated types or a full
/// continuous family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GateSetKind {
    /// A finite set of calibrated gate types.
    Discrete(Vec<GateType>),
    /// A continuous gate family (every parameter value available).
    Continuous(ContinuousFamily),
}

/// A named instruction set from Table II.
///
/// ```
/// use gates::InstructionSet;
/// let g2 = InstructionSet::g(2);
/// assert_eq!(g2.name(), "G2");
/// assert_eq!(g2.gate_types().len(), 3); // {SYC, sqrt_iSWAP, CZ}
/// assert!(!g2.is_continuous());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionSet {
    name: String,
    kind: GateSetKind,
}

impl InstructionSet {
    /// Creates a discrete instruction set from gate types.
    ///
    /// # Panics
    /// Panics if `types` is empty.
    pub fn discrete(name: impl Into<String>, types: Vec<GateType>) -> Self {
        assert!(
            !types.is_empty(),
            "an instruction set needs at least one gate type"
        );
        InstructionSet {
            name: name.into(),
            kind: GateSetKind::Discrete(types),
        }
    }

    /// Creates a continuous instruction set.
    pub fn continuous(family: ContinuousFamily) -> Self {
        InstructionSet {
            name: family.name().to_string(),
            kind: GateSetKind::Continuous(family),
        }
    }

    /// Instruction-set name as used in the paper (e.g. `"S3"`, `"G7"`, `"FullfSim"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The set's kind (discrete list or continuous family).
    pub fn kind(&self) -> &GateSetKind {
        &self.kind
    }

    /// True for `FullXY` / `FullfSim`.
    pub fn is_continuous(&self) -> bool {
        matches!(self.kind, GateSetKind::Continuous(_))
    }

    /// The discrete gate types of the set (empty slice for continuous sets).
    pub fn gate_types(&self) -> &[GateType] {
        match &self.kind {
            GateSetKind::Discrete(v) => v,
            GateSetKind::Continuous(_) => &[],
        }
    }

    /// The continuous family, if this is a continuous set.
    pub fn family(&self) -> Option<ContinuousFamily> {
        match &self.kind {
            GateSetKind::Discrete(_) => None,
            GateSetKind::Continuous(f) => Some(*f),
        }
    }

    /// Number of distinct two-qubit gate types that must be calibrated, or
    /// `None` for continuous families (which expose unboundedly many).
    ///
    /// ```
    /// use gates::InstructionSet;
    /// assert_eq!(InstructionSet::g(3).num_gate_types(), Some(4));
    /// assert_eq!(InstructionSet::full_xy().num_gate_types(), None);
    /// ```
    pub fn num_gate_types(&self) -> Option<usize> {
        match &self.kind {
            GateSetKind::Discrete(v) => Some(v.len()),
            GateSetKind::Continuous(_) => None,
        }
    }

    /// True when the set contains a native SWAP gate type (the paper's R5/G7).
    pub fn has_native_swap(&self) -> bool {
        self.gate_types().iter().any(|g| g.name() == "SWAP")
    }

    // ----- Table II constructors -----

    /// Fallible [`InstructionSet::s`]: `Err` instead of panicking for `k`
    /// outside `1..=7`.
    ///
    /// ```
    /// use gates::InstructionSet;
    /// assert_eq!(InstructionSet::try_s(3).unwrap().name(), "S3");
    /// assert!(InstructionSet::try_s(0).is_err());
    /// ```
    pub fn try_s(k: usize) -> Result<InstructionSet, InvalidInstructionSet> {
        if !(1..=7).contains(&k) {
            return Err(InvalidInstructionSet::new(
                format!("S{k}"),
                format!("S{k} is not defined; valid sets are S1..S7"),
            ));
        }
        Ok(InstructionSet::discrete(
            format!("S{k}"),
            vec![GateType::s(k)],
        ))
    }

    /// Single-type instruction set `Sk`, `k ∈ 1..=7`.
    ///
    /// # Panics
    /// Panics for `k` outside `1..=7`; use [`InstructionSet::try_s`] to handle
    /// the error instead.
    pub fn s(k: usize) -> InstructionSet {
        InstructionSet::try_s(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`InstructionSet::g`]: `Err` instead of panicking for `k`
    /// outside `1..=7`.
    pub fn try_g(k: usize) -> Result<InstructionSet, InvalidInstructionSet> {
        if !(1..=7).contains(&k) {
            return Err(InvalidInstructionSet::new(
                format!("G{k}"),
                format!("G{k} is not defined; valid sets are G1..G7"),
            ));
        }
        let mut types: Vec<GateType> = (1..=(k + 1).min(7)).map(GateType::s).collect();
        if k == 7 {
            types.push(GateType::swap());
        }
        Ok(InstructionSet::discrete(format!("G{k}"), types))
    }

    /// Google multi-type instruction set `Gk`, `k ∈ 1..=7`:
    /// `G1 = {S1,S2}`, `G2 = {S1,S2,S3}`, …, `G6 = {S1..S7}`, `G7 = G6 ∪ {SWAP}`.
    ///
    /// # Panics
    /// Panics for `k` outside `1..=7`; use [`InstructionSet::try_g`] to handle
    /// the error instead.
    pub fn g(k: usize) -> InstructionSet {
        InstructionSet::try_g(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`InstructionSet::r`]: `Err` instead of panicking for `k`
    /// outside `1..=5`.
    pub fn try_r(k: usize) -> Result<InstructionSet, InvalidInstructionSet> {
        let types = match k {
            1 => vec![GateType::s(3), GateType::s(4)],
            2 => vec![GateType::s(2), GateType::s(3), GateType::s(4)],
            3 => vec![
                GateType::s(2),
                GateType::s(3),
                GateType::s(4),
                GateType::s(5),
            ],
            4 => vec![
                GateType::s(2),
                GateType::s(3),
                GateType::s(4),
                GateType::s(5),
                GateType::s(6),
            ],
            5 => vec![
                GateType::s(2),
                GateType::s(3),
                GateType::s(4),
                GateType::s(5),
                GateType::s(6),
                GateType::swap(),
            ],
            _ => {
                return Err(InvalidInstructionSet::new(
                    format!("R{k}"),
                    format!("R{k} is not defined; valid sets are R1..R5"),
                ))
            }
        };
        Ok(InstructionSet::discrete(format!("R{k}"), types))
    }

    /// Rigetti multi-type instruction set `Rk`, `k ∈ 1..=5`:
    /// `R1 = {S3,S4}`, `R2 = {S2,S3,S4}`, `R3 = {S2,S3,S4,S5}`,
    /// `R4 = {S2,S3,S4,S5,S6}`, `R5 = R4 ∪ {SWAP}`.
    ///
    /// # Panics
    /// Panics for `k` outside `1..=5`; use [`InstructionSet::try_r`] to handle
    /// the error instead.
    pub fn r(k: usize) -> InstructionSet {
        InstructionSet::try_r(k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Rigetti's continuous `FullXY` set.
    pub fn full_xy() -> InstructionSet {
        InstructionSet::continuous(ContinuousFamily::FullXy)
    }

    /// Google's continuous `FullfSim` set.
    pub fn full_fsim() -> InstructionSet {
        InstructionSet::continuous(ContinuousFamily::FullFsim)
    }

    /// All single-type sets `S1..S7` (Table II row 1).
    pub fn all_singles() -> Vec<InstructionSet> {
        (1..=7).map(InstructionSet::s).collect()
    }

    /// All Google sets `G1..G7` (Table II row 2).
    pub fn all_google() -> Vec<InstructionSet> {
        (1..=7).map(InstructionSet::g).collect()
    }

    /// All Rigetti sets `R1..R5` (Table II row 3).
    pub fn all_rigetti() -> Vec<InstructionSet> {
        (1..=5).map(InstructionSet::r).collect()
    }

    /// The complete Table II: S1–S7, G1–G7, R1–R5, FullXY, FullfSim.
    pub fn table2() -> Vec<InstructionSet> {
        let mut all = InstructionSet::all_singles();
        all.extend(InstructionSet::all_google());
        all.extend(InstructionSet::all_rigetti());
        all.push(InstructionSet::full_xy());
        all.push(InstructionSet::full_fsim());
        all
    }

    /// Looks up a Table II set by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<InstructionSet> {
        let lower = name.to_ascii_lowercase();
        InstructionSet::table2()
            .into_iter()
            .find(|s| s.name().to_ascii_lowercase() == lower)
    }
}

impl fmt::Display for InstructionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            GateSetKind::Discrete(types) => {
                let names: Vec<&str> = types.iter().map(|t| t.name()).collect();
                write!(f, "{} = {{{}}}", self.name, names.join(", "))
            }
            GateSetKind::Continuous(fam) => write!(f, "{} (continuous)", fam.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sets_have_one_type() {
        for k in 1..=7 {
            let s = InstructionSet::s(k);
            assert_eq!(s.gate_types().len(), 1);
            assert_eq!(s.name(), format!("S{k}"));
            assert!(!s.is_continuous());
            assert!(!s.has_native_swap());
        }
    }

    #[test]
    fn google_sets_match_table2_sizes() {
        // G1 has 2 types, G2 has 3, ..., G6 has 7, G7 has 8 (adds SWAP).
        let expected = [2usize, 3, 4, 5, 6, 7, 8];
        for (k, &want) in (1..=7).zip(expected.iter()) {
            let g = InstructionSet::g(k);
            assert_eq!(g.gate_types().len(), want, "G{k}");
        }
        assert!(InstructionSet::g(7).has_native_swap());
        assert!(!InstructionSet::g(6).has_native_swap());
    }

    #[test]
    fn rigetti_sets_match_table2_sizes() {
        let expected = [2usize, 3, 4, 5, 6];
        for (k, &want) in (1..=5).zip(expected.iter()) {
            let r = InstructionSet::r(k);
            assert_eq!(r.gate_types().len(), want, "R{k}");
        }
        assert!(InstructionSet::r(5).has_native_swap());
        assert!(!InstructionSet::r(4).has_native_swap());
    }

    #[test]
    fn rigetti_sets_only_use_xy_family_plus_cz_and_swap() {
        // Every Rigetti gate type must lie on the XY line (phi = 0) or be CZ or SWAP.
        for k in 1..=5 {
            for t in InstructionSet::r(k).gate_types() {
                let ok = t.name() == "CZ"
                    || t.name() == "SWAP"
                    || t.fsim_coords().is_some_and(|c| c.phi.abs() < 1e-12);
                assert!(ok, "R{k} contains non-XY-family type {}", t.name());
            }
        }
    }

    #[test]
    fn continuous_sets() {
        let xy = InstructionSet::full_xy();
        let fsim = InstructionSet::full_fsim();
        assert!(xy.is_continuous());
        assert!(fsim.is_continuous());
        assert_eq!(xy.num_gate_types(), None);
        assert!(xy.gate_types().is_empty());
        assert_eq!(xy.family(), Some(ContinuousFamily::FullXy));
        assert_eq!(fsim.family(), Some(ContinuousFamily::FullFsim));
    }

    #[test]
    fn table2_has_21_sets() {
        // 7 singles + 7 Google + 5 Rigetti + 2 continuous.
        assert_eq!(InstructionSet::table2().len(), 21);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(InstructionSet::by_name("g3").unwrap().name(), "G3");
        assert_eq!(
            InstructionSet::by_name("FULLFSIM").unwrap().name(),
            "FullfSim"
        );
        assert!(InstructionSet::by_name("nonsense").is_none());
    }

    #[test]
    fn google_sets_are_nested() {
        for k in 1..=6usize {
            let smaller = InstructionSet::g(k);
            let larger = InstructionSet::g(k + 1);
            for t in smaller.gate_types() {
                assert!(
                    larger.gate_types().iter().any(|u| u.name() == t.name()),
                    "G{} missing {} from G{}",
                    k + 1,
                    t.name(),
                    k
                );
            }
        }
    }

    #[test]
    fn display_lists_members() {
        let shown = format!("{}", InstructionSet::g(1));
        assert!(shown.contains("SYC"));
        assert!(shown.contains("sqrt_iSWAP"));
        let cont = format!("{}", InstructionSet::full_fsim());
        assert!(cont.contains("continuous"));
    }

    #[test]
    fn num_gate_types_counts_discrete_sets() {
        assert_eq!(InstructionSet::s(1).num_gate_types(), Some(1));
        assert_eq!(InstructionSet::g(7).num_gate_types(), Some(8));
        assert_eq!(InstructionSet::r(5).num_gate_types(), Some(6));
        assert_eq!(InstructionSet::full_fsim().num_gate_types(), None);
    }

    #[test]
    fn try_constructors_agree_with_panicking_ones() {
        for k in 1..=7 {
            assert_eq!(InstructionSet::try_s(k).unwrap(), InstructionSet::s(k));
            assert_eq!(InstructionSet::try_g(k).unwrap(), InstructionSet::g(k));
        }
        for k in 1..=5 {
            assert_eq!(InstructionSet::try_r(k).unwrap(), InstructionSet::r(k));
        }
    }

    #[test]
    fn try_constructors_reject_out_of_range_sets() {
        for k in [0usize, 8, 100] {
            assert!(InstructionSet::try_s(k).is_err(), "S{k}");
            assert!(InstructionSet::try_g(k).is_err(), "G{k}");
        }
        let err = InstructionSet::try_r(6).unwrap_err();
        assert_eq!(err.name, "R6");
        assert!(err.reason.contains("valid sets are R1..R5"));
        // The error type is a std error with a useful Display.
        let dynamic: &dyn std::error::Error = &err;
        assert!(dynamic.to_string().contains("R6 is not defined"));
    }

    #[test]
    #[should_panic(expected = "G8 is not defined")]
    fn invalid_google_set_panics() {
        let _ = InstructionSet::g(8);
    }

    #[test]
    #[should_panic(expected = "R6 is not defined")]
    fn invalid_rigetti_set_panics() {
        let _ = InstructionSet::r(6);
    }
}
