//! Named two-qubit gate *types*: fixed parameter points of a gate family.
//!
//! The paper selects seven expressive types `S1..S7` from the fSim plane
//! (Fig. 8 / Table II) plus the hardware `SWAP` gate, and also uses the fixed
//! gates already deployed on Rigetti (CZ, XY(π)) and Google (SYC, √iSWAP)
//! hardware.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_3, FRAC_PI_4, FRAC_PI_6, PI};
use std::fmt;

use qmath::Mat4;
use serde::{Deserialize, Serialize};

use crate::fsim::{fsim, FsimPoint};
use crate::standard;

/// A named two-qubit gate type: a fixed unitary that hardware can calibrate.
///
/// A `GateType` optionally records its coordinates in the fSim parameter plane
/// (all types studied in the paper have such coordinates except the plain
/// `SWAP`, which is fSim(π/2, π) up to single-qubit rotations and is tracked
/// with those coordinates too).
///
/// ```
/// use gates::GateType;
/// let g = GateType::sqrt_iswap();
/// assert_eq!(g.name(), "sqrt_iSWAP");
/// assert!(g.unitary().is_unitary(1e-12));
/// assert!(g.fsim_coords().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateType {
    name: String,
    unitary: Mat4,
    fsim_coords: Option<FsimPoint>,
}

impl GateType {
    /// Creates a gate type from a name and an explicit 4×4 unitary.
    ///
    /// # Panics
    /// Panics if the matrix is not unitary.
    pub fn new(name: impl Into<String>, unitary: Mat4) -> Self {
        assert!(unitary.is_unitary(1e-9), "gate type matrix must be unitary");
        GateType {
            name: name.into(),
            unitary,
            fsim_coords: None,
        }
    }

    /// Creates a gate type located at `fSim(θ, φ)`.
    pub fn from_fsim(name: impl Into<String>, theta: f64, phi: f64) -> Self {
        GateType {
            name: name.into(),
            unitary: fsim(theta, phi),
            fsim_coords: Some(FsimPoint::new(theta, phi)),
        }
    }

    /// Gate-type name (e.g. `"SYC"`, `"CZ"`, `"fSim(pi/3,0)"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The 4×4 unitary implemented by this gate type (stack-allocated; `Copy`
    /// it freely into templates and simulators).
    pub fn unitary(&self) -> &Mat4 {
        &self.unitary
    }

    /// Coordinates in the fSim(θ, φ) plane, when known.
    pub fn fsim_coords(&self) -> Option<FsimPoint> {
        self.fsim_coords
    }

    // ----- The named gate types of the paper (Tables I & II) -----

    /// `S1` = Google's Sycamore gate, `SYC = fSim(π/2, π/6)`.
    pub fn syc() -> Self {
        GateType::from_fsim("SYC", FRAC_PI_2, FRAC_PI_6)
    }

    /// `S2` = `√iSWAP = fSim(π/4, 0)`.
    pub fn sqrt_iswap() -> Self {
        GateType::from_fsim("sqrt_iSWAP", FRAC_PI_4, 0.0)
    }

    /// `S3` = `CZ = fSim(0, π)`.
    pub fn cz() -> Self {
        GateType::from_fsim("CZ", 0.0, PI)
    }

    /// `S4` = `iSWAP = fSim(π/2, 0)` (equivalently `XY(π)` up to 1Q rotations).
    pub fn iswap() -> Self {
        GateType::from_fsim("iSWAP", FRAC_PI_2, 0.0)
    }

    /// `S5` = `fSim(π/3, 0)`.
    pub fn s5() -> Self {
        GateType::from_fsim("fSim(pi/3,0)", FRAC_PI_3, 0.0)
    }

    /// `S6` = `fSim(3π/8, 0)`.
    pub fn s6() -> Self {
        GateType::from_fsim("fSim(3pi/8,0)", 3.0 * PI / 8.0, 0.0)
    }

    /// `S7` = `fSim(π/6, π)`.
    pub fn s7() -> Self {
        GateType::from_fsim("fSim(pi/6,pi)", FRAC_PI_6, PI)
    }

    /// Hardware SWAP gate. Up to single-qubit rotations `SWAP = fSim(π/2, π)`,
    /// and those are the coordinates recorded here; the unitary stored is the
    /// textbook SWAP matrix.
    pub fn swap() -> Self {
        GateType {
            name: "SWAP".to_string(),
            unitary: standard::swap(),
            fsim_coords: Some(FsimPoint::new(FRAC_PI_2, PI)),
        }
    }

    /// Rigetti's `XY(π)` gate type (equals iSWAP up to single-qubit rotations).
    pub fn xy_pi() -> Self {
        GateType {
            name: "XY(pi)".to_string(),
            unitary: crate::fsim::xy(PI),
            fsim_coords: Some(FsimPoint::new(FRAC_PI_2, 0.0)),
        }
    }

    /// CNOT gate type (not part of Table II, used by the KAK baseline tests).
    pub fn cnot() -> Self {
        GateType {
            name: "CNOT".to_string(),
            unitary: standard::cnot(),
            fsim_coords: None,
        }
    }

    /// The paper's baseline types `S1..S7` in order.
    pub fn paper_singles() -> Vec<GateType> {
        vec![
            GateType::syc(),
            GateType::sqrt_iswap(),
            GateType::cz(),
            GateType::iswap(),
            GateType::s5(),
            GateType::s6(),
            GateType::s7(),
        ]
    }

    /// The named single-type set `Sk` for `k` in `1..=7`.
    ///
    /// # Panics
    /// Panics for `k` outside `1..=7`.
    pub fn s(k: usize) -> GateType {
        match k {
            1 => GateType::syc(),
            2 => GateType::sqrt_iswap(),
            3 => GateType::cz(),
            4 => GateType::iswap(),
            5 => GateType::s5(),
            6 => GateType::s6(),
            7 => GateType::s7(),
            _ => panic!("S{k} is not defined; valid types are S1..S7"),
        }
    }
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::Complex;
    use qmath::SmallMat;

    #[test]
    fn all_paper_types_are_unitary() {
        for g in GateType::paper_singles() {
            assert!(g.unitary().is_unitary(1e-12), "{} not unitary", g.name());
            assert!(g.fsim_coords().is_some());
        }
        assert!(GateType::swap().unitary().is_unitary(1e-12));
        assert!(GateType::xy_pi().unitary().is_unitary(1e-12));
        assert!(GateType::cnot().unitary().is_unitary(1e-12));
    }

    #[test]
    fn s_indexing_matches_named_constructors() {
        assert_eq!(GateType::s(1), GateType::syc());
        assert_eq!(GateType::s(2), GateType::sqrt_iswap());
        assert_eq!(GateType::s(3), GateType::cz());
        assert_eq!(GateType::s(4), GateType::iswap());
        assert_eq!(GateType::s(7), GateType::s7());
    }

    #[test]
    #[should_panic(expected = "S8 is not defined")]
    fn s_indexing_out_of_range_panics() {
        let _ = GateType::s(8);
    }

    #[test]
    fn cz_matches_standard_cz() {
        assert!(GateType::cz().unitary().approx_eq(&standard::cz(), 1e-12));
    }

    #[test]
    fn syc_diagonal_phase() {
        let syc = GateType::syc();
        assert!((syc.unitary()[(3, 3)] - Complex::cis(-FRAC_PI_6)).norm() < 1e-12);
    }

    #[test]
    fn sqrt_iswap_squares_to_iswap_block() {
        // (fSim(pi/4,0))^2 = fSim(pi/2,0)
        let s = GateType::sqrt_iswap();
        let sq = s.unitary().pow(2);
        assert!(sq.approx_eq(GateType::iswap().unitary(), 1e-12));
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(format!("{}", GateType::syc()), "SYC");
    }

    #[test]
    fn gate_type_new_validates_unitarity() {
        let good = GateType::new("custom", standard::swap());
        assert_eq!(good.name(), "custom");
        assert!(good.fsim_coords().is_none());
    }

    #[test]
    #[should_panic(expected = "must be unitary")]
    fn gate_type_new_rejects_non_unitary() {
        let m = SmallMat::<4>::from_real(&[1.0; 16]);
        let _ = GateType::new("bad", m);
    }

    #[test]
    fn swap_coords_are_pi_over_2_pi() {
        let c = GateType::swap().fsim_coords().unwrap();
        assert!((c.theta - FRAC_PI_2).abs() < 1e-12);
        assert!((c.phi - PI).abs() < 1e-12);
    }

    #[test]
    fn paper_singles_are_distinct() {
        let singles = GateType::paper_singles();
        for i in 0..singles.len() {
            for j in (i + 1)..singles.len() {
                assert!(
                    !singles[i].unitary().approx_eq(singles[j].unitary(), 1e-9),
                    "{} and {} have the same unitary",
                    singles[i].name(),
                    singles[j].name()
                );
            }
        }
    }
}
