//! Numerical optimization for quantum gate decomposition.
//!
//! The paper's NuOp pass "uses BFGS, a well-known numerical optimization
//! method" (via SciPy) to tune the single-qubit rotation angles of a template
//! circuit. This crate provides that substrate:
//!
//! * [`bfgs`] — BFGS quasi-Newton minimization with a strong-Wolfe line search
//!   and central-difference gradients.
//! * [`nelder_mead`] — a derivative-free simplex fallback used to sanity-check
//!   BFGS results in tests and as a recovery path for pathological starts.
//! * [`multistart`] — restarts an optimizer from several random initial points
//!   and keeps the best result; gate-decomposition landscapes are non-convex,
//!   so restarts are what make the pass robust.
//!
//! # Example
//!
//! ```
//! use optim::{minimize_bfgs, BfgsOptions};
//!
//! // Rosenbrock function: minimum 0 at (1, 1).
//! let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
//! let result = minimize_bfgs(&rosen, &[-1.2, 1.0], &BfgsOptions::default());
//! assert!(result.value < 1e-8);
//! assert!((result.x[0] - 1.0).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

pub mod bfgs;
pub mod multistart;
pub mod nelder_mead;

pub use bfgs::{minimize_bfgs, minimize_bfgs_with_grad, BfgsOptions, OptimResult};
pub use multistart::{multistart_minimize, multistart_minimize_with_grad, MultistartOptions};
pub use nelder_mead::{minimize_nelder_mead, NelderMeadOptions};

/// Central-difference numerical gradient of `f` at `x` with step `h`.
///
/// Used by BFGS when no analytic gradient is supplied; `h = 1e-6` is a good
/// default for the smooth trigonometric objectives of gate decomposition.
pub fn numerical_gradient<F>(f: &F, x: &[f64], h: f64) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + ?Sized,
{
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        let orig = probe[i];
        probe[i] = orig + h;
        let fp = f(&probe);
        probe[i] = orig - h;
        let fm = f(&probe);
        probe[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Euclidean norm of a vector.
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerical_gradient_of_quadratic() {
        let f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1] * x[1];
        let g = numerical_gradient(&f, &[1.0, 2.0], 1e-6);
        assert!((g[0] - 2.0).abs() < 1e-5);
        assert!((g[1] - 12.0).abs() < 1e-5);
    }

    #[test]
    fn norm_and_dot() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
