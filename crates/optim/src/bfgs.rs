//! BFGS quasi-Newton minimization with a strong-Wolfe line search.
//!
//! This is the workhorse behind NuOp template optimization. The implementation
//! follows Nocedal & Wright, *Numerical Optimization*, Algorithms 6.1 (BFGS)
//! and 3.5/3.6 (line search satisfying the strong Wolfe conditions).

use serde::{Deserialize, Serialize};

use crate::{dot, norm, numerical_gradient};

/// Options controlling a BFGS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BfgsOptions {
    /// Maximum number of quasi-Newton iterations.
    pub max_iters: usize,
    /// Convergence threshold on the gradient infinity norm.
    pub grad_tol: f64,
    /// Convergence threshold on the decrease of the objective between iterations.
    pub f_tol: f64,
    /// Finite-difference step for the numerical gradient.
    pub fd_step: f64,
    /// Armijo (sufficient decrease) constant `c1` of the Wolfe conditions.
    pub c1: f64,
    /// Curvature constant `c2` of the Wolfe conditions.
    pub c2: f64,
    /// Maximum number of function evaluations inside one line search.
    pub max_line_search_steps: usize,
}

impl Default for BfgsOptions {
    fn default() -> Self {
        BfgsOptions {
            max_iters: 200,
            grad_tol: 1e-8,
            f_tol: 1e-12,
            fd_step: 1e-6,
            c1: 1e-4,
            c2: 0.9,
            max_line_search_steps: 30,
        }
    }
}

impl BfgsOptions {
    /// A cheaper option set used when the caller only needs a coarse optimum
    /// (e.g. NuOp's approximate decomposition mode).
    pub fn fast() -> Self {
        BfgsOptions {
            max_iters: 80,
            grad_tol: 1e-6,
            ..BfgsOptions::default()
        }
    }
}

/// The result of an optimization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimResult {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Number of objective evaluations (including gradient probes).
    pub evaluations: usize,
    /// Whether a convergence criterion (gradient or f-decrease) was met.
    pub converged: bool,
    /// Final gradient norm.
    pub gradient_norm: f64,
}

/// Minimizes `f` starting from `x0` using BFGS with numerical gradients.
///
/// The function must be smooth in the region explored; this holds for the
/// trigonometric fidelity objectives used in gate decomposition.
///
/// ```
/// use optim::{minimize_bfgs, BfgsOptions};
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let r = minimize_bfgs(&sphere, &[1.0, -2.0, 3.0], &BfgsOptions::default());
/// assert!(r.value < 1e-12);
/// assert!(r.converged);
/// ```
pub fn minimize_bfgs<F>(f: &F, x0: &[f64], opts: &BfgsOptions) -> OptimResult
where
    F: Fn(&[f64]) -> f64 + ?Sized,
{
    let n = x0.len();
    let fd_step = opts.fd_step;
    // Each central-difference gradient costs 2n objective probes.
    let grad = move |x: &[f64], evals: &mut usize| {
        *evals += 2 * n;
        numerical_gradient(f, x, fd_step)
    };
    minimize_with(f, &grad, x0, opts)
}

/// Minimizes `f` starting from `x0` using BFGS with the caller-supplied
/// analytic gradient `grad`.
///
/// The gradient must match `f` to finite-difference accuracy; each gradient
/// call is counted as a single evaluation in [`OptimResult::evaluations`].
/// The strong-Wolfe line search still probes the objective directly, so only
/// `f` is evaluated along the search direction.
///
/// ```
/// use optim::{minimize_bfgs_with_grad, BfgsOptions};
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let grad = |x: &[f64]| x.iter().map(|v| 2.0 * v).collect::<Vec<_>>();
/// let r = minimize_bfgs_with_grad(&sphere, &grad, &[1.0, -2.0, 3.0], &BfgsOptions::default());
/// assert!(r.value < 1e-12);
/// assert!(r.converged);
/// ```
pub fn minimize_bfgs_with_grad<F, G>(f: &F, grad: &G, x0: &[f64], opts: &BfgsOptions) -> OptimResult
where
    F: Fn(&[f64]) -> f64 + ?Sized,
    G: Fn(&[f64]) -> Vec<f64> + ?Sized,
{
    let g = move |x: &[f64], evals: &mut usize| {
        *evals += 1;
        grad(x)
    };
    minimize_with(f, &g, x0, opts)
}

/// Shared BFGS driver, parameterized over the gradient provider. The provider
/// receives the evaluation counter so the numerical path can bill its `2n`
/// probes while the analytic path bills a single call.
fn minimize_with<F, G>(f: &F, grad_fn: &G, x0: &[f64], opts: &BfgsOptions) -> OptimResult
where
    F: Fn(&[f64]) -> f64 + ?Sized,
    G: Fn(&[f64], &mut usize) -> Vec<f64> + ?Sized,
{
    let n = x0.len();
    assert!(n > 0, "cannot optimize a zero-dimensional problem");
    let mut evaluations = 0usize;
    let eval = |x: &[f64], evaluations: &mut usize| {
        *evaluations += 1;
        f(x)
    };

    let mut x = x0.to_vec();
    let mut fx = eval(&x, &mut evaluations);
    let mut grad = grad_fn(&x, &mut evaluations);

    // Inverse Hessian approximation, initialized to the identity.
    let mut h_inv = identity(n);

    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        let gnorm = norm(&grad);
        if gnorm < opts.grad_tol {
            converged = true;
            break;
        }

        // Search direction p = -H_inv * grad.
        let mut p = mat_vec(&h_inv, &grad);
        for v in &mut p {
            *v = -*v;
        }
        // Safeguard: if the direction is not a descent direction (numerical
        // breakdown), restart from steepest descent.
        if dot(&p, &grad) >= 0.0 {
            h_inv = identity(n);
            p = grad.iter().map(|g| -g).collect();
        }

        // Strong-Wolfe line search for step length alpha.
        let (alpha, f_new, ls_evals) = wolfe_line_search(f, &x, fx, &grad, &p, opts);
        evaluations += ls_evals;
        if alpha == 0.0 {
            // Line search failed to make progress; treat as converged to avoid
            // spinning.
            break;
        }

        let x_new: Vec<f64> = x
            .iter()
            .zip(p.iter())
            .map(|(xi, pi)| xi + alpha * pi)
            .collect();
        let grad_new = grad_fn(&x_new, &mut evaluations);

        // BFGS update of the inverse Hessian.
        let s: Vec<f64> = x_new.iter().zip(x.iter()).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = grad_new
            .iter()
            .zip(grad.iter())
            .map(|(a, b)| a - b)
            .collect();
        let sy = dot(&s, &y);
        if sy > 1e-12 {
            let rho = 1.0 / sy;
            h_inv = bfgs_update(&h_inv, &s, &y, rho);
        }

        let f_decrease = fx - f_new;
        x = x_new;
        fx = f_new;
        grad = grad_new;

        if f_decrease.abs() < opts.f_tol && f_decrease >= 0.0 {
            converged = true;
            break;
        }
    }

    OptimResult {
        gradient_norm: norm(&grad),
        x,
        value: fx,
        iterations,
        evaluations,
        converged,
    }
}

fn identity(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect()
}

fn mat_vec(m: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    m.iter().map(|row| dot(row, v)).collect()
}

/// BFGS inverse-Hessian update:
/// `H' = (I - rho s y^T) H (I - rho y s^T) + rho s s^T`.
fn bfgs_update(h: &[Vec<f64>], s: &[f64], y: &[f64], rho: f64) -> Vec<Vec<f64>> {
    let n = s.len();
    // A = I - rho * s y^T
    let mut a = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            a[i][j] = if i == j { 1.0 } else { 0.0 } - rho * s[i] * y[j];
        }
    }
    // H' = A H A^T + rho s s^T
    let mut ah = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i][k] * h[k][j];
            }
            ah[i][j] = acc;
        }
    }
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += ah[i][k] * a[j][k];
            }
            out[i][j] = acc + rho * s[i] * s[j];
        }
    }
    out
}

/// The one-dimensional restriction `phi(alpha) = f(x + alpha p)` with a single
/// reusable probe buffer: line-search evaluations write `x + alpha p` in place
/// instead of collecting a fresh `Vec` per objective call, so the search is
/// allocation-free after construction. Together with the stack-allocated
/// `SmallMat` objectives of gate decomposition, this keeps the whole BFGS
/// inner loop off the heap.
struct LineEval<'a, F: ?Sized> {
    f: &'a F,
    x: &'a [f64],
    p: &'a [f64],
    probe: Vec<f64>,
    fd_step: f64,
}

impl<F> LineEval<'_, F>
where
    F: Fn(&[f64]) -> f64 + ?Sized,
{
    fn probe_at(&mut self, alpha: f64) -> f64 {
        for ((slot, xi), pi) in self.probe.iter_mut().zip(self.x).zip(self.p) {
            *slot = xi + alpha * pi;
        }
        (self.f)(&self.probe)
    }

    fn phi(&mut self, alpha: f64, evals: &mut usize) -> f64 {
        *evals += 1;
        self.probe_at(alpha)
    }

    /// Directional derivative by central difference along `p`.
    fn dphi(&mut self, alpha: f64, evals: &mut usize) -> f64 {
        let h = self.fd_step;
        *evals += 2;
        (self.probe_at(alpha + h) - self.probe_at(alpha - h)) / (2.0 * h)
    }
}

/// A bracketing + zoom line search enforcing the strong Wolfe conditions.
/// Returns `(alpha, f(x + alpha p), evaluations)`; `alpha == 0` signals failure.
fn wolfe_line_search<F>(
    f: &F,
    x: &[f64],
    fx: f64,
    grad: &[f64],
    p: &[f64],
    opts: &BfgsOptions,
) -> (f64, f64, usize)
where
    F: Fn(&[f64]) -> f64 + ?Sized,
{
    let mut evals = 0usize;
    let phi0 = fx;
    let dphi0 = dot(grad, p);
    if dphi0 >= 0.0 {
        return (0.0, fx, evals);
    }
    let mut line = LineEval {
        f,
        x,
        p,
        probe: vec![0.0; x.len()],
        fd_step: opts.fd_step,
    };

    let mut alpha_prev = 0.0;
    let mut phi_prev = phi0;
    let mut alpha = 1.0;
    let alpha_max = 10.0;

    for i in 0..opts.max_line_search_steps {
        let phi_alpha = line.phi(alpha, &mut evals);
        if phi_alpha > phi0 + opts.c1 * alpha * dphi0 || (i > 0 && phi_alpha >= phi_prev) {
            let (a, fa) = zoom(
                &mut line, phi0, dphi0, alpha_prev, phi_prev, alpha, opts, &mut evals,
            );
            return (a, fa, evals);
        }
        let dphi_alpha = line.dphi(alpha, &mut evals);
        if dphi_alpha.abs() <= -opts.c2 * dphi0 {
            return (alpha, phi_alpha, evals);
        }
        if dphi_alpha >= 0.0 {
            let (a, fa) = zoom(
                &mut line, phi0, dphi0, alpha, phi_alpha, alpha_prev, opts, &mut evals,
            );
            return (a, fa, evals);
        }
        alpha_prev = alpha;
        phi_prev = phi_alpha;
        alpha = (alpha * 2.0).min(alpha_max);
    }
    // Fall back to a simple backtracking result.
    let phi_alpha = line.phi(alpha, &mut evals);
    if phi_alpha < phi0 {
        (alpha, phi_alpha, evals)
    } else {
        (0.0, phi0, evals)
    }
}

/// The `zoom` procedure of Nocedal & Wright Algorithm 3.6, expressed on the
/// one-dimensional restriction `phi(alpha) = f(x + alpha p)`.
#[allow(clippy::too_many_arguments)]
fn zoom<F>(
    line: &mut LineEval<'_, F>,
    phi0: f64,
    dphi0: f64,
    mut alpha_lo: f64,
    mut phi_lo: f64,
    mut alpha_hi: f64,
    opts: &BfgsOptions,
    evals: &mut usize,
) -> (f64, f64)
where
    F: Fn(&[f64]) -> f64 + ?Sized,
{
    let mut best = (alpha_lo, phi_lo);
    for _ in 0..opts.max_line_search_steps {
        // Bisection is robust for the smooth objectives we optimize.
        let alpha = 0.5 * (alpha_lo + alpha_hi);
        if (alpha_hi - alpha_lo).abs() < 1e-14 {
            break;
        }
        let phi_alpha = line.phi(alpha, evals);
        if phi_alpha > phi0 + opts.c1 * alpha * dphi0 || phi_alpha >= phi_lo {
            alpha_hi = alpha;
        } else {
            if phi_alpha < best.1 {
                best = (alpha, phi_alpha);
            }
            let dphi_alpha = line.dphi(alpha, evals);
            if dphi_alpha.abs() <= -opts.c2 * dphi0 {
                return (alpha, phi_alpha);
            }
            if dphi_alpha * (alpha_hi - alpha_lo) >= 0.0 {
                alpha_hi = alpha_lo;
            }
            alpha_lo = alpha;
            phi_lo = phi_alpha;
        }
    }
    if best.1 < phi0 {
        best
    } else {
        (0.0, phi0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = minimize_bfgs(&sphere, &[3.0, -4.0], &BfgsOptions::default());
        assert!(r.value < 1e-10, "value = {}", r.value);
        assert!(r.converged);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = minimize_bfgs(&rosen, &[-1.2, 1.0], &BfgsOptions::default());
        assert!(r.value < 1e-6, "value = {}", r.value);
        assert!((r.x[0] - 1.0).abs() < 1e-2);
        assert!((r.x[1] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn minimizes_trig_objective() {
        // Shaped like a decomposition-fidelity landscape.
        let f = |x: &[f64]| 1.0 - (x[0].cos() * x[1].sin()).powi(2);
        let r = minimize_bfgs(&f, &[0.3, 1.0], &BfgsOptions::default());
        assert!(r.value < 1e-8, "value = {}", r.value);
    }

    #[test]
    fn already_at_minimum_converges_immediately() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = minimize_bfgs(&sphere, &[0.0, 0.0, 0.0], &BfgsOptions::default());
        assert!(r.converged);
        assert!(r.iterations <= 2);
        assert!(r.value < 1e-15);
    }

    #[test]
    fn fast_options_still_work() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = minimize_bfgs(&sphere, &[1.0, 1.0], &BfgsOptions::fast());
        assert!(r.value < 1e-8);
    }

    #[test]
    fn high_dimensional_quadratic() {
        let f = |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, v)| (i as f64 + 1.0) * (v - 1.0) * (v - 1.0))
                .sum::<f64>()
        };
        let x0 = vec![0.0; 12];
        let r = minimize_bfgs(&f, &x0, &BfgsOptions::default());
        assert!(r.value < 1e-8, "value = {}", r.value);
        for v in &r.x {
            assert!((v - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn zero_dimensional_panics() {
        let f = |_: &[f64]| 0.0;
        let _ = minimize_bfgs(&f, &[], &BfgsOptions::default());
    }

    #[test]
    fn analytic_gradient_matches_numerical_path() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let rosen_grad = |x: &[f64]| {
            vec![
                -2.0 * (1.0 - x[0]) - 400.0 * x[0] * (x[1] - x[0] * x[0]),
                200.0 * (x[1] - x[0] * x[0]),
            ]
        };
        let numeric = minimize_bfgs(&rosen, &[-1.2, 1.0], &BfgsOptions::default());
        let analytic =
            minimize_bfgs_with_grad(&rosen, &rosen_grad, &[-1.2, 1.0], &BfgsOptions::default());
        assert!(analytic.value < 1e-6, "value = {}", analytic.value);
        assert!((analytic.x[0] - 1.0).abs() < 1e-2);
        assert!((analytic.x[1] - 1.0).abs() < 1e-2);
        // The analytic path reaches the same basin with strictly fewer
        // objective evaluations (1 per gradient instead of 2n probes).
        assert!(analytic.evaluations < numeric.evaluations);
    }

    #[test]
    fn analytic_gradient_evaluation_accounting() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let grad = |x: &[f64]| x.iter().map(|v| 2.0 * v).collect::<Vec<_>>();
        let r = minimize_bfgs_with_grad(&sphere, &grad, &[2.0, -1.0], &BfgsOptions::default());
        assert!(r.converged);
        assert!(r.value < 1e-12);
    }
}
