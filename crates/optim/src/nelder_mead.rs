//! Derivative-free Nelder–Mead simplex minimization.
//!
//! Used as a fallback/sanity-check for the BFGS path: the gate-decomposition
//! objective is smooth, so BFGS should always win, but a derivative-free method
//! is valuable when verifying that BFGS did not get stuck due to a line-search
//! failure.

use serde::{Deserialize, Serialize};

use crate::bfgs::OptimResult;
use crate::norm;

/// Options controlling a Nelder–Mead run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NelderMeadOptions {
    /// Maximum number of iterations (simplex updates).
    pub max_iters: usize,
    /// Convergence threshold on the simplex function-value spread.
    pub f_tol: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_iters: 2000,
            f_tol: 1e-12,
            initial_step: 0.5,
        }
    }
}

/// Minimizes `f` from `x0` with the Nelder–Mead simplex algorithm.
///
/// ```
/// use optim::{minimize_nelder_mead, NelderMeadOptions};
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let r = minimize_nelder_mead(&sphere, &[1.0, 2.0], &NelderMeadOptions::default());
/// assert!(r.value < 1e-8);
/// ```
pub fn minimize_nelder_mead<F>(f: &F, x0: &[f64], opts: &NelderMeadOptions) -> OptimResult
where
    F: Fn(&[f64]) -> f64 + ?Sized,
{
    let n = x0.len();
    assert!(n > 0, "cannot optimize a zero-dimensional problem");
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut evaluations = 0usize;
    let eval = |x: &[f64], e: &mut usize| {
        *e += 1;
        f(x)
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evaluations);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut p = x0.to_vec();
        p[i] += opts.initial_step;
        let fp = eval(&p, &mut evaluations);
        simplex.push((p, fp));
    }

    let mut iterations = 0;
    let mut converged = false;
    for iter in 0..opts.max_iters {
        iterations = iter + 1;
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("non-NaN objective"));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < opts.f_tol {
            converged = true;
            break;
        }
        // Centroid of all but worst.
        let mut centroid = vec![0.0; n];
        for (p, _) in simplex.iter().take(n) {
            for i in 0..n {
                centroid[i] += p[i] / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = (0..n)
            .map(|i| centroid[i] + alpha * (centroid[i] - worst.0[i]))
            .collect();
        let f_reflect = eval(&reflect, &mut evaluations);

        if f_reflect < simplex[0].1 {
            // Expansion.
            let expand: Vec<f64> = (0..n)
                .map(|i| centroid[i] + gamma * (reflect[i] - centroid[i]))
                .collect();
            let f_expand = eval(&expand, &mut evaluations);
            simplex[n] = if f_expand < f_reflect {
                (expand, f_expand)
            } else {
                (reflect, f_reflect)
            };
        } else if f_reflect < simplex[n - 1].1 {
            simplex[n] = (reflect, f_reflect);
        } else {
            // Contraction.
            let contract: Vec<f64> = (0..n)
                .map(|i| centroid[i] + rho * (worst.0[i] - centroid[i]))
                .collect();
            let f_contract = eval(&contract, &mut evaluations);
            if f_contract < worst.1 {
                simplex[n] = (contract, f_contract);
            } else {
                // Shrink towards best.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = (0..n)
                        .map(|i| best[i] + sigma * (entry.0[i] - best[i]))
                        .collect();
                    let fs = eval(&shrunk, &mut evaluations);
                    *entry = (shrunk, fs);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("non-NaN objective"));
    let best = simplex.swap_remove(0);
    OptimResult {
        gradient_norm: norm(&crate::numerical_gradient(f, &best.0, 1e-6)),
        x: best.0,
        value: best.1,
        iterations,
        evaluations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_sphere() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = minimize_nelder_mead(&sphere, &[2.0, -1.0, 0.5], &NelderMeadOptions::default());
        assert!(r.value < 1e-8, "value = {}", r.value);
        assert!(r.converged);
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let rosen = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let r = minimize_nelder_mead(&rosen, &[-1.2, 1.0], &NelderMeadOptions::default());
        assert!(r.value < 1e-6, "value = {}", r.value);
    }

    #[test]
    fn agrees_with_bfgs_on_smooth_problem() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] + 0.7).powi(2) + 1.5;
        let nm = minimize_nelder_mead(&f, &[0.0, 0.0], &NelderMeadOptions::default());
        let bf = crate::minimize_bfgs(&f, &[0.0, 0.0], &crate::BfgsOptions::default());
        assert!((nm.value - bf.value).abs() < 1e-6);
        assert!((nm.value - 1.5).abs() < 1e-6);
    }

    #[test]
    fn one_dimensional_problem() {
        let f = |x: &[f64]| (x[0] - 2.0).powi(4);
        let r = minimize_nelder_mead(&f, &[10.0], &NelderMeadOptions::default());
        assert!((r.x[0] - 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn zero_dimensional_panics() {
        let f = |_: &[f64]| 0.0;
        let _ = minimize_nelder_mead(&f, &[], &NelderMeadOptions::default());
    }
}
