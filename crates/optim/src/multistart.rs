//! Multistart driver.
//!
//! Gate-decomposition objectives are non-convex: the BFGS landscape has local
//! minima whose quality depends on the random initialization of the template's
//! single-qubit angles. NuOp therefore restarts the optimizer from several
//! random points and keeps the best outcome — exactly what this module
//! provides.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bfgs::{minimize_bfgs, minimize_bfgs_with_grad, BfgsOptions, OptimResult};

/// Options controlling the multistart driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultistartOptions {
    /// Number of random restarts (the first start always uses the caller's `x0`).
    pub restarts: usize,
    /// Half-width of the uniform window around `x0` from which restart points
    /// are drawn.
    pub spread: f64,
    /// Stop early as soon as a restart reaches a value below this threshold.
    pub target_value: Option<f64>,
    /// BFGS options used for every restart.
    pub bfgs: BfgsOptions,
}

impl Default for MultistartOptions {
    fn default() -> Self {
        MultistartOptions {
            restarts: 4,
            spread: std::f64::consts::PI,
            target_value: None,
            bfgs: BfgsOptions::default(),
        }
    }
}

/// Runs BFGS from `x0` and from `restarts - 1` random perturbations of it,
/// returning the best result found.
///
/// ```
/// use optim::{multistart_minimize, MultistartOptions};
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// // A multi-modal objective where the global minimum is at x = 0.
/// let f = |x: &[f64]| 1.0 - (x[0].cos()).powi(2) + 0.05 * x[0].abs();
/// let r = multistart_minimize(&f, &[2.0], &MultistartOptions::default(), &mut rng);
/// assert!(r.value < 0.2);
/// ```
pub fn multistart_minimize<F, R>(
    f: &F,
    x0: &[f64],
    opts: &MultistartOptions,
    rng: &mut R,
) -> OptimResult
where
    F: Fn(&[f64]) -> f64 + ?Sized,
    R: Rng + ?Sized,
{
    multistart_with(&|start| minimize_bfgs(f, start, &opts.bfgs), x0, opts, rng)
}

/// Like [`multistart_minimize`], but every restart runs BFGS with the
/// caller-supplied analytic gradient instead of central differences.
///
/// The restart points drawn from `rng` are identical to the numerical-gradient
/// driver for the same seed, so the two variants explore the same basins and
/// differ only in how each descent is steered.
pub fn multistart_minimize_with_grad<F, G, R>(
    f: &F,
    grad: &G,
    x0: &[f64],
    opts: &MultistartOptions,
    rng: &mut R,
) -> OptimResult
where
    F: Fn(&[f64]) -> f64 + ?Sized,
    G: Fn(&[f64]) -> Vec<f64> + ?Sized,
    R: Rng + ?Sized,
{
    multistart_with(
        &|start| minimize_bfgs_with_grad(f, grad, start, &opts.bfgs),
        x0,
        opts,
        rng,
    )
}

/// Shared restart loop: draws perturbed starts, runs `solve` on each, and
/// keeps the best result with cumulative evaluation accounting.
fn multistart_with<S, R>(
    solve: &S,
    x0: &[f64],
    opts: &MultistartOptions,
    rng: &mut R,
) -> OptimResult
where
    S: Fn(&[f64]) -> OptimResult + ?Sized,
    R: Rng + ?Sized,
{
    assert!(opts.restarts >= 1, "multistart needs at least one start");
    let mut best: Option<OptimResult> = None;
    let mut total_evals = 0usize;
    for attempt in 0..opts.restarts {
        let start: Vec<f64> = if attempt == 0 {
            x0.to_vec()
        } else {
            x0.iter()
                .map(|&v| v + rng.gen_range(-opts.spread..opts.spread))
                .collect()
        };
        let mut result = solve(&start);
        total_evals += result.evaluations;
        result.evaluations = total_evals;
        let better = best.as_ref().is_none_or(|b| result.value < b.value);
        if better {
            best = Some(result);
        }
        if let (Some(target), Some(b)) = (opts.target_value, best.as_ref()) {
            if b.value <= target {
                break;
            }
        }
    }
    best.expect("at least one restart ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn finds_global_minimum_of_multimodal_function() {
        // f has local minima at multiples of pi, global at x=0 due to the |x| term.
        let f = |x: &[f64]| (1.0 - x[0].cos()) + 0.3 * x[0].abs() + x[1] * x[1];
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let opts = MultistartOptions {
            restarts: 8,
            spread: 6.0,
            ..MultistartOptions::default()
        };
        let r = multistart_minimize(&f, &[5.0, 1.0], &opts, &mut rng);
        assert!(r.value < 1e-4, "value = {}", r.value);
        assert!(r.x[0].abs() < 1e-2);
    }

    #[test]
    fn gradient_variant_matches_numerical_multistart() {
        let f = |x: &[f64]| (1.0 - x[0].cos()) + 0.3 * x[0].abs() + x[1] * x[1];
        let g = |x: &[f64]| vec![x[0].sin() + 0.3 * x[0].signum(), 2.0 * x[1]];
        let opts = MultistartOptions {
            restarts: 8,
            spread: 6.0,
            ..MultistartOptions::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r = multistart_minimize_with_grad(&f, &g, &[5.0, 1.0], &opts, &mut rng);
        assert!(r.value < 1e-4, "value = {}", r.value);
        assert!(r.x[0].abs() < 1e-2);
    }

    #[test]
    fn early_stop_on_target() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let opts = MultistartOptions {
            restarts: 50,
            target_value: Some(1e-6),
            ..MultistartOptions::default()
        };
        let r = multistart_minimize(&sphere, &[1.0, 1.0], &opts, &mut rng);
        assert!(r.value <= 1e-6);
    }

    #[test]
    fn single_restart_equals_plain_bfgs() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let opts = MultistartOptions {
            restarts: 1,
            ..MultistartOptions::default()
        };
        let multi = multistart_minimize(&sphere, &[2.0, -3.0], &opts, &mut rng);
        let plain = minimize_bfgs(&sphere, &[2.0, -3.0], &opts.bfgs);
        assert!((multi.value - plain.value).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn zero_restarts_panics() {
        let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let opts = MultistartOptions {
            restarts: 0,
            ..MultistartOptions::default()
        };
        let _ = multistart_minimize(&sphere, &[1.0], &opts, &mut rng);
    }
}
