//! The reusable compilation service.
//!
//! A [`Compiler`] owns a device model, an instruction set, options, a pass
//! pipeline and — crucially for instruction-set sweeps — a **shared, sharded
//! decomposition cache** that persists across [`Compiler::compile`] calls.
//! The paper's headline experiments compile the same workloads against 21
//! instruction sets; with a long-lived `Compiler` per set, every repeated
//! SU(4), ZZ or SWAP decomposition after the first is a cache hit.

use std::sync::Arc;

use circuit::Circuit;
use device::DeviceModel;
use gates::{InstructionSet, InvalidInstructionSet};
use nuop_core::DecompositionCache;
use parking_lot::Mutex;
use telemetry::{Collector, SpanId};

use verify::{Artifact, Stage, StageSnapshot, Verifier, VerifyLevel};

use crate::error::CompileError;
use crate::pass::{default_passes, CompileIr, CompileReport, Pass, PassContext, StageTiming};
use crate::pipeline::{CompiledCircuit, CompilerOptions};

/// A reusable, fallible compilation service.
///
/// Build one with [`Compiler::for_device`] and reuse it for every circuit
/// targeting that device + instruction set: the decomposition cache is shared
/// across calls (and across [`Compiler::compile_batch`] worker threads).
///
/// ```
/// use apps::workloads::qv_circuit;
/// use compiler::{Compiler, CompilerOptions};
/// use device::DeviceModel;
/// use gates::InstructionSet;
/// use qmath::RngSeed;
///
/// let compiler = Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
///     .instruction_set(InstructionSet::r(2))
///     .options(CompilerOptions::sweep())
///     .build()
///     .unwrap();
///
/// let circuit = qv_circuit(3, RngSeed(2));
/// let compiled = compiler.compile(&circuit).unwrap();
/// assert_eq!(compiled.region.len(), 3);
///
/// // The second compile of the same circuit is served from the cache.
/// let (again, report) = compiler.compile_with_report(&circuit).unwrap();
/// assert_eq!(again.circuit, compiled.circuit);
/// assert_eq!(report.cache_misses, 0);
/// assert!(report.cache_hits > 0);
/// ```
pub struct Compiler {
    device: DeviceModel,
    instruction_set: InstructionSet,
    options: CompilerOptions,
    passes: Vec<Box<dyn Pass>>,
    cache: Arc<DecompositionCache>,
    verify_level: VerifyLevel,
    telemetry: Option<Arc<Collector>>,
}

impl Compiler {
    /// Starts building a compiler for `device`.
    pub fn for_device(device: DeviceModel) -> CompilerBuilder {
        CompilerBuilder {
            device,
            instruction_set: None,
            instruction_set_name: None,
            options: CompilerOptions::default(),
            cache: None,
            cache_capacity: None,
            passes: None,
            verify_level: VerifyLevel::Off,
            telemetry: None,
        }
    }

    /// The device this compiler targets.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The instruction set this compiler targets.
    pub fn instruction_set(&self) -> &InstructionSet {
        &self.instruction_set
    }

    /// The compilation options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// The shared decomposition cache (inspect hit/miss counters, share it
    /// with another compiler via [`CompilerBuilder::shared_cache`]).
    pub fn cache(&self) -> &Arc<DecompositionCache> {
        &self.cache
    }

    /// The static-verification level this compiler runs at.
    pub fn verify_level(&self) -> VerifyLevel {
        self.verify_level
    }

    /// Compiles one circuit.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit, CompileError> {
        self.compile_inner(circuit, self.options.threads.max(1), SpanId::NONE)
            .map(|(compiled, _)| compiled)
    }

    /// Compiles one circuit and reports per-stage timings plus cache traffic.
    pub fn compile_with_report(
        &self,
        circuit: &Circuit,
    ) -> Result<(CompiledCircuit, CompileReport), CompileError> {
        self.compile_inner(circuit, self.options.threads.max(1), SpanId::NONE)
    }

    /// Like [`Compiler::compile_with_report`], but records each pass as a
    /// telemetry span parented under `parent` (the caller's job or compile
    /// span). With no collector configured — or a disabled one — this is
    /// exactly `compile_with_report`.
    pub fn compile_with_report_in_span(
        &self,
        circuit: &Circuit,
        parent: SpanId,
    ) -> Result<(CompiledCircuit, CompileReport), CompileError> {
        self.compile_inner(circuit, self.options.threads.max(1), parent)
    }

    /// Compiles many circuits, fanning out across the configured worker
    /// threads. All workers share the decomposition cache, so sweeps over
    /// suites with repeated unitaries (identical SU(4)s, ZZ terms, routing
    /// SWAPs) only optimize each distinct decomposition once.
    ///
    /// Failures are per-circuit: one unhostable circuit yields its `Err`
    /// without poisoning the rest of the batch.
    pub fn compile_batch(
        &self,
        circuits: &[Circuit],
    ) -> Vec<Result<CompiledCircuit, CompileError>> {
        let workers = self.options.threads.max(1).min(circuits.len().max(1));
        if workers <= 1 || circuits.len() <= 1 {
            return circuits.iter().map(|c| self.compile(c)).collect();
        }
        // Parallelism moves to the batch level: each worker compiles whole
        // circuits serially (threads = 1) to avoid oversubscription.
        let chunk = circuits.len().div_ceil(workers);
        let results = Mutex::new(Vec::with_capacity(circuits.len()));
        let results_ref = &results;
        std::thread::scope(|scope| {
            for (w, piece) in circuits.chunks(chunk.max(1)).enumerate() {
                scope.spawn(move || {
                    let base = w * chunk.max(1);
                    let mut local = Vec::with_capacity(piece.len());
                    for (offset, circuit) in piece.iter().enumerate() {
                        local.push((base + offset, self.compile_inner(circuit, 1, SpanId::NONE)));
                    }
                    results_ref.lock().extend(local);
                });
            }
        });
        let mut indexed = results.into_inner();
        indexed.sort_by_key(|(idx, _)| *idx);
        indexed
            .into_iter()
            .map(|(_, r)| r.map(|(compiled, _)| compiled))
            .collect()
    }

    fn compile_inner(
        &self,
        circuit: &Circuit,
        threads: usize,
        parent: SpanId,
    ) -> Result<(CompiledCircuit, CompileReport), CompileError> {
        if circuit.num_qubits() == 0 {
            return Err(CompileError::EmptyCircuit);
        }
        let ctx = PassContext {
            device: &self.device,
            instruction_set: &self.instruction_set,
            options: &self.options,
            cache: &self.cache,
            threads,
        };
        let mut ir = CompileIr::new(circuit);
        let mut report = CompileReport::default();
        let verifier = self.verify_level.is_enabled().then(Verifier::structural);
        for (index, pass) in self.passes.iter().enumerate() {
            // The span guard is the single timing source: it measures with a
            // plain `Instant` even when no collector records it, so
            // `CompileReport` stays accurate with telemetry off.
            let span = telemetry::Span::enter_child(self.telemetry.as_ref(), pass.name(), parent);
            pass.run(&mut ir, &ctx)?;
            report.stages.push(StageTiming {
                pass: pass.name().to_string(),
                duration: span.finish(),
            });
            // Between-pass verification: check the IR after this stage when
            // the level asks for it (PerStage: always; Final: last pass only).
            let check_now = match self.verify_level {
                VerifyLevel::Off => false,
                VerifyLevel::Final => index + 1 == self.passes.len(),
                VerifyLevel::PerStage => true,
            };
            if check_now {
                if let (Some(verifier), Some(stage)) =
                    (verifier.as_ref(), Stage::from_pass_name(pass.name()))
                {
                    let snapshot = StageSnapshot {
                        stage,
                        circuit: &ir.circuit,
                        region: &ir.region,
                        subdevice: ir.subdevice.as_ref(),
                        initial_layout: &ir.initial_layout,
                        final_layout: &ir.final_layout,
                        swap_count: ir.swap_count,
                        program_swap_count: ir.program_swap_count,
                        instruction_set: Some(&self.instruction_set),
                    };
                    report
                        .diagnostics
                        .extend(verifier.run(&Artifact::Stage(&snapshot)).into_diagnostics());
                }
            }
        }
        report.cache_hits = ir.pass_stats.cache_hits;
        report.cache_misses = ir.pass_stats.cache_misses;
        if let Some(collector) = self.telemetry.as_ref().filter(|c| c.enabled()) {
            // Per-compile deltas as counters; cache-lifetime totals (shared
            // across compilers) as gauges.
            collector
                .counter("compiler.cache_hits")
                .add(report.cache_hits as u64);
            collector
                .counter("compiler.cache_misses")
                .add(report.cache_misses as u64);
            collector
                .gauge("compiler.cache_evictions")
                .set(self.cache.evictions() as i64);
            collector
                .gauge("compiler.cache_contended_locks")
                .set(self.cache.contended_locks() as i64);
            collector
                .gauge("compiler.cache_inflight_waits")
                .set(self.cache.inflight_waits() as i64);
        }
        let subdevice = ir.require_subdevice("finalize")?.clone();
        Ok((
            CompiledCircuit {
                circuit: ir.circuit,
                region: ir.region,
                subdevice,
                initial_layout: ir.initial_layout,
                final_layout: ir.final_layout,
                swap_count: ir.swap_count,
                pass_stats: ir.pass_stats,
            },
            report,
        ))
    }
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("device", &self.device.name())
            .field("instruction_set", &self.instruction_set.name())
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("cache", &self.cache)
            .finish()
    }
}

/// Builder returned by [`Compiler::for_device`].
///
/// The instruction set is mandatory; everything else has defaults
/// (default options, the four-stage pipeline, a fresh cache).
pub struct CompilerBuilder {
    device: DeviceModel,
    instruction_set: Option<InstructionSet>,
    instruction_set_name: Option<String>,
    options: CompilerOptions,
    cache: Option<Arc<DecompositionCache>>,
    cache_capacity: Option<usize>,
    passes: Option<Vec<Box<dyn Pass>>>,
    verify_level: VerifyLevel,
    telemetry: Option<Arc<Collector>>,
}

impl CompilerBuilder {
    /// Targets `set`.
    pub fn instruction_set(mut self, set: InstructionSet) -> Self {
        self.instruction_set = Some(set);
        self
    }

    /// Targets the Table II set called `name` (e.g. `"G3"`, `"FullfSim"`;
    /// case-insensitive). Unknown names surface as
    /// [`CompileError::InvalidInstructionSet`] at [`CompilerBuilder::build`].
    pub fn instruction_set_named(mut self, name: impl Into<String>) -> Self {
        self.instruction_set_name = Some(name.into());
        self
    }

    /// Sets the compilation options.
    pub fn options(mut self, options: CompilerOptions) -> Self {
        self.options = options;
        self
    }

    /// Shares an existing decomposition cache (e.g. across compilers for the
    /// same instruction set on error-scaled device variants). Keys include
    /// the instruction set (name and member types), pair fidelities and a
    /// fingerprint of the decomposition config, so unrelated compilers can
    /// safely share one cache.
    pub fn shared_cache(mut self, cache: Arc<DecompositionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Bounds the compiler's private decomposition cache to roughly
    /// `capacity` entries with FIFO per-shard eviction — the right setting
    /// for long-running compile services, where the default unbounded cache
    /// would grow with every distinct unitary ever compiled.
    ///
    /// Ignored when [`CompilerBuilder::shared_cache`] supplies an external
    /// cache: the owner of a shared cache decides its bound.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Replaces the default four-stage pipeline with a custom one.
    pub fn passes(mut self, passes: Vec<Box<dyn Pass>>) -> Self {
        self.passes = Some(passes);
        self
    }

    /// Runs the static verifier during compilation: structural legality rules
    /// (qubit bounds, post-routing coupling, instruction-set conformance,
    /// layout bijections, swap consistency) check the intermediate state and
    /// attach their findings to [`CompileReport::diagnostics`].
    /// [`VerifyLevel::PerStage`] checks after every pass,
    /// [`VerifyLevel::Final`] only after the last; the default is
    /// [`VerifyLevel::Off`]. Findings never abort compilation — callers gate
    /// on [`CompileReport::has_verify_errors`].
    pub fn verify(mut self, level: VerifyLevel) -> Self {
        self.verify_level = level;
        self
    }

    /// Attaches a telemetry collector: every compile records one span per
    /// pass (use [`Compiler::compile_with_report_in_span`] to parent them
    /// under a job span) and folds decomposition-cache traffic into the
    /// collector's registry. The default is no collector, which keeps the
    /// pipeline allocation-free on the telemetry side.
    pub fn telemetry(mut self, collector: Arc<Collector>) -> Self {
        self.telemetry = Some(collector);
        self
    }

    /// Builds the compiler, validating the configuration.
    pub fn build(self) -> Result<Compiler, CompileError> {
        let instruction_set = match (self.instruction_set, self.instruction_set_name) {
            (Some(set), _) => set,
            (None, Some(name)) => InstructionSet::by_name(&name).ok_or_else(|| {
                InvalidInstructionSet::new(
                    name.clone(),
                    format!("{name} is not a Table II instruction set"),
                )
            })?,
            (None, None) => {
                return Err(InvalidInstructionSet::new(
                    "<unset>",
                    "no instruction set supplied to Compiler builder",
                )
                .into())
            }
        };
        let cache = match (self.cache, self.cache_capacity) {
            (Some(shared), _) => shared,
            (None, Some(capacity)) => Arc::new(DecompositionCache::with_capacity(capacity)),
            (None, None) => Arc::default(),
        };
        Ok(Compiler {
            device: self.device,
            instruction_set,
            options: self.options,
            passes: self.passes.unwrap_or_else(default_passes),
            cache,
            verify_level: self.verify_level,
            telemetry: self.telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps::workloads::{qaoa_circuit, qv_circuit};
    use nuop_core::DecomposeConfig;
    use qmath::RngSeed;

    fn quick_options() -> CompilerOptions {
        CompilerOptions {
            decompose: DecomposeConfig {
                restarts: 2,
                max_layers: 4,
                ..DecomposeConfig::default()
            },
            threads: 2,
        }
    }

    fn aspen_compiler(set: InstructionSet) -> Compiler {
        Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
            .instruction_set(set)
            .options(quick_options())
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_an_instruction_set() {
        let err = Compiler::for_device(DeviceModel::ideal(3, 0.99))
            .build()
            .unwrap_err();
        assert!(matches!(err, CompileError::InvalidInstructionSet(_)));
    }

    #[test]
    fn builder_resolves_sets_by_name() {
        let compiler = Compiler::for_device(DeviceModel::ideal(3, 0.99))
            .instruction_set_named("g3")
            .build()
            .unwrap();
        assert_eq!(compiler.instruction_set().name(), "G3");

        let err = Compiler::for_device(DeviceModel::ideal(3, 0.99))
            .instruction_set_named("G99")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("G99"));
    }

    #[test]
    fn oversized_circuit_is_an_error_not_a_panic() {
        let compiler = Compiler::for_device(DeviceModel::ideal(3, 0.99))
            .instruction_set(InstructionSet::s(3))
            .options(quick_options())
            .build()
            .unwrap();
        let circuit = qv_circuit(5, RngSeed(1));
        assert_eq!(
            compiler.compile(&circuit).unwrap_err(),
            CompileError::RegionUnavailable {
                requested: 5,
                available: 3,
            }
        );
    }

    #[test]
    fn fragmented_device_is_an_error_not_a_panic() {
        // Three pairwise non-adjacent Sycamore sites: enough qubits, but no
        // connected 2-qubit region exists.
        let device = DeviceModel::sycamore(RngSeed(1)).subdevice(&[0, 2, 4]);
        let compiler = Compiler::for_device(device)
            .instruction_set(InstructionSet::s(3))
            .options(quick_options())
            .build()
            .unwrap();
        let circuit = qv_circuit(2, RngSeed(1));
        assert_eq!(
            compiler.compile(&circuit).unwrap_err(),
            CompileError::RegionDisconnected { requested: 2 }
        );
    }

    #[test]
    fn second_compile_is_served_from_the_shared_cache() {
        let compiler = aspen_compiler(InstructionSet::r(2));
        let circuit = qaoa_circuit(3, RngSeed(3));
        let (first, first_report) = compiler.compile_with_report(&circuit).unwrap();
        assert_eq!(
            first_report.cache_hits + first_report.cache_misses,
            first.pass_stats.input_two_qubit_gates
        );
        assert!(first_report.cache_misses > 0);

        let (second, second_report) = compiler.compile_with_report(&circuit).unwrap();
        assert_eq!(second_report.cache_misses, 0);
        assert_eq!(
            second_report.cache_hits,
            second.pass_stats.input_two_qubit_gates
        );
        assert_eq!(first.circuit, second.circuit);
    }

    #[test]
    fn report_times_every_stage() {
        let compiler = aspen_compiler(InstructionSet::s(3));
        let circuit = qv_circuit(3, RngSeed(5));
        let (_, report) = compiler.compile_with_report(&circuit).unwrap();
        let stages: Vec<&str> = report.stages.iter().map(|s| s.pass.as_str()).collect();
        assert_eq!(
            stages,
            vec![
                "region-select",
                "initial-map",
                "swap-route",
                "nuop-decompose"
            ]
        );
        assert!(report.total_duration() >= report.stage_duration("nuop-decompose").unwrap());
    }

    #[test]
    fn batch_matches_serial_compiles_and_shares_the_cache() {
        let serial = aspen_compiler(InstructionSet::r(2));
        let batched = aspen_compiler(InstructionSet::r(2));
        let circuits: Vec<Circuit> = (0..4).map(|i| qaoa_circuit(3, RngSeed(i))).collect();

        let serial_results: Vec<CompiledCircuit> = circuits
            .iter()
            .map(|c| serial.compile(c).unwrap())
            .collect();
        let batch_results = batched.compile_batch(&circuits);
        assert_eq!(batch_results.len(), circuits.len());
        for (s, b) in serial_results.iter().zip(batch_results.iter()) {
            let b = b.as_ref().unwrap();
            assert_eq!(s.circuit, b.circuit);
            assert_eq!(s.swap_count, b.swap_count);
        }

        // A follow-up compile of any batch member hits the shared cache.
        let (_, report) = batched.compile_with_report(&circuits[0]).unwrap();
        assert_eq!(report.cache_misses, 0);
    }

    #[test]
    fn batch_reports_per_circuit_errors_without_poisoning_the_rest() {
        let compiler = aspen_compiler(InstructionSet::s(3));
        let circuits = vec![
            qv_circuit(3, RngSeed(1)),
            qv_circuit(40, RngSeed(2)), // larger than Aspen-8
            qv_circuit(3, RngSeed(3)),
        ];
        let results = compiler.compile_batch(&circuits);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(CompileError::RegionUnavailable { .. })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn cache_capacity_bounds_the_private_cache() {
        let compiler = Compiler::for_device(DeviceModel::ideal(3, 0.99))
            .instruction_set(InstructionSet::s(3))
            .options(quick_options())
            .cache_capacity(32)
            .build()
            .unwrap();
        assert_eq!(compiler.cache().capacity(), Some(32));

        // A shared cache wins over a capacity request: its owner set the bound.
        let shared = Arc::new(DecompositionCache::new());
        let compiler = Compiler::for_device(DeviceModel::ideal(3, 0.99))
            .instruction_set(InstructionSet::s(3))
            .shared_cache(Arc::clone(&shared))
            .cache_capacity(32)
            .build()
            .unwrap();
        assert_eq!(compiler.cache().capacity(), None);
    }

    #[test]
    fn bounded_compiler_still_compiles_and_reuses_its_cache() {
        let compiler = Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
            .instruction_set(InstructionSet::r(2))
            .options(quick_options())
            .cache_capacity(256)
            .build()
            .unwrap();
        let circuit = qaoa_circuit(3, RngSeed(3));
        let (_, first) = compiler.compile_with_report(&circuit).unwrap();
        assert!(first.cache_misses > 0);
        let (_, second) = compiler.compile_with_report(&circuit).unwrap();
        assert_eq!(second.cache_misses, 0);
    }

    #[test]
    fn per_stage_verification_of_real_workloads_is_clean() {
        for set in [
            InstructionSet::s(1),
            InstructionSet::r(2),
            InstructionSet::full_xy(),
        ] {
            let compiler = Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
                .instruction_set(set.clone())
                .options(quick_options())
                .verify(VerifyLevel::PerStage)
                .build()
                .unwrap();
            let circuit = qv_circuit(3, RngSeed(2));
            let (compiled, report) = compiler.compile_with_report(&circuit).unwrap();
            assert!(
                !report.has_verify_errors(),
                "set {}: {:?}",
                set.name(),
                report.diagnostics
            );
            // The standalone artifact check agrees.
            let standalone = compiled.verify(&set);
            assert!(!standalone.has_errors(), "set {}: {standalone}", set.name());
        }
    }

    #[test]
    fn telemetry_records_one_span_per_pass_under_the_parent() {
        let collector = Arc::new(telemetry::Collector::new());
        let compiler = Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
            .instruction_set(InstructionSet::s(3))
            .options(quick_options())
            .telemetry(Arc::clone(&collector))
            .build()
            .unwrap();
        let job = telemetry::Span::enter(Some(&collector), "job");
        let (_, report) = compiler
            .compile_with_report_in_span(&qv_circuit(3, RngSeed(5)), job.id())
            .unwrap();
        let job_id = job.id();
        job.finish();

        let spans = collector.completed_spans();
        let pass_spans: Vec<&str> = spans
            .iter()
            .filter(|s| s.parent == job_id)
            .map(|s| s.name)
            .collect();
        assert_eq!(
            pass_spans,
            vec![
                "region-select",
                "initial-map",
                "swap-route",
                "nuop-decompose"
            ]
        );
        // The report is a thin view over the same measurements.
        for span in spans.iter().filter(|s| s.parent == job_id) {
            let reported = report.stage_duration(span.name).unwrap();
            assert_eq!(reported.as_micros() as u64, span.duration_micros);
        }
        // Cache traffic landed in the registry.
        assert_eq!(
            collector.counter("compiler.cache_misses").get(),
            report.cache_misses as u64
        );
        assert_eq!(
            collector.counter("compiler.cache_hits").get(),
            report.cache_hits as u64
        );
    }

    #[test]
    fn disabled_telemetry_still_times_stages() {
        let collector = Arc::new(telemetry::Collector::disabled());
        let compiler = Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
            .instruction_set(InstructionSet::s(3))
            .options(quick_options())
            .telemetry(Arc::clone(&collector))
            .build()
            .unwrap();
        let (_, report) = compiler
            .compile_with_report(&qv_circuit(3, RngSeed(5)))
            .unwrap();
        assert_eq!(report.stages.len(), 4);
        assert!(report.total_duration().as_nanos() > 0);
        assert!(collector.completed_spans().is_empty());
    }

    #[test]
    fn verification_off_attaches_no_diagnostics() {
        let compiler = aspen_compiler(InstructionSet::s(3));
        let (_, report) = compiler
            .compile_with_report(&qv_circuit(3, RngSeed(5)))
            .unwrap();
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn custom_pipelines_can_replace_stages() {
        use crate::pass::{CompileIr, Pass, PassContext};

        /// A no-op decomposition stage: leaves routed SWAP/SU(4) unitaries
        /// in place (useful to inspect pre-decomposition circuits).
        struct KeepUnitaries;
        impl Pass for KeepUnitaries {
            fn name(&self) -> &'static str {
                "keep-unitaries"
            }
            fn run(&self, _ir: &mut CompileIr, _ctx: &PassContext) -> Result<(), CompileError> {
                Ok(())
            }
        }

        let compiler = Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
            .instruction_set(InstructionSet::s(3))
            .options(quick_options())
            .passes(vec![
                Box::new(crate::pass::RegionSelect),
                Box::new(crate::pass::InitialMap),
                Box::new(crate::pass::SwapRoute),
                Box::new(KeepUnitaries),
            ])
            .build()
            .unwrap();
        let circuit = qv_circuit(3, RngSeed(7));
        let compiled = compiler.compile(&circuit).unwrap();
        // Without NuOp the two-qubit ops are untouched application unitaries.
        assert_eq!(
            compiled.circuit.two_qubit_gate_count(),
            circuit.two_qubit_gate_count() + compiled.swap_count
        );
    }
}
