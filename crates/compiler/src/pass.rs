//! The pass framework: compilation state, pass context and the four built-in
//! stages.
//!
//! A [`Pass`] is one stage of the pipeline. Passes communicate through a
//! [`CompileIr`] — the mutable compilation state — and read configuration
//! from a [`PassContext`] owned by the [`Compiler`](crate::Compiler) that
//! runs them. The default pipeline is
//! [`RegionSelect`] → [`InitialMap`] → [`SwapRoute`] → [`NuOpDecompose`],
//! mirroring paper Fig. 1, but custom pipelines can insert, replace or drop
//! stages.
//!
//! # Implementing a custom pass
//!
//! ```
//! use compiler::{CompileError, CompileIr, Pass, PassContext};
//!
//! /// Rejects circuits that are too deep for the device's coherence budget.
//! struct DepthLimit(usize);
//!
//! impl Pass for DepthLimit {
//!     fn name(&self) -> &'static str {
//!         "depth-limit"
//!     }
//!
//!     fn run(&self, ir: &mut CompileIr, _ctx: &PassContext) -> Result<(), CompileError> {
//!         if ir.circuit.two_qubit_gate_count() > self.0 {
//!             return Err(CompileError::InvalidLayout {
//!                 reason: format!("circuit exceeds the {}-gate depth budget", self.0),
//!             });
//!         }
//!         Ok(())
//!     }
//! }
//! ```

use std::sync::Arc;
use std::time::Duration;

use circuit::{Circuit, QubitId};
use device::DeviceModel;
use gates::InstructionSet;
use nuop_core::{DecompositionCache, NuOpPass, PassStats};
use serde::{Deserialize, Serialize};

use crate::error::CompileError;
use crate::mapping::initial_mapping;
use crate::pipeline::CompilerOptions;
use crate::region::try_select_region;
use crate::routing::try_route;

/// Mutable compilation state threaded through the passes.
///
/// `circuit` starts as the logical input circuit; [`SwapRoute`] rewrites it
/// over the region's physical qubits and [`NuOpDecompose`] lowers it to
/// hardware gate types. The remaining fields are filled in as the stages that
/// produce them run.
#[derive(Debug, Clone)]
pub struct CompileIr {
    /// The working circuit (logical at first, physical after routing).
    pub circuit: Circuit,
    /// Physical qubit ids (in the full device) of the selected region.
    pub region: Vec<QubitId>,
    /// The sub-device carved out by region selection.
    pub subdevice: Option<DeviceModel>,
    /// Initial placement: `initial_layout[logical] = region-local physical`.
    pub initial_layout: Vec<QubitId>,
    /// Placement after routing SWAPs.
    pub final_layout: Vec<QubitId>,
    /// Routing SWAPs inserted (before decomposition).
    pub swap_count: usize,
    /// SWAP gates present in the input program itself. Routing keeps these
    /// as data-moving gates without touching the layout, so verification
    /// must not replay them as bookkeeping.
    pub program_swap_count: usize,
    /// Statistics from the decomposition stage.
    pub pass_stats: PassStats,
}

impl CompileIr {
    /// Starts the IR from a logical application circuit.
    pub fn new(circuit: &Circuit) -> Self {
        CompileIr {
            program_swap_count: circuit
                .iter()
                .filter(|op| op.is_two_qubit_unitary() && op.label() == "SWAP")
                .count(),
            circuit: circuit.clone(),
            region: Vec::new(),
            subdevice: None,
            initial_layout: Vec::new(),
            final_layout: Vec::new(),
            swap_count: 0,
            pass_stats: PassStats::default(),
        }
    }

    /// The subdevice, or a [`CompileError::PipelineMisordered`] naming the
    /// pass that needed it.
    pub fn require_subdevice(&self, pass: &str) -> Result<&DeviceModel, CompileError> {
        self.subdevice
            .as_ref()
            .ok_or_else(|| CompileError::PipelineMisordered {
                pass: pass.to_string(),
                missing: "subdevice (run RegionSelect first)".to_string(),
            })
    }
}

/// Read-only context a [`Compiler`](crate::Compiler) provides to its passes.
pub struct PassContext<'a> {
    /// The full device being compiled against.
    pub device: &'a DeviceModel,
    /// The target instruction set.
    pub instruction_set: &'a InstructionSet,
    /// Compilation options.
    pub options: &'a CompilerOptions,
    /// The shared decomposition cache.
    pub cache: &'a Arc<DecompositionCache>,
    /// Worker threads the decomposition stage may use (a batched compile
    /// parallelizes across circuits instead and sets this to 1).
    pub threads: usize,
}

/// One stage of the compilation pipeline.
pub trait Pass: Send + Sync {
    /// Stable stage name used in [`CompileReport`] timings.
    fn name(&self) -> &'static str;

    /// Runs the stage, advancing `ir`.
    fn run(&self, ir: &mut CompileIr, ctx: &PassContext) -> Result<(), CompileError>;
}

/// Per-stage timing entry of a [`CompileReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// The pass name.
    pub pass: String,
    /// Wall-clock time the pass took.
    pub duration: Duration,
}

/// What a compile cost: per-stage wall-clock timings and decomposition-cache
/// traffic. Returned by
/// [`Compiler::compile_with_report`](crate::Compiler::compile_with_report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CompileReport {
    /// Wall-clock time per pipeline stage, in execution order.
    pub stages: Vec<StageTiming>,
    /// Two-qubit operations served from the shared decomposition cache.
    pub cache_hits: usize,
    /// Two-qubit operations that required a fresh numerical optimization.
    pub cache_misses: usize,
    /// Findings of the static verifier, when the compiler was built with
    /// [`CompilerBuilder::verify`](crate::CompilerBuilder::verify) enabled
    /// (empty otherwise).
    pub diagnostics: Vec<verify::Diagnostic>,
}

impl CompileReport {
    /// Total wall-clock time across stages.
    pub fn total_duration(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// Time spent in the stage called `pass`, if it ran.
    pub fn stage_duration(&self, pass: &str) -> Option<Duration> {
        self.stages
            .iter()
            .find(|s| s.pass == pass)
            .map(|s| s.duration)
    }

    /// True when the static verifier reported at least one error-level
    /// finding.
    pub fn has_verify_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == verify::Severity::Error)
    }
}

/// Stage 1: carve a connected, high-fidelity region out of the device
/// (see [`crate::region`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionSelect;

impl Pass for RegionSelect {
    fn name(&self) -> &'static str {
        "region-select"
    }

    fn run(&self, ir: &mut CompileIr, ctx: &PassContext) -> Result<(), CompileError> {
        let n = ir.circuit.num_qubits();
        ir.region = try_select_region(ctx.device, n)?;
        ir.subdevice = Some(ctx.device.subdevice(&ir.region));
        Ok(())
    }
}

/// Stage 2: place frequently-interacting logical qubits on adjacent physical
/// qubits (see [`crate::mapping`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct InitialMap;

impl Pass for InitialMap {
    fn name(&self) -> &'static str {
        "initial-map"
    }

    fn run(&self, ir: &mut CompileIr, ctx: &PassContext) -> Result<(), CompileError> {
        let _ = ctx;
        let subdevice = ir.require_subdevice(self.name())?;
        ir.initial_layout = initial_mapping(&ir.circuit, subdevice);
        Ok(())
    }
}

/// Stage 3: insert SWAPs so every two-qubit operation acts on neighbours
/// (see [`crate::routing`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapRoute;

impl Pass for SwapRoute {
    fn name(&self) -> &'static str {
        "swap-route"
    }

    fn run(&self, ir: &mut CompileIr, ctx: &PassContext) -> Result<(), CompileError> {
        let _ = ctx;
        let subdevice = ir.require_subdevice(self.name())?;
        if ir.initial_layout.len() != ir.circuit.num_qubits() {
            return Err(CompileError::PipelineMisordered {
                pass: self.name().to_string(),
                missing: "initial layout (run InitialMap first)".to_string(),
            });
        }
        let routed = try_route(&ir.circuit, subdevice, &ir.initial_layout)?;
        ir.circuit = routed.circuit;
        ir.final_layout = routed.final_layout;
        ir.swap_count = routed.swap_count;
        Ok(())
    }
}

/// Stage 4: decompose every two-qubit unitary into the instruction set's gate
/// types, noise-adaptively, via [`NuOpPass`] backed by the compiler's shared
/// cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct NuOpDecompose;

impl Pass for NuOpDecompose {
    fn name(&self) -> &'static str {
        "nuop-decompose"
    }

    fn run(&self, ir: &mut CompileIr, ctx: &PassContext) -> Result<(), CompileError> {
        let subdevice = ir.require_subdevice(self.name())?;
        let pass = NuOpPass::new(ctx.instruction_set.clone(), ctx.options.decompose.clone())
            .with_threads(ctx.threads)
            .with_cache(Arc::clone(ctx.cache));
        let (decomposed, stats) = pass.run(&ir.circuit, subdevice);
        ir.circuit = decomposed;
        ir.pass_stats = stats;
        Ok(())
    }
}

/// The default four-stage pipeline (paper Fig. 1).
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(RegionSelect),
        Box::new(InitialMap),
        Box::new(SwapRoute),
        Box::new(NuOpDecompose),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::InstructionSet;
    use nuop_core::DecomposeConfig;
    use qmath::RngSeed;

    fn quick_ctx_parts() -> (DeviceModel, InstructionSet, CompilerOptions) {
        let options = CompilerOptions {
            decompose: DecomposeConfig {
                restarts: 2,
                max_layers: 4,
                ..DecomposeConfig::default()
            },
            threads: 1,
        };
        (
            DeviceModel::aspen8(RngSeed(1)),
            InstructionSet::s(3),
            options,
        )
    }

    #[test]
    fn passes_out_of_order_report_misordering() {
        let (device, set, options) = quick_ctx_parts();
        let cache = Arc::new(DecompositionCache::new());
        let ctx = PassContext {
            device: &device,
            instruction_set: &set,
            options: &options,
            cache: &cache,
            threads: 1,
        };
        let circuit = Circuit::new(2);
        let mut ir = CompileIr::new(&circuit);
        // InitialMap before RegionSelect: no subdevice yet.
        let err = InitialMap.run(&mut ir, &ctx).unwrap_err();
        assert!(matches!(err, CompileError::PipelineMisordered { .. }));
        // SwapRoute with a subdevice but no layout.
        RegionSelect.run(&mut ir, &ctx).unwrap();
        let err = SwapRoute.run(&mut ir, &ctx).unwrap_err();
        assert!(matches!(err, CompileError::PipelineMisordered { .. }));
    }

    #[test]
    fn default_pipeline_stages_in_order() {
        let names: Vec<&str> = default_passes().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "region-select",
                "initial-map",
                "swap-route",
                "nuop-decompose"
            ]
        );
    }

    #[test]
    fn report_durations_aggregate() {
        let report = CompileReport {
            stages: vec![
                StageTiming {
                    pass: "a".into(),
                    duration: Duration::from_millis(2),
                },
                StageTiming {
                    pass: "b".into(),
                    duration: Duration::from_millis(3),
                },
            ],
            cache_hits: 1,
            cache_misses: 2,
            diagnostics: Vec::new(),
        };
        assert_eq!(report.total_duration(), Duration::from_millis(5));
        assert_eq!(report.stage_duration("b"), Some(Duration::from_millis(3)));
        assert_eq!(report.stage_duration("zzz"), None);
    }
}
