//! End-to-end compilation pipeline (paper Fig. 1, "Quantum compiler" box).
//!
//! The pipeline turns a device-independent application circuit into a
//! hardware circuit for a given [`device::DeviceModel`] and
//! [`gates::InstructionSet`]:
//!
//! 1. **Region selection** ([`region`]) — carve a connected, high-fidelity
//!    `n`-qubit patch out of the machine (so that downstream simulation only
//!    has to track the qubits the program actually uses).
//! 2. **Qubit mapping** ([`mapping`]) — place frequently-interacting logical
//!    qubits on adjacent physical qubits.
//! 3. **Routing** ([`routing`]) — insert SWAP operations so every two-qubit
//!    operation acts on neighbouring qubits; SWAPs are emitted as ordinary
//!    two-qubit unitaries so the NuOp pass can decompose them with whatever
//!    gate types the instruction set offers (this is where native-SWAP sets R5
//!    and G7 shine).
//! 4. **Gate decomposition** — the NuOp pass ([`nuop_core::NuOpPass`])
//!    rewrites every two-qubit unitary into calibrated hardware gate types,
//!    noise-adaptively.
//!
//! [`pipeline::compile`] runs all four stages and returns a
//! [`pipeline::CompiledCircuit`] carrying the layouts and statistics needed to
//! interpret measurement results and reproduce the paper's instruction-count
//! annotations.

#![warn(missing_docs)]

pub mod mapping;
pub mod pipeline;
pub mod region;
pub mod routing;

pub use mapping::initial_mapping;
pub use pipeline::{compile, CompiledCircuit, CompilerOptions};
pub use region::select_region;
pub use routing::{route, RoutedCircuit};
