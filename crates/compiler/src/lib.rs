//! End-to-end compilation pipeline (paper Fig. 1, "Quantum compiler" box).
//!
//! The pipeline turns a device-independent application circuit into a
//! hardware circuit for a given [`device::DeviceModel`] and
//! [`gates::InstructionSet`]:
//!
//! 1. **Region selection** ([`region`], pass [`pass::RegionSelect`]) — carve
//!    a connected, high-fidelity `n`-qubit patch out of the machine (so that
//!    downstream simulation only has to track the qubits the program actually
//!    uses).
//! 2. **Qubit mapping** ([`mapping`], pass [`pass::InitialMap`]) — place
//!    frequently-interacting logical qubits on adjacent physical qubits.
//! 3. **Routing** ([`routing`], pass [`pass::SwapRoute`]) — insert SWAP
//!    operations so every two-qubit operation acts on neighbouring qubits;
//!    SWAPs are emitted as ordinary two-qubit unitaries so the NuOp pass can
//!    decompose them with whatever gate types the instruction set offers
//!    (this is where native-SWAP sets R5 and G7 shine).
//! 4. **Gate decomposition** (pass [`pass::NuOpDecompose`]) — the NuOp pass
//!    ([`nuop_core::NuOpPass`]) rewrites every two-qubit unitary into
//!    calibrated hardware gate types, noise-adaptively.
//!
//! # The `Compiler` service
//!
//! [`Compiler`] is the entry point: a reusable, fallible service built via
//! [`Compiler::for_device`] that owns the pass pipeline and a **shared,
//! sharded decomposition cache** reused across calls — instruction-set sweeps
//! that compile the same workloads repeatedly (the paper's Figs. 9–11) pay
//! for each distinct SU(4) decomposition once. Invalid inputs (undersized
//! devices, disconnected regions, unknown instruction sets) surface as typed
//! [`CompileError`]s rather than panics, and [`Compiler::compile_batch`] fans
//! a whole suite out across worker threads that share the cache.
//!
//! ```
//! use apps::workloads::qaoa_circuit;
//! use compiler::{Compiler, CompilerOptions};
//! use device::DeviceModel;
//! use gates::InstructionSet;
//! use qmath::RngSeed;
//!
//! let compiler = Compiler::for_device(DeviceModel::sycamore(RngSeed(1)))
//!     .instruction_set(InstructionSet::g(3))
//!     .options(CompilerOptions::sweep())
//!     .build()?;
//! let compiled = compiler.compile(&qaoa_circuit(3, RngSeed(2)))?;
//! assert!(compiled.two_qubit_gate_count() > 0);
//! # Ok::<(), compiler::CompileError>(())
//! ```
//!
//! Custom stages implement the [`Pass`] trait and are installed with
//! [`CompilerBuilder::passes`]; [`Compiler::compile_with_report`] returns a
//! [`CompileReport`] with per-stage wall-clock timings and cache traffic.
//! Long-running services should bound the decomposition cache with
//! [`CompilerBuilder::cache_capacity`].

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod error;
pub mod mapping;
pub mod pass;
pub mod pipeline;
pub mod region;
pub mod routing;
pub mod service;

pub use error::CompileError;
pub use mapping::initial_mapping;
pub use pass::{
    default_passes, CompileIr, CompileReport, InitialMap, NuOpDecompose, Pass, PassContext,
    RegionSelect, StageTiming, SwapRoute,
};
pub use pipeline::{CompiledCircuit, CompilerOptions};
pub use region::try_select_region;
pub use routing::{logical_outcome_for, try_route, RoutedCircuit};
pub use service::{Compiler, CompilerBuilder};
pub use verify::VerifyLevel;
