//! SWAP-insertion routing.
//!
//! Two-qubit operations whose logical qubits sit on non-adjacent physical
//! qubits are preceded by SWAP operations that move one operand along the
//! shortest path towards the other. SWAPs are emitted as plain two-qubit
//! unitaries labelled `"SWAP"`; the NuOp pass later decomposes them into
//! whatever the instruction set offers (one native SWAP for R5/G7, three CZs
//! for CZ-only sets, …), which is exactly how the paper accounts for routing
//! cost.

use circuit::{Circuit, OpKind, Operation, QubitId};
use device::DeviceModel;
use serde::{Deserialize, Serialize};

use crate::error::CompileError;

/// The result of routing a circuit onto a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedCircuit {
    /// The routed circuit over the device's physical qubits.
    pub circuit: Circuit,
    /// Placement before the first operation: `initial_layout[logical] = physical`.
    pub initial_layout: Vec<QubitId>,
    /// Placement after the last operation (SWAPs permute the layout).
    pub final_layout: Vec<QubitId>,
    /// Number of SWAP operations inserted.
    pub swap_count: usize,
}

impl RoutedCircuit {
    /// Converts a measured physical basis index into the logical basis index,
    /// using the final layout (logical bit `l` is read from physical qubit
    /// `final_layout[l]`).
    pub fn logical_outcome(&self, physical_outcome: usize) -> usize {
        logical_outcome_for(
            &self.final_layout,
            self.circuit.num_qubits(),
            physical_outcome,
        )
    }
}

/// Converts a measured physical basis index into the logical basis index
/// given the final layout (logical bit `l` is read from physical qubit
/// `final_layout[l]`) and the number of physical qubits in the measured
/// register.
pub fn logical_outcome_for(
    final_layout: &[QubitId],
    num_physical: usize,
    physical_outcome: usize,
) -> usize {
    let n_logical = final_layout.len();
    let mut logical = 0usize;
    for (l, &p) in final_layout.iter().enumerate() {
        let bit = (physical_outcome >> (num_physical - 1 - p)) & 1;
        logical |= bit << (n_logical - 1 - l);
    }
    logical
}

/// Routes `circuit` onto `device` starting from `initial_layout`.
///
/// Bad layouts and disconnected devices return
/// [`CompileError`] instead of panicking.
pub fn try_route(
    circuit: &Circuit,
    device: &DeviceModel,
    initial_layout: &[QubitId],
) -> Result<RoutedCircuit, CompileError> {
    if initial_layout.len() != circuit.num_qubits() {
        return Err(CompileError::InvalidLayout {
            reason: "layout must assign every logical qubit".to_string(),
        });
    }
    for &p in initial_layout {
        if p >= device.num_qubits() {
            return Err(CompileError::InvalidLayout {
                reason: format!("layout refers to physical qubit {p} out of range"),
            });
        }
    }
    let topo = device.topology();
    let mut layout = initial_layout.to_vec(); // logical -> physical
    let mut routed = Circuit::new(device.num_qubits());
    let mut swap_count = 0usize;

    for op in circuit.iter() {
        match op.kind() {
            OpKind::Unitary1Q { .. } => {
                routed.push(op.retargeted(vec![layout[op.qubits()[0]]]));
            }
            OpKind::Measure | OpKind::Barrier => {
                let phys: Vec<QubitId> = op.qubits().iter().map(|&q| layout[q]).collect();
                routed.push(op.retargeted(phys));
            }
            OpKind::Unitary2Q { .. } => {
                let (l0, l1) = (op.qubits()[0], op.qubits()[1]);
                let (mut p0, p1) = (layout[l0], layout[l1]);
                if !topo.has_edge(p0, p1) {
                    let path = topo
                        .shortest_path(p0, p1)
                        .ok_or(CompileError::RoutingUnreachable { q0: p0, q1: p1 })?;
                    // Move l0 along the path until adjacent to p1.
                    for &next in &path[1..path.len() - 1] {
                        routed.push(Operation::swap(p0, next));
                        swap_count += 1;
                        // Update the layout: whichever logical qubit was at
                        // `next` moves to `p0`.
                        if let Some(l_at_next) = layout.iter().position(|&p| p == next) {
                            layout[l_at_next] = p0;
                        }
                        layout[l0] = next;
                        p0 = next;
                    }
                }
                routed.push(op.retargeted(vec![layout[l0], layout[l1]]));
            }
        }
    }

    Ok(RoutedCircuit {
        circuit: routed,
        initial_layout: initial_layout.to_vec(),
        final_layout: layout,
        swap_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::RngSeed;

    fn line_device(n: usize) -> DeviceModel {
        // A line topology with uniform calibration, built by carving a path out
        // of the Sycamore grid.
        let device = DeviceModel::sycamore(RngSeed(1));
        let physical: Vec<QubitId> = (0..n).collect(); // first row of the grid
        device.subdevice(&physical)
    }

    #[test]
    fn adjacent_operations_need_no_swaps() {
        let device = line_device(3);
        let mut c = Circuit::new(3);
        c.push(Operation::cz(0, 1));
        c.push(Operation::cz(1, 2));
        let routed = try_route(&c, &device, &[0, 1, 2]).unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.two_qubit_gate_count(), 2);
        assert_eq!(routed.final_layout, vec![0, 1, 2]);
    }

    #[test]
    fn distant_operation_inserts_swaps() {
        let device = line_device(4);
        let mut c = Circuit::new(4);
        c.push(Operation::cz(0, 3));
        let routed = try_route(&c, &device, &[0, 1, 2, 3]).unwrap();
        // Distance 3 on a line: two SWAPs bring qubit 0 adjacent to qubit 3.
        assert_eq!(routed.swap_count, 2);
        assert_eq!(routed.circuit.two_qubit_counts_by_label()["SWAP"], 2);
        // Logical qubit 0 now lives at physical 2.
        assert_eq!(routed.final_layout[0], 2);
    }

    #[test]
    fn routed_circuit_preserves_semantics() {
        // Compare ideal output distributions of original and routed circuits
        // (after undoing the final layout permutation).
        let device = line_device(3);
        let mut c = Circuit::new(3);
        c.push(Operation::h(0));
        c.push(Operation::cz(0, 2)); // needs routing
        c.push(Operation::h(2));
        c.measure_all();
        let routed = try_route(&c, &device, &[0, 1, 2]).unwrap();
        let ideal = sim::IdealSimulator::probabilities(&c);
        let routed_probs = sim::IdealSimulator::probabilities(&routed.circuit);
        for (physical_outcome, &p) in routed_probs.iter().enumerate() {
            let logical = routed.logical_outcome(physical_outcome);
            assert!(
                (p - ideal[logical]).abs() < 1e-9,
                "outcome {physical_outcome} -> {logical}"
            );
        }
    }

    #[test]
    fn one_qubit_gates_and_measurements_follow_the_layout() {
        let device = line_device(3);
        let mut c = Circuit::new(2);
        c.push(Operation::h(1));
        c.measure_all();
        let routed = try_route(&c, &device, &[2, 0]).unwrap();
        assert_eq!(routed.circuit.operations()[0].qubits(), &[0]);
        assert_eq!(routed.circuit.operations()[1].qubits(), &[2, 0]);
    }

    #[test]
    fn logical_outcome_inverts_layout_permutation() {
        let device = line_device(2);
        let mut c = Circuit::new(2);
        c.push(Operation::x(0));
        c.measure_all();
        let routed = try_route(&c, &device, &[1, 0]).unwrap();
        // Physical outcome with qubit 1 set corresponds to logical qubit 0 set.
        let physical = 0b01;
        assert_eq!(routed.logical_outcome(physical), 0b10);
    }

    #[test]
    fn try_route_reports_bad_layouts() {
        let device = line_device(3);
        let c = Circuit::new(2);
        assert!(matches!(
            try_route(&c, &device, &[0]),
            Err(CompileError::InvalidLayout { .. })
        ));
        assert!(matches!(
            try_route(&c, &device, &[0, 99]),
            Err(CompileError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn try_route_reports_unreachable_pairs() {
        // Two disconnected single qubits: carve non-adjacent sites out of the
        // Sycamore grid so no path exists between them.
        let device = DeviceModel::sycamore(RngSeed(1)).subdevice(&[0, 2]);
        let mut c = Circuit::new(2);
        c.push(Operation::cz(0, 1));
        assert!(matches!(
            try_route(&c, &device, &[0, 1]),
            Err(CompileError::RoutingUnreachable { .. })
        ));
    }
}
