//! Compilation options and the compiled-circuit artifact.
//!
//! Compilation itself goes through the [`crate::Compiler`] service, which
//! reuses a shared decomposition cache across compiles and returns typed
//! errors instead of panicking.

use circuit::{Circuit, QubitId};
use device::DeviceModel;
use gates::InstructionSet;
use nuop_core::{DecomposeConfig, PassStats};
use serde::{Deserialize, Serialize};
use sim::Counts;
use verify::{Artifact, Stage, StageSnapshot, Verifier, VerifyReport};

use crate::routing::logical_outcome_for;

/// Options controlling compilation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// Decomposition configuration forwarded to the NuOp pass.
    pub decompose: DecomposeConfig,
    /// Number of threads for the decomposition stage (1 = serial).
    pub threads: usize,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            decompose: DecomposeConfig::default(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl CompilerOptions {
    /// A cheaper configuration (fewer optimizer restarts) suitable for large
    /// experiment sweeps.
    pub fn sweep() -> Self {
        CompilerOptions {
            decompose: DecomposeConfig::sweep(),
            ..CompilerOptions::default()
        }
    }
}

/// A compiled circuit plus everything needed to execute it and interpret the
/// results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledCircuit {
    /// The hardware circuit over the selected region's qubits (relabelled
    /// `0..region.len()`).
    pub circuit: Circuit,
    /// Physical qubit ids (in the full device) of the selected region.
    pub region: Vec<QubitId>,
    /// The sub-device the circuit was compiled against (region-local indices).
    pub subdevice: DeviceModel,
    /// Initial layout: `initial_layout[logical] = region-local physical index`.
    pub initial_layout: Vec<QubitId>,
    /// Final layout after routing SWAPs.
    pub final_layout: Vec<QubitId>,
    /// Number of routing SWAPs inserted (before decomposition).
    pub swap_count: usize,
    /// Statistics from the NuOp decomposition pass.
    pub pass_stats: PassStats,
}

impl CompiledCircuit {
    /// Number of two-qubit hardware gates in the compiled circuit (the
    /// instruction-count annotation used throughout Figs. 9 and 10).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.circuit.two_qubit_gate_count()
    }

    /// Converts a measured physical basis index into the logical basis index
    /// using the final layout.
    pub fn logical_outcome(&self, physical_outcome: usize) -> usize {
        logical_outcome_for(
            &self.final_layout,
            self.circuit.num_qubits(),
            physical_outcome,
        )
    }

    /// Statically verifies the compiled artifact against `set`: every
    /// two-qubit gate on a coupled pair of the subdevice, only
    /// instruction-set gates present, qubit indices in bounds and the
    /// logical↔physical layouts bijective. Returns the findings; an empty
    /// report means the artifact is legal.
    ///
    /// This is the standalone form of
    /// [`CompilerBuilder::verify`](crate::CompilerBuilder::verify) for
    /// artifacts compiled without in-pipeline verification (e.g. the audit
    /// binary sweeping previously compiled workloads).
    pub fn verify(&self, set: &InstructionSet) -> VerifyReport {
        let snapshot = StageSnapshot {
            stage: Stage::NuOpDecompose,
            circuit: &self.circuit,
            region: &self.region,
            subdevice: Some(&self.subdevice),
            initial_layout: &self.initial_layout,
            final_layout: &self.final_layout,
            swap_count: self.swap_count,
            // Swap consistency only runs at the SwapRoute stage, so the
            // program-level SWAP count is irrelevant for this snapshot.
            program_swap_count: 0,
            instruction_set: Some(set),
        };
        Verifier::structural().run(&Artifact::Stage(&snapshot))
    }

    /// Converts physical measurement counts into logical-qubit counts using
    /// the final layout.
    pub fn logical_counts(&self, physical: &Counts) -> Counts {
        let mut logical = Counts::new(self.initial_layout.len());
        for (outcome, count) in physical.iter() {
            let mapped = self.logical_outcome(outcome);
            for _ in 0..count {
                logical.record(mapped);
            }
        }
        logical
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Compiler;
    use apps::workloads::{qaoa_circuit, qft_echo_circuit, qv_circuit};
    use gates::InstructionSet;
    use qmath::RngSeed;
    use sim::{IdealSimulator, NoiseModel, NoisySimulator};

    fn quick_options() -> CompilerOptions {
        CompilerOptions {
            decompose: DecomposeConfig {
                restarts: 2,
                max_layers: 4,
                ..DecomposeConfig::default()
            },
            threads: 2,
        }
    }

    fn compiled_with(
        circuit: &Circuit,
        device: &DeviceModel,
        set: InstructionSet,
    ) -> CompiledCircuit {
        Compiler::for_device(device.clone())
            .instruction_set(set)
            .options(quick_options())
            .build()
            .unwrap()
            .compile(circuit)
            .unwrap()
    }

    #[test]
    fn compile_small_qv_circuit_on_aspen8() {
        let device = DeviceModel::aspen8(RngSeed(1));
        let circ = qv_circuit(3, RngSeed(2));
        let compiled = compiled_with(&circ, &device, InstructionSet::s(3));
        assert_eq!(compiled.region.len(), 3);
        assert!(compiled.two_qubit_gate_count() >= circ.two_qubit_gate_count());
        assert!(compiled.circuit.has_measurements());
        // Every two-qubit gate in the output is the CZ type.
        for (label, _) in compiled.circuit.two_qubit_counts_by_label() {
            assert_eq!(label, "CZ");
        }
    }

    #[test]
    fn compiled_circuit_preserves_semantics_on_ideal_device() {
        let device = DeviceModel::ideal(3, 1.0);
        let circ = qaoa_circuit(3, RngSeed(3));
        let compiled = compiled_with(&circ, &device, InstructionSet::s(3));
        let ideal = IdealSimulator::probabilities(&circ.without_measurements());
        let compiled_probs =
            IdealSimulator::probabilities(&compiled.circuit.without_measurements());
        // Undo the layout permutation and compare distributions.
        let mut remapped = vec![0.0; ideal.len()];
        for (idx, p) in compiled_probs.iter().enumerate() {
            remapped[compiled.logical_outcome(idx)] += p;
        }
        for (a, b) in ideal.iter().zip(remapped.iter()) {
            assert!((a - b).abs() < 2e-3, "ideal {a} vs compiled {b}");
        }
    }

    #[test]
    fn native_swap_set_reduces_routing_cost() {
        // A QFT echo needs routing on a ring; R5 (native SWAP) should emit no
        // more two-qubit gates than R4 (no SWAP).
        let device = DeviceModel::aspen8(RngSeed(4));
        let (circ, _) = qft_echo_circuit(4, RngSeed(5));
        let with_swap = compiled_with(&circ, &device, InstructionSet::r(5));
        let without_swap = compiled_with(&circ, &device, InstructionSet::r(4));
        assert!(
            with_swap.two_qubit_gate_count() <= without_swap.two_qubit_gate_count(),
            "R5 {} vs R4 {}",
            with_swap.two_qubit_gate_count(),
            without_swap.two_qubit_gate_count()
        );
    }

    #[test]
    fn logical_counts_reorders_outcomes() {
        let device = DeviceModel::aspen8(RngSeed(6));
        let (circ, expected) = qft_echo_circuit(3, RngSeed(7));
        let compiled = compiled_with(&circ, &device, InstructionSet::r(2));
        // Noiseless execution must return the expected outcome deterministically.
        let noiseless = NoiseModel::noiseless(&compiled.subdevice);
        let counts = NoisySimulator::new(noiseless).run(&compiled.circuit, 64, RngSeed(8));
        let logical = compiled.logical_counts(&counts);
        // The compiler targets the (noisy) Aspen-8 calibration, so the
        // approximate decompositions are intentionally inexact; the expected
        // outcome must still dominate by a wide margin when executed without
        // noise.
        let p_expected = logical.probability(expected);
        assert!(
            p_expected > 0.6,
            "expected outcome probability = {p_expected}"
        );
        let best = logical.iter().max_by_key(|&(_, c)| c).map(|(idx, _)| idx);
        assert_eq!(best, Some(expected));
    }

    #[test]
    fn multi_type_sets_do_not_reduce_estimated_fidelity() {
        // Per operation, the noise-adaptive choice over G3's types includes SYC
        // itself, so the multi-type compile can never be worse than S1 in
        // estimated overall fidelity (gate *counts* may differ because the
        // approximate mode trades accuracy for fewer gates differently per type).
        let device = DeviceModel::sycamore(RngSeed(9));
        let circ = qv_circuit(3, RngSeed(10));
        let single = compiled_with(&circ, &device, InstructionSet::s(1));
        let multi = compiled_with(&circ, &device, InstructionSet::g(3));
        assert!(
            multi.pass_stats.estimated_circuit_fidelity
                >= single.pass_stats.estimated_circuit_fidelity - 1e-6,
            "multi {} vs single {}",
            multi.pass_stats.estimated_circuit_fidelity,
            single.pass_stats.estimated_circuit_fidelity
        );
    }

    #[test]
    fn pass_stats_are_populated() {
        let device = DeviceModel::sycamore(RngSeed(11));
        let circ = qaoa_circuit(3, RngSeed(12));
        let compiled = compiled_with(&circ, &device, InstructionSet::g(1));
        assert_eq!(
            compiled.pass_stats.input_two_qubit_gates,
            circ.two_qubit_gate_count() + compiled.swap_count
        );
        assert!(compiled.pass_stats.mean_overall_fidelity > 0.5);
        assert!(!compiled.pass_stats.gate_type_histogram.is_empty());
    }
}
