//! Initial qubit mapping: logical → physical placement inside a region.

use std::collections::BTreeMap;

use circuit::{Circuit, QubitId};
use device::DeviceModel;

/// Computes an initial placement `layout[logical] = physical` for a circuit on
/// a (small) device, trying to put frequently-interacting logical qubits on
/// adjacent physical qubits.
///
/// The heuristic orders logical qubits by their two-qubit interaction degree
/// and physical qubits by a BFS from the highest-degree physical qubit, then
/// pairs the two orders. This is deliberately simple — the paper's focus is
/// the decomposition stage — but it keeps routed SWAP counts reasonable on
/// ring and grid devices.
///
/// # Panics
/// Panics if the device has fewer qubits than the circuit.
pub fn initial_mapping(circuit: &Circuit, device: &DeviceModel) -> Vec<QubitId> {
    let n = circuit.num_qubits();
    assert!(
        device.num_qubits() >= n,
        "device has {} qubits, circuit needs {n}",
        device.num_qubits()
    );

    // Interaction counts between logical qubits.
    let mut weight: BTreeMap<QubitId, usize> = BTreeMap::new();
    for op in circuit.iter().filter(|o| o.is_two_qubit_unitary()) {
        for &q in op.qubits() {
            *weight.entry(q).or_insert(0) += 1;
        }
    }
    let mut logical_order: Vec<QubitId> = (0..n).collect();
    logical_order.sort_by_key(|q| std::cmp::Reverse(*weight.get(q).unwrap_or(&0)));

    // Physical order: BFS from the physical qubit with the highest degree.
    let topo = device.topology();
    let start = (0..device.num_qubits())
        .max_by_key(|&q| topo.neighbors(q).len())
        .unwrap_or(0);
    let mut physical_order = Vec::with_capacity(device.num_qubits());
    let mut visited = vec![false; device.num_qubits()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    visited[start] = true;
    while let Some(q) = queue.pop_front() {
        physical_order.push(q);
        let mut nbs = topo.neighbors(q);
        nbs.sort();
        for nb in nbs {
            if !visited[nb] {
                visited[nb] = true;
                queue.push_back(nb);
            }
        }
    }
    // Include any disconnected leftovers so the layout is total.
    for (q, seen) in visited.iter().enumerate() {
        if !seen {
            physical_order.push(q);
        }
    }

    let mut layout = vec![0usize; n];
    for (rank, &logical) in logical_order.iter().enumerate() {
        layout[logical] = physical_order[rank];
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Operation;
    use qmath::RngSeed;

    #[test]
    fn mapping_is_a_permutation_prefix() {
        let device = DeviceModel::aspen8(RngSeed(1)).subdevice(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let mut c = Circuit::new(4);
        c.push(Operation::cz(0, 1));
        c.push(Operation::cz(1, 2));
        c.push(Operation::cz(2, 3));
        let layout = initial_mapping(&c, &device);
        assert_eq!(layout.len(), 4);
        let mut sorted = layout.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "layout must be injective: {layout:?}");
        for &p in &layout {
            assert!(p < device.num_qubits());
        }
    }

    #[test]
    fn busiest_logical_qubit_gets_a_well_connected_site() {
        // Star-shaped interaction: qubit 0 talks to everyone.
        let device = DeviceModel::sycamore(RngSeed(2)).subdevice(&[0, 1, 9, 10, 2, 11]);
        let mut c = Circuit::new(5);
        for q in 1..5 {
            c.push(Operation::cz(0, q));
        }
        let layout = initial_mapping(&c, &device);
        let topo = device.topology();
        let degree_of_center = topo.neighbors(layout[0]).len();
        let max_degree = (0..device.num_qubits())
            .map(|q| topo.neighbors(q).len())
            .max()
            .unwrap();
        assert_eq!(degree_of_center, max_degree);
    }

    #[test]
    fn works_for_circuits_without_two_qubit_gates() {
        let device = DeviceModel::ideal(3, 0.99);
        let mut c = Circuit::new(3);
        c.push(Operation::h(0));
        let layout = initial_mapping(&c, &device);
        assert_eq!(layout.len(), 3);
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn device_too_small_panics() {
        let device = DeviceModel::ideal(2, 0.99);
        let c = Circuit::new(3);
        let _ = initial_mapping(&c, &device);
    }
}
