//! Region selection: carving a connected, high-fidelity patch out of a device.

use circuit::QubitId;
use device::DeviceModel;
use nuop_core::HardwareFidelityProvider as _;

use crate::error::CompileError;

/// Selects `n` physical qubits forming a connected subgraph with high mean
/// two-qubit fidelity.
///
/// The search is greedy: every edge of the device is tried as a seed, the
/// region grows by repeatedly adding the neighbouring qubit whose connecting
/// edges have the best average (default) fidelity, and the candidate region
/// with the best overall mean fidelity wins.
///
/// Undersized devices return
/// [`CompileError::RegionUnavailable`] and fragmented topologies
/// [`CompileError::RegionDisconnected`] instead of panicking.
pub fn try_select_region(device: &DeviceModel, n: usize) -> Result<Vec<QubitId>, CompileError> {
    if n == 0 {
        return Err(CompileError::EmptyCircuit);
    }
    if n > device.num_qubits() {
        return Err(CompileError::RegionUnavailable {
            requested: n,
            available: device.num_qubits(),
        });
    }
    let topo = device.topology();
    if n == 1 {
        return Ok(vec![0]);
    }

    let edge_fid =
        |a: QubitId, b: QubitId| -> f64 { device.edge(a, b).map_or(0.0, |e| e.default_fidelity()) };

    let mut best: Option<(f64, Vec<QubitId>)> = None;
    for (seed_a, seed_b) in topo.edges() {
        let mut region = vec![seed_a, seed_b];
        while region.len() < n {
            // Candidate neighbours of the current region.
            let mut candidates: Vec<(f64, QubitId)> = Vec::new();
            for &q in &region {
                for nb in topo.neighbors(q) {
                    if region.contains(&nb) {
                        continue;
                    }
                    // Mean fidelity of edges connecting nb to the region.
                    let fids: Vec<f64> = region
                        .iter()
                        .filter(|&&r| topo.has_edge(r, nb))
                        .map(|&r| edge_fid(r, nb))
                        .collect();
                    let mean = fids.iter().sum::<f64>() / fids.len().max(1) as f64;
                    candidates.push((mean, nb));
                }
            }
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite fidelities"));
            match candidates.first() {
                Some(&(_, q)) => region.push(q),
                None => break, // dead end: the component is too small
            }
        }
        if region.len() < n {
            continue;
        }
        // Score: mean fidelity over region-internal edges.
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &a) in region.iter().enumerate() {
            for &b in &region[i + 1..] {
                if topo.has_edge(a, b) {
                    sum += edge_fid(a, b);
                    count += 1;
                }
            }
        }
        let score = if count > 0 { sum / count as f64 } else { 0.0 };
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, region));
        }
    }
    best.map(|(_, r)| r)
        .ok_or(CompileError::RegionDisconnected { requested: n })
}

/// Mean calibrated fidelity of a named gate over the edges internal to a
/// region (useful for reporting which gate types a region favours).
pub fn region_gate_fidelity(device: &DeviceModel, region: &[QubitId], gate_name: &str) -> f64 {
    let topo = device.topology();
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, &a) in region.iter().enumerate() {
        for &b in &region[i + 1..] {
            if topo.has_edge(a, b) {
                sum += device.two_qubit_fidelity(a, b, gate_name);
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::RngSeed;

    #[test]
    fn region_is_connected_and_right_size() {
        let device = DeviceModel::aspen8(RngSeed(1));
        for n in [2usize, 3, 4, 6, 8] {
            let region = try_select_region(&device, n).unwrap();
            assert_eq!(region.len(), n);
            let sub = device.subdevice(&region);
            assert!(sub.topology().is_connected(), "n={n}");
        }
    }

    #[test]
    fn region_prefers_high_fidelity_edges() {
        let device = DeviceModel::aspen8(RngSeed(1));
        let region = try_select_region(&device, 3).unwrap();
        let mean = region_gate_fidelity(&device, &region, "CZ");
        // The device-wide CZ fidelities range from 0.81 to 0.97; a greedy
        // selection should do clearly better than the low end.
        assert!(mean > 0.88, "mean CZ fidelity of region = {mean}");
    }

    #[test]
    fn sycamore_region_selection_works_at_several_sizes() {
        let device = DeviceModel::sycamore(RngSeed(2));
        for n in [2usize, 6, 10, 20] {
            let region = try_select_region(&device, n).unwrap();
            assert_eq!(region.len(), n);
            assert!(device.subdevice(&region).topology().is_connected());
        }
    }

    #[test]
    fn single_qubit_region() {
        let device = DeviceModel::sycamore(RngSeed(3));
        assert_eq!(try_select_region(&device, 1).unwrap().len(), 1);
    }

    #[test]
    fn try_select_region_reports_undersized_devices() {
        let device = DeviceModel::ideal(3, 0.99);
        assert_eq!(
            try_select_region(&device, 5),
            Err(CompileError::RegionUnavailable {
                requested: 5,
                available: 3,
            })
        );
        assert_eq!(
            try_select_region(&device, 0),
            Err(CompileError::EmptyCircuit)
        );
    }

    #[test]
    fn try_select_region_is_deterministic_on_valid_input() {
        let device = DeviceModel::aspen8(RngSeed(1));
        for n in [1usize, 3, 6] {
            assert_eq!(
                try_select_region(&device, n).unwrap(),
                try_select_region(&device, n).unwrap()
            );
        }
    }
}
