//! Typed compilation errors.
//!
//! Every failure a hostable-but-invalid input can trigger surfaces as a
//! [`CompileError`] instead of a panic, so a long-running service can reject
//! one bad compile request without dying.

use std::fmt;

use circuit::QubitId;
use gates::InvalidInstructionSet;
use serde::{Deserialize, Serialize};

/// Why a compile request could not be served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompileError {
    /// The circuit has zero qubits — there is nothing to place.
    EmptyCircuit,
    /// The device has fewer qubits than the circuit needs.
    RegionUnavailable {
        /// Qubits the circuit needs.
        requested: usize,
        /// Qubits the device offers.
        available: usize,
    },
    /// The device is large enough but no connected region of the requested
    /// size exists (fragmented topology).
    RegionDisconnected {
        /// Qubits the circuit needs.
        requested: usize,
    },
    /// The instruction set is missing or not a valid Table II set.
    InvalidInstructionSet(InvalidInstructionSet),
    /// Routing found no path between two physical qubits (disconnected
    /// subdevice handed to the router).
    RoutingUnreachable {
        /// First physical qubit.
        q0: QubitId,
        /// Second physical qubit.
        q1: QubitId,
    },
    /// An initial layout handed to the router does not fit the circuit or
    /// device.
    InvalidLayout {
        /// Human-readable explanation.
        reason: String,
    },
    /// A pass ran before the stage that produces its input (custom pipelines
    /// only; the default pipeline is always correctly ordered).
    PipelineMisordered {
        /// The pass that could not run.
        pass: String,
        /// What it was missing.
        missing: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyCircuit => write!(f, "circuit has no qubits"),
            CompileError::RegionUnavailable {
                requested,
                available,
            } => write!(
                f,
                "device has only {available} qubits, circuit needs {requested}"
            ),
            CompileError::RegionDisconnected { requested } => {
                write!(
                    f,
                    "no connected {requested}-qubit region found on the device"
                )
            }
            CompileError::InvalidInstructionSet(err) => {
                write!(f, "invalid instruction set: {err}")
            }
            CompileError::RoutingUnreachable { q0, q1 } => {
                write!(f, "no path between physical qubits {q0} and {q1}")
            }
            CompileError::InvalidLayout { reason } => write!(f, "invalid layout: {reason}"),
            CompileError::PipelineMisordered { pass, missing } => {
                write!(f, "pass {pass} ran before {missing} was available")
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::InvalidInstructionSet(err) => Some(err),
            _ => None,
        }
    }
}

impl From<InvalidInstructionSet> for CompileError {
    fn from(err: InvalidInstructionSet) -> Self {
        CompileError::InvalidInstructionSet(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CompileError::RegionUnavailable {
            requested: 9,
            available: 3,
        };
        assert!(e.to_string().contains("only 3 qubits"));
        assert!(e.to_string().contains("needs 9"));
        let e = CompileError::RoutingUnreachable { q0: 1, q1: 7 };
        assert!(e.to_string().contains("1 and 7"));
    }

    #[test]
    fn instruction_set_errors_convert_and_chain() {
        let err: CompileError = InvalidInstructionSet::new("G9", "G9 is not defined").into();
        assert!(err.to_string().contains("G9 is not defined"));
        let dynamic: &dyn std::error::Error = &err;
        assert!(dynamic.source().is_some());
    }
}
