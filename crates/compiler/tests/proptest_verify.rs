//! Property: the verifier accepts every circuit the compiler produces.
//!
//! Random small circuits are compiled with per-stage verification enabled;
//! neither the per-stage snapshots nor the final artifact may carry an
//! error-level finding. This is the "no false positives on legal output"
//! half of the mutation suite in `crates/verify/tests/mutations.rs`.

use circuit::{Circuit, Operation};
use compiler::{Compiler, CompilerOptions, VerifyLevel};
use device::DeviceModel;
use gates::InstructionSet;
use nuop_core::DecomposeConfig;
use proptest::prelude::*;
use qmath::RngSeed;

/// Strategy generating a random small circuit over `n` qubits, mirroring the
/// circuit crate's proptest suite.
fn arb_circuit(n: usize, max_ops: usize) -> impl Strategy<Value = Circuit> {
    let op = (0..6u8, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, a, b, angle)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Operation::h(a),
            1 => Operation::rx(a, angle),
            2 => Operation::rz(a, angle),
            3 => Operation::cz(a, b),
            4 => Operation::zz(a, b, angle),
            _ => Operation::swap(a, b),
        }
    });
    proptest::collection::vec(op, 1..max_ops).prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for op in ops {
            c.push(op);
        }
        c
    })
}

fn verifying_compiler(set: InstructionSet) -> Compiler {
    Compiler::for_device(DeviceModel::sycamore(RngSeed(7)))
        .instruction_set(set)
        .options(CompilerOptions {
            decompose: DecomposeConfig {
                restarts: 2,
                max_layers: 4,
                ..DecomposeConfig::default()
            },
            threads: 2,
        })
        .verify(VerifyLevel::PerStage)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiled_circuits_verify_clean_under_s1(c in arb_circuit(3, 8)) {
        let compiler = verifying_compiler(InstructionSet::s(1));
        let (compiled, report) = compiler.compile_with_report(&c).unwrap();
        prop_assert!(!report.has_verify_errors(), "{:?}", report.diagnostics);
        let artifact = compiled.verify(compiler.instruction_set());
        prop_assert!(!artifact.has_errors(), "{artifact}");
    }

    #[test]
    fn compiled_circuits_verify_clean_under_full_xy(c in arb_circuit(3, 8)) {
        let compiler = verifying_compiler(InstructionSet::full_xy());
        let (compiled, report) = compiler.compile_with_report(&c).unwrap();
        prop_assert!(!report.has_verify_errors(), "{:?}", report.diagnostics);
        let artifact = compiled.verify(compiler.instruction_set());
        prop_assert!(!artifact.has_errors(), "{artifact}");
    }
}
