//! Golden-file tests for both span exporters.
//!
//! The rendered bytes are part of the replay `--trace` output and the
//! server's `/trace` surface, so any drift must be a conscious decision.
//! Regenerate with:
//!
//! ```text
//! BLESS=1 cargo test -p telemetry --test golden_json
//! ```

use telemetry::export::{spans_flat_json, trace_json};
use telemetry::{AttrValue, Span, SpanId};

fn check_golden(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        rendered,
        expected.trim_end(),
        "rendered JSON drifted from {}; rerun with BLESS=1 if intentional",
        path.display()
    );
}

/// A deterministic job → stage → shard tree, as the server records it: the
/// job span finishes last, children carry the attrs the instrumentation
/// attaches, and one name exercises the sanitizer.
fn sample_spans() -> Vec<Span> {
    vec![
        Span {
            id: SpanId(2),
            parent: SpanId(1),
            name: "queue_wait",
            thread: 2,
            start_micros: 100,
            duration_micros: 40,
            attrs: vec![],
        },
        Span {
            id: SpanId(3),
            parent: SpanId(1),
            name: "compile",
            thread: 2,
            start_micros: 140,
            duration_micros: 210,
            attrs: vec![
                ("cache_hits", AttrValue::U64(3)),
                ("tenant", AttrValue::Str("alice \"prod\"")),
            ],
        },
        Span {
            id: SpanId(5),
            parent: SpanId(4),
            name: "shard",
            thread: 3,
            start_micros: 360,
            duration_micros: 500,
            attrs: vec![("shard", AttrValue::U64(0)), ("shots", AttrValue::U64(64))],
        },
        Span {
            id: SpanId(4),
            parent: SpanId(1),
            name: "simulate",
            thread: 2,
            start_micros: 350,
            duration_micros: 520,
            attrs: vec![
                ("qubits", AttrValue::U64(5)),
                ("regime", AttrValue::Str("shot_parallel")),
            ],
        },
        Span {
            id: SpanId(1),
            parent: SpanId::NONE,
            name: "job",
            thread: 2,
            start_micros: 100,
            duration_micros: 780,
            attrs: vec![("shots", AttrValue::U64(64))],
        },
    ]
}

#[test]
fn trace_event_export_matches_golden() {
    check_golden("trace_events.json", &trace_json(&sample_spans()));
}

#[test]
fn flat_span_export_matches_golden() {
    check_golden("spans_flat.json", &spans_flat_json(&sample_spans()));
}
