//! Integration tests for the telemetry core: quantile accuracy under random
//! workloads and span integrity under concurrency.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;
use telemetry::metrics::{bucket_index, Histogram};
use telemetry::{Collector, Span};

/// Exact quantile at the same rank definition the histogram estimator uses:
/// rank `ceil(q * n)`, 1-based, over the sorted samples.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    // Seed-pinned tier-1 suite: case count fixed here, RNG stream fixed by
    // PROPTEST_RNG_SEED (see vendor/proptest) so CI runs are reproducible.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_quantiles_stay_within_one_bucket_of_exact(
        samples in proptest::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let histogram = Histogram::new();
        for &sample in &samples {
            histogram.record(sample);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let estimate = histogram.quantile(q);
            prop_assert_eq!(bucket_index(estimate), bucket_index(exact));
            // The estimate never exceeds the recorded maximum.
            prop_assert!(estimate <= sorted[sorted.len() - 1]);
        }
    }

    #[test]
    fn histogram_count_and_sum_are_exact(
        samples in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let histogram = Histogram::new();
        for &sample in &samples {
            histogram.record(sample);
        }
        prop_assert_eq!(histogram.count(), samples.len() as u64);
        prop_assert_eq!(histogram.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(histogram.max(), samples.iter().copied().max().unwrap_or(0));
    }
}

const WORKERS: usize = 8;
const SPANS_PER_WORKER: usize = 50;

#[test]
fn concurrent_recording_loses_no_spans_and_nests_correctly() {
    let collector = Arc::new(Collector::with_capacity(WORKERS * SPANS_PER_WORKER + 8));
    let mut job = Span::enter(Some(&collector), "job");
    job.set_attr("workers", WORKERS as u64);
    let job_id = job.id();

    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let collector = Arc::clone(&collector);
            scope.spawn(move || {
                for index in 0..SPANS_PER_WORKER {
                    let mut span = Span::enter_child(Some(&collector), "shard", job_id);
                    span.set_attr("worker", worker as u64);
                    span.set_attr("index", index as u64);
                    span.finish();
                }
            });
        }
    });
    job.finish();

    let spans = collector.completed_spans();
    assert_eq!(spans.len(), WORKERS * SPANS_PER_WORKER + 1);

    let mut ids = HashSet::new();
    let mut shard_count = 0;
    for span in &spans {
        assert!(ids.insert(span.id), "duplicate span id {:?}", span.id);
        if span.name == "shard" {
            shard_count += 1;
            assert_eq!(span.parent, job_id, "shard span lost its parent");
        } else {
            assert_eq!(span.name, "job");
            assert_eq!(span.id, job_id);
        }
    }
    assert_eq!(shard_count, WORKERS * SPANS_PER_WORKER);

    // Every worker contributed all of its spans.
    for worker in 0..WORKERS as u64 {
        let from_worker = spans
            .iter()
            .filter(|s| {
                s.attrs
                    .iter()
                    .any(|&(k, v)| k == "worker" && v == telemetry::AttrValue::U64(worker))
            })
            .count();
        assert_eq!(from_worker, SPANS_PER_WORKER);
    }
}

#[test]
fn ring_buffer_evicts_oldest_first() {
    let collector = Arc::new(Collector::with_capacity(4));
    for _ in 0..10 {
        Span::enter(Some(&collector), "tick").finish();
    }
    let spans = collector.completed_spans();
    assert_eq!(spans.len(), 4);
    // The survivors are the newest four, still in completion order.
    for pair in spans.windows(2) {
        assert!(pair[0].id.0 < pair[1].id.0);
    }
    assert_eq!(spans[3].id.0, 10);
}

#[test]
fn disabled_collector_records_nothing_but_still_times() {
    let collector = Arc::new(Collector::disabled());
    let mut span = Span::enter(Some(&collector), "job");
    span.set_attr("shots", 1);
    assert!(!span.recording());
    assert_eq!(span.id(), telemetry::SpanId::NONE);
    let elapsed = span.finish();
    assert!(elapsed.as_nanos() > 0);
    assert!(collector.completed_spans().is_empty());

    // Same for the `None` collector shorthand.
    let free = Span::enter(None, "job").finish();
    assert!(free.as_nanos() > 0);
}

#[test]
fn sampling_gates_sampled_spans() {
    let collector = Arc::new(Collector::new());
    // Sampling off (default): sampled spans never record.
    for _ in 0..8 {
        Span::enter_sampled(Some(&collector), "sweep", telemetry::SpanId::NONE).finish();
    }
    assert!(collector.completed_spans().is_empty());

    collector.set_sampling(4);
    for _ in 0..8 {
        Span::enter_sampled(Some(&collector), "sweep", telemetry::SpanId::NONE).finish();
    }
    assert_eq!(collector.completed_spans().len(), 2);
}
