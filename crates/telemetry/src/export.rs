//! Span exporters: flat JSON (server codec dialect) and Chrome Trace Event
//! Format.
//!
//! Both renderers are pure functions of the span records, so output is
//! byte-deterministic for a fixed input — which is what lets the golden
//! tests pin them.

use crate::span::{AttrValue, Span};

/// Appends `text` with the flat-codec sanitization rules used by the server
/// wire format and `verify` diagnostics: no escape sequences — `"` and `\`
/// become `'`, other control characters become spaces.
pub fn push_sanitized(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' | '\\' => out.push('\''),
            c if c.is_control() => out.push(' '),
            c => out.push(c),
        }
    }
}

/// Appends `"key":"value"` (comma-separated) to a flat JSON object body.
pub fn push_str_field(out: &mut String, key: &str, value: &str) {
    if !out.is_empty() && !out.ends_with('{') && !out.ends_with('[') {
        out.push(',');
    }
    out.push('"');
    push_sanitized(out, key);
    out.push_str("\":\"");
    push_sanitized(out, value);
    out.push('"');
}

/// Appends `"key":N` (comma-separated) to a flat JSON object body.
pub fn push_num_field(out: &mut String, key: &str, value: u64) {
    if !out.is_empty() && !out.ends_with('{') && !out.ends_with('[') {
        out.push(',');
    }
    out.push('"');
    push_sanitized(out, key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

/// Renders spans as a JSON array of single-level objects in the flat server
/// dialect: `name`, `id`, `parent`, `thread`, `start_micros`, `dur_micros`,
/// then one `attr.<key>` field per attribute in recording order.
pub fn spans_flat_json(spans: &[Span]) -> String {
    let mut out = String::from("[");
    for (index, span) in spans.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "name", span.name);
        push_num_field(&mut out, "id", span.id.0);
        push_num_field(&mut out, "parent", span.parent.0);
        push_num_field(&mut out, "thread", span.thread);
        push_num_field(&mut out, "start_micros", span.start_micros);
        push_num_field(&mut out, "dur_micros", span.duration_micros);
        for (key, value) in &span.attrs {
            let attr_key = format!("attr.{key}");
            match value {
                AttrValue::U64(n) => push_num_field(&mut out, &attr_key, *n),
                AttrValue::Str(s) => push_str_field(&mut out, &attr_key, s),
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Renders spans in Chrome Trace Event Format — load the result in
/// <https://ui.perfetto.dev> (or `chrome://tracing`) for a flamegraph.
///
/// Every span becomes one complete (`"ph":"X"`) event with microsecond
/// `ts`/`dur`, `pid` fixed at 1 and `tid` set to the telemetry thread id;
/// the span/parent ids ride along in `args` so the job → stage → shard
/// hierarchy survives even across threads.
pub fn trace_json(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (index, span) in spans.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push('{');
        push_str_field(&mut out, "name", span.name);
        push_str_field(&mut out, "ph", "X");
        push_num_field(&mut out, "ts", span.start_micros);
        push_num_field(&mut out, "dur", span.duration_micros);
        push_num_field(&mut out, "pid", 1);
        push_num_field(&mut out, "tid", span.thread);
        out.push_str(",\"args\":{");
        let mut args = String::new();
        push_num_field(&mut args, "span_id", span.id.0);
        push_num_field(&mut args, "parent_id", span.parent.0);
        for (key, value) in &span.attrs {
            match value {
                AttrValue::U64(n) => push_num_field(&mut args, key, *n),
                AttrValue::Str(s) => push_str_field(&mut args, key, s),
            }
        }
        out.push_str(&args);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn span(id: u64, parent: u64, name: &'static str) -> Span {
        Span {
            id: SpanId(id),
            parent: SpanId(parent),
            name,
            thread: 1,
            start_micros: 10 * id,
            duration_micros: 5,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn sanitizes_quotes_and_controls() {
        let mut out = String::new();
        push_str_field(&mut out, "k", "a\"b\\c\nd");
        assert_eq!(out, "\"k\":\"a'b'c d\"");
    }

    #[test]
    fn trace_json_shapes_events() {
        let json = trace_json(&[span(1, 0, "job"), span(2, 1, "compile")]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"span_id\":2,\"parent_id\":1"));
    }

    #[test]
    fn flat_json_carries_attrs() {
        let mut s = span(3, 1, "shard");
        s.attrs.push(("shots", AttrValue::U64(64)));
        s.attrs.push(("regime", AttrValue::Str("shot_parallel")));
        let json = spans_flat_json(&[s]);
        assert!(json.contains("\"attr.shots\":64"));
        assert!(json.contains("\"attr.regime\":\"shot_parallel\""));
    }
}
