//! Counters, gauges and log-bucketed latency histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of histogram buckets: one for zero plus one per power of two up to
/// `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter (relaxed atomics throughout).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Index of the log2 bucket covering `value`: bucket 0 holds exactly zero,
/// bucket `i >= 1` holds `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index` (saturates at `u64::MAX`).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A lock-free latency histogram with log2-width buckets.
///
/// Recording is one `fetch_add` per bucket plus running count/sum/max, so it
/// is safe to call from worker threads. Quantile estimates return the upper
/// bound of the bucket containing the requested rank, clamped to the maximum
/// recorded value — always within the same log2 bucket as the exact
/// quantile.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (saturating only at `u64` overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded observations (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the log2
    /// bucket holding rank `ceil(q * count)`, clamped to the recorded
    /// maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper_bound(index).min(self.max());
            }
        }
        self.max()
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile shorthand.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A named collection of metrics. Lookup (`counter`/`gauge`/`histogram`)
/// takes a short lock and interns the name on first use; the returned `Arc`
/// can be cached by hot paths so steady-state recording never touches the
/// registry lock.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&created));
        created
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&created));
        created
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let created = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&created));
        created
    }

    /// Name + handle of every registered counter, sorted by name.
    pub fn counters(&self) -> Vec<(String, Arc<Counter>)> {
        self.counters
            .lock()
            .iter()
            .map(|(name, counter)| (name.clone(), Arc::clone(counter)))
            .collect()
    }

    /// Name + handle of every registered gauge, sorted by name.
    pub fn gauges(&self) -> Vec<(String, Arc<Gauge>)> {
        self.gauges
            .lock()
            .iter()
            .map(|(name, gauge)| (name.clone(), Arc::clone(gauge)))
            .collect()
    }

    /// Name + handle of every registered histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .lock()
            .iter()
            .map(|(name, histogram)| (name.clone(), Arc::clone(histogram)))
            .collect()
    }

    /// Renders every metric as one flat JSON object (the single-level
    /// `"key":value` dialect the server codec speaks): counters as
    /// `"counter.<name>":N`, gauges as `"gauge.<name>":N`, histograms as
    /// `"histogram.<name>.{count,p50,p90,p99,max}":N`. Keys are sorted, so
    /// the output is deterministic for a given set of recorded values.
    pub fn to_flat_json(&self) -> String {
        let mut out = String::from("{");
        for (name, counter) in self.counters() {
            crate::export::push_num_field(&mut out, &format!("counter.{name}"), counter.get());
        }
        for (name, gauge) in self.gauges() {
            let value = gauge.get();
            if value < 0 {
                // The flat codec has no signed helper; inline the negative.
                if out.len() > 1 {
                    out.push(',');
                }
                out.push('"');
                crate::export::push_sanitized(&mut out, &format!("gauge.{name}"));
                out.push_str("\":");
                out.push_str(&value.to_string());
            } else {
                crate::export::push_num_field(&mut out, &format!("gauge.{name}"), value as u64);
            }
        }
        for (name, histogram) in self.histograms() {
            crate::export::push_num_field(
                &mut out,
                &format!("histogram.{name}.count"),
                histogram.count(),
            );
            crate::export::push_num_field(
                &mut out,
                &format!("histogram.{name}.p50"),
                histogram.p50(),
            );
            crate::export::push_num_field(
                &mut out,
                &format!("histogram.{name}.p90"),
                histogram.p90(),
            );
            crate::export::push_num_field(
                &mut out,
                &format!("histogram.{name}.p99"),
                histogram.p99(),
            );
            crate::export::push_num_field(
                &mut out,
                &format!("histogram.{name}.max"),
                histogram.max(),
            );
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64usize {
            let low = 1u64 << (i - 1);
            assert_eq!(bucket_index(low), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
    }

    #[test]
    fn quantile_clamps_to_recorded_max() {
        let h = Histogram::new();
        h.record(900);
        assert_eq!(h.quantile(1.0), 900);
        assert_eq!(h.p50(), 900);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn registry_interns_by_name() {
        let registry = Registry::new();
        registry.counter("hits").add(2);
        registry.counter("hits").inc();
        assert_eq!(registry.counter("hits").get(), 3);
        registry.gauge("depth").set(-4);
        assert_eq!(registry.gauge("depth").get(), -4);
        let json = registry.to_flat_json();
        assert!(json.contains("\"counter.hits\":3"));
        assert!(json.contains("\"gauge.depth\":-4"));
    }
}
