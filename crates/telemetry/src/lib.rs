//! Low-overhead telemetry shared by the compiler, engine and server.
//!
//! Three pieces, designed to stay out of the hot paths they measure:
//!
//! * **Hierarchical spans** ([`Span::enter`] / [`SpanGuard`]): RAII timers
//!   with explicit parent ids, so scoped worker threads can attach their
//!   shard spans to the job span that spawned them without thread-local
//!   magic. A guard created against a disabled (or absent) [`Collector`]
//!   costs one `Instant::now()` and allocates nothing.
//! * **A metrics [`Registry`]** of [`Counter`]s, [`Gauge`]s and log-bucketed
//!   latency [`Histogram`]s with p50/p90/p99 quantile estimation. All
//!   recording is relaxed atomics; registration is a lock + map lookup and
//!   belongs outside per-shot loops.
//! * **Two exporters** ([`export`]): the flat-JSON dialect the server wire
//!   codec and `verify` diagnostics already speak, and Chrome Trace Event
//!   Format (load the file in <https://ui.perfetto.dev> or `chrome://tracing`
//!   for a flamegraph of one run).
//!
//! # Spans
//!
//! ```
//! use std::sync::Arc;
//! use telemetry::{Collector, Span};
//!
//! let collector = Arc::new(Collector::new());
//! let mut job = Span::enter(Some(&collector), "job");
//! job.set_attr("shots", 128);
//! {
//!     // Children name their parent explicitly — this also works from a
//!     // scoped worker thread holding a clone of the Arc.
//!     let stage = Span::enter_child(Some(&collector), "compile", job.id());
//!     let elapsed = stage.finish();
//!     assert!(elapsed.as_nanos() > 0);
//! }
//! job.finish();
//! let spans = collector.completed_spans();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].name, "compile");
//! assert_eq!(spans[0].parent, spans[1].id);
//! ```
//!
//! # Metrics
//!
//! ```
//! use telemetry::Collector;
//!
//! let collector = Collector::new();
//! collector.counter("cache_hits").add(3);
//! let latency = collector.histogram("compile_micros");
//! for micros in [100, 200, 400, 800] {
//!     latency.record(micros);
//! }
//! assert_eq!(collector.counter("cache_hits").get(), 3);
//! // Quantile estimates are exact to within one log2 bucket.
//! assert!(latency.quantile(0.5) >= 128 && latency.quantile(0.5) <= 255);
//! let json = collector.registry().to_flat_json();
//! assert!(json.contains("\"counter.cache_hits\":3"));
//! ```
//!
//! # Overhead model
//!
//! Every instrumentation point in this workspace first checks
//! [`Collector::enabled`] (one relaxed atomic load) — a disabled collector
//! records nothing and allocates nothing. Per-amplitude kernel loops are
//! additionally gated behind [`Collector::set_sampling`], so the 1q sweep
//! stays clean even when telemetry is on.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;

use std::sync::{Arc, OnceLock};

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use span::{AttrValue, Collector, Span, SpanGuard, SpanId};

static GLOBAL: OnceLock<Arc<Collector>> = OnceLock::new();

/// The process-wide collector used by instrumentation points too deep to
/// thread an `Arc<Collector>` through (the statevector sweep workers).
/// Starts **disabled**; enable it (and set a sampling rate) explicitly when a
/// run wants sweep-level spans:
///
/// ```
/// let global = telemetry::global();
/// assert!(!global.enabled());
/// ```
pub fn global() -> &'static Arc<Collector> {
    GLOBAL.get_or_init(|| Arc::new(Collector::disabled()))
}
