//! Hierarchical spans and the collector that stores them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::metrics::{Counter, Gauge, Histogram, Registry};

/// Default bound of the completed-span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Identifier of a recorded span. `SpanId::NONE` (zero) means "no span" —
/// used both for root spans (no parent) and for guards created against a
/// disabled collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: no parent / not recording.
    pub const NONE: SpanId = SpanId(0);

    /// True for any id other than [`SpanId::NONE`].
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One attribute value attached to a span: either a number (shot counts,
/// qubit counts, shard indices) or a static tag (regime names, fusion
/// policies). Static strings keep attribute recording allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned integer attribute.
    U64(u64),
    /// A static string tag.
    Str(&'static str),
}

/// A completed span: what the ring buffer stores and the exporters render.
///
/// Fields are public so deterministic tests (and adapters synthesizing spans
/// from externally measured intervals) can build records directly and feed
/// them through [`Collector::record_span_raw`].
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Unique id within the collector.
    pub id: SpanId,
    /// Parent span id, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Static name ("job", "compile", "shard", ...).
    pub name: &'static str,
    /// Telemetry thread id of the recording thread (process-unique, assigned
    /// in creation order — not the OS tid).
    pub thread: u64,
    /// Start time in microseconds since the collector's epoch.
    pub start_micros: u64,
    /// Duration in microseconds.
    pub duration_micros: u64,
    /// Attributes, in the order they were set.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Starts a root span against `collector` (pass `None`, or a disabled
    /// collector, for a guard that only measures time). See the
    /// [crate docs](crate) for an example.
    pub fn enter(collector: Option<&Arc<Collector>>, name: &'static str) -> SpanGuard {
        Span::enter_child(collector, name, SpanId::NONE)
    }

    /// Starts a span whose parent is `parent` — the cross-thread attachment
    /// point: a scoped worker passes the id of the span its job runs under.
    pub fn enter_child(
        collector: Option<&Arc<Collector>>,
        name: &'static str,
        parent: SpanId,
    ) -> SpanGuard {
        SpanGuard::new(collector, name, parent, Instant::now())
    }

    /// Starts a span whose clock began at `start` (before the guard was
    /// created). The server uses this to open a job span at its *admission*
    /// timestamp once a worker picks the job up, so queue wait is inside the
    /// job span.
    pub fn enter_at(
        collector: Option<&Arc<Collector>>,
        name: &'static str,
        parent: SpanId,
        start: Instant,
    ) -> SpanGuard {
        SpanGuard::new(collector, name, parent, start)
    }

    /// Like [`Span::enter_child`], but additionally gated behind the
    /// collector's sampling rate ([`Collector::set_sampling`]) — the entry
    /// point for per-worker sweep spans inside amplitude kernels.
    pub fn enter_sampled(
        collector: Option<&Arc<Collector>>,
        name: &'static str,
        parent: SpanId,
    ) -> SpanGuard {
        let sampled = collector.filter(|c| c.sample());
        SpanGuard::new(sampled, name, parent, Instant::now())
    }
}

/// RAII guard for an in-progress span; records the completed [`Span`] when
/// finished (or dropped). Created by [`Span::enter`] and friends.
#[derive(Debug)]
pub struct SpanGuard {
    /// `Some` only when this guard will record on finish.
    collector: Option<Arc<Collector>>,
    name: &'static str,
    id: SpanId,
    parent: SpanId,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanGuard {
    fn new(
        collector: Option<&Arc<Collector>>,
        name: &'static str,
        parent: SpanId,
        start: Instant,
    ) -> SpanGuard {
        // The enabled check comes before any allocation or id assignment: a
        // disabled collector leaves only the Instant read on the hot path.
        let collector = collector.filter(|c| c.enabled()).map(Arc::clone);
        let id = collector
            .as_ref()
            .map_or(SpanId::NONE, |c| c.next_span_id());
        SpanGuard {
            collector,
            name,
            id,
            parent,
            start,
            attrs: Vec::new(),
        }
    }

    /// This span's id, for children to name as their parent.
    /// [`SpanId::NONE`] when the guard is not recording.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// True when finishing this guard will store a record.
    pub fn recording(&self) -> bool {
        self.collector.is_some()
    }

    /// Attaches a numeric attribute (no-op when not recording).
    pub fn set_attr(&mut self, key: &'static str, value: u64) {
        if self.collector.is_some() {
            self.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a static string tag (no-op when not recording).
    pub fn set_tag(&mut self, key: &'static str, value: &'static str) {
        if self.collector.is_some() {
            self.attrs.push((key, AttrValue::Str(value)));
        }
    }

    /// Ends the span, records it (when recording) and returns the measured
    /// wall-clock duration — so callers can use the span as their single
    /// timing source even with telemetry disabled.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
        elapsed
    }

    fn record(&mut self, elapsed: Duration) {
        let Some(collector) = self.collector.take() else {
            return;
        };
        collector.record_span_raw(Span {
            id: self.id,
            parent: self.parent,
            name: self.name,
            thread: current_thread_id(),
            start_micros: collector.micros_since_epoch(self.start),
            duration_micros: elapsed.as_micros() as u64,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.record(elapsed);
    }
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's telemetry id: process-unique, assigned in first-use
/// order (stable within a thread's lifetime, unlike OS tids it never
/// recycles mid-run).
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// Thread-safe store for completed spans plus a metrics [`Registry`].
///
/// Cheap to share (`Arc<Collector>`); every recording path first checks the
/// `enabled` atomic, so a disabled collector can be wired through the whole
/// stack at near-zero cost. Completed spans live in a bounded ring buffer
/// (oldest evicted first) sized at construction.
pub struct Collector {
    enabled: AtomicBool,
    /// Record one in `sampling` sampled spans; 0 disables sampled spans.
    sampling: AtomicUsize,
    sample_counter: AtomicUsize,
    next_id: AtomicU64,
    epoch: Instant,
    capacity: usize,
    spans: Mutex<VecDeque<Span>>,
    registry: Registry,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// An enabled collector holding up to [`DEFAULT_SPAN_CAPACITY`] completed
    /// spans (sampled spans off until [`Collector::set_sampling`]).
    pub fn new() -> Collector {
        Collector::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled collector bounded at `capacity` completed spans
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> Collector {
        Collector {
            enabled: AtomicBool::new(true),
            sampling: AtomicUsize::new(0),
            sample_counter: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            spans: Mutex::new(VecDeque::new()),
            registry: Registry::new(),
        }
    }

    /// A collector that records nothing until [`Collector::set_enabled`].
    pub fn disabled() -> Collector {
        let collector = Collector::new();
        collector.enabled.store(false, Ordering::Relaxed);
        collector
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Off is near-free for every instrumentation
    /// point: one relaxed load, no allocation.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Sets the rate for [`Span::enter_sampled`] spans: record one in
    /// `every` (0, the default, disables them entirely). High-frequency
    /// instrumentation points (per-worker amplitude sweeps) use sampled
    /// spans so full tracing does not perturb the kernels it measures.
    pub fn set_sampling(&self, every: usize) {
        self.sampling.store(every, Ordering::Relaxed);
    }

    /// True when the next sampled span should record.
    pub(crate) fn sample(&self) -> bool {
        let every = self.sampling.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        self.sample_counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }

    /// Bound of the completed-span ring buffer.
    pub fn span_capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn next_span_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Microseconds from the collector's creation to `at` (0 for instants
    /// before the epoch).
    pub fn micros_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Stores an already-built record, evicting the oldest when full. This is
    /// the deterministic back door: tests (and adapters timing intervals
    /// externally) construct [`Span`]s with fixed values and push them here.
    /// The id is taken as given, so synthesized spans should use ids from
    /// the collector's own sequence (the ones [`Span::enter`] hands out) to
    /// stay unique.
    pub fn record_span_raw(&self, span: Span) {
        if !self.enabled() {
            return;
        }
        let mut spans = self.spans.lock();
        while spans.len() >= self.capacity {
            spans.pop_front();
        }
        spans.push_back(span);
    }

    /// A copy of every completed span, oldest first.
    pub fn completed_spans(&self) -> Vec<Span> {
        self.spans.lock().iter().cloned().collect()
    }

    /// Removes and returns every completed span, oldest first.
    pub fn drain_spans(&self) -> Vec<Span> {
        self.spans.lock().drain(..).collect()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Shorthand for [`Registry::counter`].
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Shorthand for [`Registry::gauge`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Shorthand for [`Registry::histogram`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.enabled())
            .field("spans", &self.spans.lock().len())
            .field("capacity", &self.capacity)
            .finish()
    }
}
