//! Property-based tests for the NuOp decomposition pass.

use gates::{standard, GateType};
use nuop_core::{decompose_fixed, DecomposeConfig, Template};
use proptest::prelude::*;
use qmath::hilbert_schmidt_fidelity;

fn quick() -> DecomposeConfig {
    DecomposeConfig {
        restarts: 2,
        max_layers: 3,
        ..DecomposeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn template_evaluation_is_unitary_for_random_parameters(
        layers in 0usize..3,
        seed_angles in proptest::collection::vec(-3.0f64..3.0, 24),
    ) {
        let t = Template::fixed(*GateType::syc().unitary(), layers);
        let params: Vec<f64> = seed_angles.into_iter().take(t.parameter_count()).collect();
        if params.len() == t.parameter_count() {
            prop_assert!(t.unitary(&params).is_unitary(1e-9));
        }
    }

    #[test]
    fn zz_interactions_need_at_most_two_cz(beta in 0.05f64..1.5) {
        let d = decompose_fixed(&standard::zz_interaction(beta), &GateType::cz(), &quick());
        prop_assert!(d.layers <= 2, "beta={beta}, layers={}", d.layers);
        prop_assert!(d.decomposition_fidelity > 0.999);
    }

    #[test]
    fn cphase_needs_at_most_two_of_any_cphase_like_gate(phi in 0.1f64..3.0) {
        let d = decompose_fixed(&standard::cphase(phi), &GateType::cz(), &quick());
        prop_assert!(d.layers <= 2);
        // Emitted circuit reproduces the target.
        let realized = d.to_circuit(2, 0, 1).unitary();
        prop_assert!(hilbert_schmidt_fidelity(&realized, &standard::cphase(phi)) > 0.999);
    }

    #[test]
    fn hopping_terms_need_at_most_two_sqrt_iswap(t in 0.1f64..0.8) {
        let target = standard::xx_plus_yy_interaction(t);
        let d = decompose_fixed(&target, &GateType::sqrt_iswap(), &quick());
        prop_assert!(d.layers <= 2, "t={t}, layers={}", d.layers);
        prop_assert!(d.decomposition_fidelity > 0.999);
    }

    #[test]
    fn decomposition_gate_count_never_exceeds_the_layer_budget(theta in 0.0f64..1.5, phi in 0.0f64..3.1) {
        let gate = GateType::from_fsim("probe", theta, phi);
        let d = decompose_fixed(&standard::cnot(), &gate, &quick());
        prop_assert!(d.layers <= 3);
        prop_assert_eq!(d.to_operations(0, 1).iter().filter(|o| o.is_two_qubit_unitary()).count(), d.layers);
    }
}
