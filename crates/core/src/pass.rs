//! The circuit-level NuOp pass (paper §V, last paragraph).
//!
//! [`NuOpPass`] walks a routed circuit and replaces every two-qubit application
//! unitary with its best decomposition under the target instruction set:
//!
//! * discrete sets use noise-adaptive selection across their gate types,
//! * continuous sets (`FullXY` / `FullfSim`) optimize the family angles per
//!   layer.
//!
//! Decompositions of distinct operations are independent, so the pass can run
//! them in parallel across worker threads, mirroring the paper's parallel
//! implementation ("with 32 threads, decomposing a circuit with 1000 2-qubit
//! gates ... requires around 220 seconds").

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use circuit::{Circuit, OpKind, Operation, QubitId};
use gates::{GateSetKind, InstructionSet};
use parking_lot::Mutex;
use qmath::{CMatrix, Mat4};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheKey, DecompositionCache};
use crate::decompose::{decompose_continuous, DecomposeConfig, Decomposition};
use crate::noise_adaptive::{decompose_with_gate_choice, HardwareGate};

/// Supplies calibrated hardware fidelities to the pass.
///
/// Implementations are typically backed by a device model's calibration table
/// (see the `device` crate). Gate types are identified by name so that
/// continuous families (which have no fixed `GateType`) can also be priced.
pub trait HardwareFidelityProvider: Sync {
    /// Calibrated fidelity of gate type `gate_name` on the physical pair
    /// `(q0, q1)`.
    fn two_qubit_fidelity(&self, q0: QubitId, q1: QubitId, gate_name: &str) -> f64;

    /// Calibrated single-qubit gate fidelity on qubit `q` (defaults to 1.0,
    /// matching the paper's focus on two-qubit errors).
    fn one_qubit_fidelity(&self, _q: QubitId) -> f64 {
        1.0
    }
}

/// A provider that reports the same fidelity for every pair and gate type.
/// Useful for tests and for the "no noise variation" ablation (Fig. 10e).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformFidelity(pub f64);

impl HardwareFidelityProvider for UniformFidelity {
    fn two_qubit_fidelity(&self, _q0: QubitId, _q1: QubitId, _gate_name: &str) -> f64 {
        self.0
    }
}

/// Statistics gathered while running the pass over a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PassStats {
    /// Two-qubit application operations in the input circuit.
    pub input_two_qubit_gates: usize,
    /// Two-qubit hardware gates in the output circuit.
    pub output_two_qubit_gates: usize,
    /// Mean decomposition fidelity `F_d` across operations.
    pub mean_decomposition_fidelity: f64,
    /// Mean overall fidelity `F_u = F_d · F_h` across operations.
    pub mean_overall_fidelity: f64,
    /// Estimated whole-circuit fidelity: the product of per-operation `F_u`.
    pub estimated_circuit_fidelity: f64,
    /// How many operations chose each hardware gate type.
    pub gate_type_histogram: BTreeMap<String, usize>,
    /// Operations served from the decomposition cache.
    pub cache_hits: usize,
    /// Operations that required a fresh numerical optimization.
    pub cache_misses: usize,
}

/// The NuOp circuit pass.
pub struct NuOpPass {
    instruction_set: InstructionSet,
    config: DecomposeConfig,
    threads: usize,
    cache: Arc<DecompositionCache>,
}

impl NuOpPass {
    /// Creates a pass targeting `instruction_set` with the given decomposition
    /// configuration and a private decomposition cache. Use
    /// [`NuOpPass::with_cache`] to share a cache across passes (and therefore
    /// across compiles).
    pub fn new(instruction_set: InstructionSet, config: DecomposeConfig) -> Self {
        NuOpPass {
            instruction_set,
            config,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache: Arc::new(DecompositionCache::new()),
        }
    }

    /// Sets the number of worker threads (1 disables parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the pass's private cache with a shared one, so repeated
    /// decompositions of the same unitary across circuits (or across passes)
    /// are served without re-optimizing.
    pub fn with_cache(mut self, cache: Arc<DecompositionCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The instruction set this pass targets.
    pub fn instruction_set(&self) -> &InstructionSet {
        &self.instruction_set
    }

    /// The decomposition cache this pass consults.
    pub fn cache(&self) -> &DecompositionCache {
        &self.cache
    }

    /// Decomposes a single two-qubit unitary for the physical pair `(q0, q1)`,
    /// returning the decomposition and the chosen gate-type name.
    pub fn decompose_operation(
        &self,
        target: &CMatrix,
        q0: QubitId,
        q1: QubitId,
        provider: &dyn HardwareFidelityProvider,
    ) -> (Decomposition, String) {
        let (decomposition, gate, _hit) = self.decompose_cached(target, q0, q1, provider);
        (decomposition, gate)
    }

    /// Cache-aware decomposition; the flag reports whether the result was a
    /// cache hit. Concurrent workers missing on the same key coordinate so
    /// the numerical optimization runs once (see
    /// [`DecompositionCache::get_or_insert_with`]).
    fn decompose_cached(
        &self,
        target: &CMatrix,
        q0: QubitId,
        q1: QubitId,
        provider: &dyn HardwareFidelityProvider,
    ) -> (Decomposition, String, bool) {
        let key = CacheKey::new(
            target,
            &self.instruction_set,
            q0,
            q1,
            provider,
            &self.config,
        );
        let ((d, g), hit) = self
            .cache
            .get_or_insert_with(&key, || self.decompose_uncached(target, q0, q1, provider));
        (d, g, hit)
    }

    /// The actual numerical optimization behind a cache miss. The heap-held
    /// operation matrix is converted to the stack representation exactly once
    /// here, before the optimizer's inner loop runs.
    fn decompose_uncached(
        &self,
        target: &CMatrix,
        q0: QubitId,
        q1: QubitId,
        provider: &dyn HardwareFidelityProvider,
    ) -> (Decomposition, String) {
        let target = &Mat4::try_from(target).expect("two-qubit operations carry a 4x4 matrix");
        match self.instruction_set.kind() {
            GateSetKind::Discrete(types) => {
                let candidates: Vec<HardwareGate> = types
                    .iter()
                    .map(|t| {
                        HardwareGate::new(
                            t.clone(),
                            provider
                                .two_qubit_fidelity(q0, q1, t.name())
                                .clamp(0.0, 1.0),
                        )
                    })
                    .collect();
                let choice = decompose_with_gate_choice(target, &candidates, &self.config);
                (choice.decomposition, choice.chosen_gate)
            }
            GateSetKind::Continuous(family) => {
                let mut d = decompose_continuous(target, *family, &self.config);
                // Price the continuous decomposition with the provider's
                // fidelity for the family name (device models fall back to
                // their mean two-qubit fidelity for unknown names).
                let f2q = provider
                    .two_qubit_fidelity(q0, q1, family.name())
                    .clamp(0.0, 1.0);
                d.hardware_fidelity = f2q.powi(d.layers as i32);
                d.overall_fidelity = d.decomposition_fidelity * d.hardware_fidelity;
                let label = family.name().to_string();
                (d, label)
            }
        }
    }

    /// Runs the pass over a circuit whose two-qubit operations act on
    /// *physical* qubits (i.e. after routing). Single-qubit operations,
    /// measurements and barriers are copied through unchanged.
    pub fn run(
        &self,
        circuit: &Circuit,
        provider: &dyn HardwareFidelityProvider,
    ) -> (Circuit, PassStats) {
        // Collect the two-qubit operations that need decomposition.
        let work: Vec<(usize, &Operation)> = circuit
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_two_qubit_unitary())
            .collect();

        let results: Vec<(usize, Decomposition, String, bool)> =
            if self.threads <= 1 || work.len() <= 1 {
                work.iter()
                    .map(|(idx, op)| {
                        let (d, g, hit) = self.decompose_cached(
                            op.matrix().expect("two-qubit unitary has a matrix"),
                            op.qubits()[0],
                            op.qubits()[1],
                            provider,
                        );
                        (*idx, d, g, hit)
                    })
                    .collect()
            } else {
                self.run_parallel(&work, provider)
            };

        let mut by_index: HashMap<usize, (Decomposition, String, bool)> = results
            .into_iter()
            .map(|(idx, d, g, hit)| (idx, (d, g, hit)))
            .collect();

        let mut out = Circuit::new(circuit.num_qubits());
        let mut stats = PassStats {
            estimated_circuit_fidelity: 1.0,
            ..PassStats::default()
        };
        let mut fd_sum = 0.0;
        let mut fu_sum = 0.0;
        for (idx, op) in circuit.iter().enumerate() {
            match op.kind() {
                OpKind::Unitary2Q { .. } => {
                    let (d, gate_name, hit) = by_index.remove(&idx).expect("decomposed above");
                    stats.input_two_qubit_gates += 1;
                    if hit {
                        stats.cache_hits += 1;
                    } else {
                        stats.cache_misses += 1;
                    }
                    stats.output_two_qubit_gates += d.layers;
                    fd_sum += d.decomposition_fidelity;
                    fu_sum += d.overall_fidelity;
                    stats.estimated_circuit_fidelity *= d.overall_fidelity;
                    *stats.gate_type_histogram.entry(gate_name).or_insert(0) += d.layers;
                    for new_op in d.to_operations(op.qubits()[0], op.qubits()[1]) {
                        out.push(new_op);
                    }
                }
                _ => out.push(op.clone()),
            }
        }
        if stats.input_two_qubit_gates > 0 {
            stats.mean_decomposition_fidelity = fd_sum / stats.input_two_qubit_gates as f64;
            stats.mean_overall_fidelity = fu_sum / stats.input_two_qubit_gates as f64;
        } else {
            stats.mean_decomposition_fidelity = 1.0;
            stats.mean_overall_fidelity = 1.0;
        }
        (out, stats)
    }

    fn run_parallel(
        &self,
        work: &[(usize, &Operation)],
        provider: &dyn HardwareFidelityProvider,
    ) -> Vec<(usize, Decomposition, String, bool)> {
        let chunk = work.len().div_ceil(self.threads);
        let results = Mutex::new(Vec::with_capacity(work.len()));
        let results_ref = &results;
        std::thread::scope(|scope| {
            for piece in work.chunks(chunk.max(1)) {
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(piece.len());
                    for (idx, op) in piece {
                        let (d, g, hit) = self.decompose_cached(
                            op.matrix().expect("two-qubit unitary has a matrix"),
                            op.qubits()[0],
                            op.qubits()[1],
                            provider,
                        );
                        local.push((*idx, d, g, hit));
                    }
                    results_ref.lock().extend(local);
                });
            }
        });
        results.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::{haar_random_su4, RngSeed};

    fn quick_config() -> DecomposeConfig {
        DecomposeConfig {
            restarts: 3,
            max_layers: 4,
            ..DecomposeConfig::default()
        }
    }

    fn small_qv_circuit(seed: u64) -> Circuit {
        let mut rng = RngSeed(seed).rng();
        let mut c = Circuit::new(3);
        c.push(Operation::unitary2q("SU4", haar_random_su4(&mut rng), 0, 1));
        c.push(Operation::unitary2q("SU4", haar_random_su4(&mut rng), 1, 2));
        c
    }

    #[test]
    fn pass_replaces_two_qubit_ops_with_hardware_gates() {
        let pass = NuOpPass::new(InstructionSet::s(3), quick_config()).with_threads(1);
        // Seed 3: both sampled SU(4)s sit well inside the Weyl chamber, so the
        // noise-adaptive choice never trades a layer away (seed 1's second
        // sample lies near the 2-CZ locus and legitimately decomposes shorter).
        let circ = small_qv_circuit(3);
        let (out, stats) = pass.run(&circ, &UniformFidelity(0.999));
        assert_eq!(stats.input_two_qubit_gates, 2);
        // Each SU(4) costs 3 CZs with a high-fidelity device.
        assert_eq!(stats.output_two_qubit_gates, 6);
        assert_eq!(out.two_qubit_gate_count(), 6);
        // All emitted two-qubit gates are the CZ type.
        for (label, count) in out.two_qubit_counts_by_label() {
            assert_eq!(label, "CZ");
            assert_eq!(count, 6);
        }
        assert!(stats.mean_decomposition_fidelity > 0.9999);
        assert!(stats.estimated_circuit_fidelity > 0.98);
    }

    #[test]
    fn pass_preserves_circuit_semantics_up_to_phase() {
        let pass = NuOpPass::new(InstructionSet::s(3), quick_config()).with_threads(1);
        let circ = small_qv_circuit(2);
        let (out, _) = pass.run(&circ, &UniformFidelity(1.0));
        let original = circ.unitary();
        let compiled = out.unitary();
        let fidelity = qmath::hilbert_schmidt_fidelity(&original, &compiled);
        assert!(fidelity > 0.999, "fidelity = {fidelity}");
    }

    #[test]
    fn multi_type_set_reduces_gate_count_for_mixed_workload() {
        // A circuit containing a ZZ interaction (cheap with CZ) and an
        // XX+YY interaction (cheap with iSWAP-family gates): the multi-type set
        // should use no more gates than either single-type set.
        let mut circ = Circuit::new(2);
        circ.push(Operation::zz(0, 1, 0.5));
        circ.push(Operation::xx_plus_yy(0, 1, 0.7));

        let provider = UniformFidelity(0.995);
        let single_cz = NuOpPass::new(InstructionSet::s(3), quick_config()).with_threads(1);
        let single_iswap = NuOpPass::new(InstructionSet::s(4), quick_config()).with_threads(1);
        let multi = NuOpPass::new(InstructionSet::r(1), quick_config()).with_threads(1);

        let (_, s_cz) = single_cz.run(&circ, &provider);
        let (_, s_is) = single_iswap.run(&circ, &provider);
        let (_, s_multi) = multi.run(&circ, &provider);
        assert!(s_multi.output_two_qubit_gates <= s_cz.output_two_qubit_gates);
        assert!(s_multi.output_two_qubit_gates <= s_is.output_two_qubit_gates);
        assert!(s_multi.estimated_circuit_fidelity >= s_cz.estimated_circuit_fidelity - 1e-9);
    }

    #[test]
    fn measurements_and_1q_gates_pass_through() {
        let pass = NuOpPass::new(InstructionSet::s(3), quick_config()).with_threads(1);
        let mut circ = Circuit::new(2);
        circ.push(Operation::h(0));
        circ.push(Operation::cz(0, 1));
        circ.measure_all();
        let (out, stats) = pass.run(&circ, &UniformFidelity(0.999));
        assert!(out.has_measurements());
        assert!(out.one_qubit_gate_count() >= 1);
        assert_eq!(stats.input_two_qubit_gates, 1);
        assert_eq!(stats.output_two_qubit_gates, 1);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let circ = small_qv_circuit(3);
        let serial = NuOpPass::new(InstructionSet::g(1), quick_config()).with_threads(1);
        let parallel = NuOpPass::new(InstructionSet::g(1), quick_config()).with_threads(4);
        let (out_s, stats_s) = serial.run(&circ, &UniformFidelity(0.994));
        let (out_p, stats_p) = parallel.run(&circ, &UniformFidelity(0.994));
        assert_eq!(
            stats_s.output_two_qubit_gates,
            stats_p.output_two_qubit_gates
        );
        assert_eq!(out_s.two_qubit_gate_count(), out_p.two_qubit_gate_count());
    }

    #[test]
    fn cache_hits_for_repeated_operations() {
        let pass = NuOpPass::new(InstructionSet::s(3), quick_config()).with_threads(1);
        let mut circ = Circuit::new(2);
        // The same ZZ interaction three times: only one real decomposition.
        for _ in 0..3 {
            circ.push(Operation::zz(0, 1, 0.25));
        }
        let (out, stats) = pass.run(&circ, &UniformFidelity(0.999));
        assert_eq!(stats.input_two_qubit_gates, 3);
        assert_eq!(out.two_qubit_gate_count(), stats.output_two_qubit_gates);
        assert_eq!(pass.cache().len(), 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2);
    }

    #[test]
    fn shared_cache_is_reused_across_passes() {
        let cache = Arc::new(DecompositionCache::new());
        let circ = small_qv_circuit(3);
        let first = NuOpPass::new(InstructionSet::s(3), quick_config())
            .with_threads(1)
            .with_cache(Arc::clone(&cache));
        let (_, stats_first) = first.run(&circ, &UniformFidelity(0.999));
        assert_eq!(stats_first.cache_hits, 0);
        assert_eq!(stats_first.cache_misses, 2);

        // A *different* pass instance targeting the same set and fed the same
        // cache serves every operation without re-optimizing.
        let second = NuOpPass::new(InstructionSet::s(3), quick_config())
            .with_threads(1)
            .with_cache(Arc::clone(&cache));
        let (_, stats_second) = second.run(&circ, &UniformFidelity(0.999));
        assert_eq!(stats_second.cache_hits, 2);
        assert_eq!(stats_second.cache_misses, 0);
        assert_eq!(
            stats_first.output_two_qubit_gates,
            stats_second.output_two_qubit_gates
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn continuous_set_uses_fewer_gates_than_single_type() {
        let mut rng = RngSeed(9).rng();
        let target = haar_random_su4(&mut rng);
        let mut circ = Circuit::new(2);
        circ.push(Operation::unitary2q("SU4", target, 0, 1));
        let provider = UniformFidelity(0.995);
        let cfg = quick_config();
        let continuous = NuOpPass::new(InstructionSet::full_fsim(), cfg.clone()).with_threads(1);
        let single = NuOpPass::new(InstructionSet::s(3), cfg).with_threads(1);
        let (_, c_stats) = continuous.run(&circ, &provider);
        let (_, s_stats) = single.run(&circ, &provider);
        assert!(c_stats.output_two_qubit_gates <= s_stats.output_two_qubit_gates);
        assert!(c_stats.output_two_qubit_gates >= 1);
    }

    #[test]
    fn stats_for_trivial_circuit() {
        let pass = NuOpPass::new(InstructionSet::s(1), quick_config());
        let mut circ = Circuit::new(2);
        circ.push(Operation::h(0));
        let (_, stats) = pass.run(&circ, &UniformFidelity(0.99));
        assert_eq!(stats.input_two_qubit_gates, 0);
        assert_eq!(stats.mean_overall_fidelity, 1.0);
        assert_eq!(stats.estimated_circuit_fidelity, 1.0);
    }

    #[test]
    fn zz_interaction_is_direct_with_matching_cphase_type() {
        // CZ can express a ZZ(β) only with 2 applications, but a single layer
        // suffices when the target is CZ itself; check the histogram is kept.
        let pass = NuOpPass::new(InstructionSet::s(3), quick_config()).with_threads(1);
        let mut circ = Circuit::new(2);
        circ.push(Operation::cz(0, 1));
        let (_, stats) = pass.run(&circ, &UniformFidelity(0.999));
        assert_eq!(stats.gate_type_histogram.get("CZ"), Some(&1));
        let unused = standard::swap();
        assert_eq!(unused.dim(), 4);
    }
}
