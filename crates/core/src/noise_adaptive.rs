//! Noise-adaptive selection across gate types (paper §V.B, Fig. 5).
//!
//! When an instruction set exposes several calibrated gate types on a qubit
//! pair, NuOp decomposes the application unitary with each and keeps the one
//! with the highest *overall* fidelity `F_u = F_d · F_h`. Because calibrated
//! fidelities vary across qubit pairs (Fig. 3), the winning type can differ
//! from pair to pair — this is the noise adaptivity the paper identifies as a
//! key benefit of multi-type instruction sets.

use gates::GateType;
use qmath::Mat4;
use serde::{Deserialize, Serialize};

use crate::decompose::{decompose_approx, DecomposeConfig, Decomposition};

/// A hardware gate type together with its calibrated fidelity on the qubit
/// pair being compiled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareGate {
    /// The gate type.
    pub gate: GateType,
    /// Calibrated two-qubit fidelity of this type on this qubit pair.
    pub fidelity: f64,
}

impl HardwareGate {
    /// Convenience constructor.
    pub fn new(gate: GateType, fidelity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fidelity),
            "fidelity must lie in [0, 1]"
        );
        HardwareGate { gate, fidelity }
    }
}

/// The outcome of noise-adaptive gate-type selection for one operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateChoice {
    /// Index into the candidate slice that won.
    pub chosen_index: usize,
    /// Name of the winning gate type.
    pub chosen_gate: String,
    /// The winning decomposition.
    pub decomposition: Decomposition,
    /// Overall fidelity `F_u` of every candidate, in input order (useful for
    /// reporting and for the Fig. 5 style comparisons).
    pub candidate_fidelities: Vec<f64>,
}

/// Decomposes `target` with every candidate gate type and returns the one with
/// the best overall fidelity `F_u` (ties broken toward fewer two-qubit gates,
/// then earlier candidates).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn decompose_with_gate_choice(
    target: &Mat4,
    candidates: &[HardwareGate],
    config: &DecomposeConfig,
) -> GateChoice {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate gate type"
    );
    let mut decompositions: Vec<Decomposition> = Vec::with_capacity(candidates.len());
    for hw in candidates {
        decompositions.push(decompose_approx(target, &hw.gate, hw.fidelity, config));
    }
    let candidate_fidelities: Vec<f64> =
        decompositions.iter().map(|d| d.overall_fidelity).collect();
    let mut best = 0usize;
    for i in 1..decompositions.len() {
        let better = decompositions[i].overall_fidelity
            > decompositions[best].overall_fidelity + 1e-12
            || ((decompositions[i].overall_fidelity - decompositions[best].overall_fidelity).abs()
                <= 1e-12
                && decompositions[i].layers < decompositions[best].layers);
        if better {
            best = i;
        }
    }
    GateChoice {
        chosen_index: best,
        chosen_gate: candidates[best].gate.name().to_string(),
        decomposition: decompositions.swap_remove(best),
        candidate_fidelities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::{haar_random_su4, RngSeed};

    fn quick_config() -> DecomposeConfig {
        DecomposeConfig {
            restarts: 3,
            max_layers: 4,
            ..DecomposeConfig::default()
        }
    }

    #[test]
    fn picks_higher_fidelity_gate_when_expressivity_is_equal() {
        // Both CZ and iSWAP need 2 layers for a ZZ-vs-swap-ish target; give CZ
        // much better hardware fidelity and it must win.
        let target = standard::zz_interaction(0.4);
        let candidates = vec![
            HardwareGate::new(GateType::cz(), 0.99),
            HardwareGate::new(GateType::iswap(), 0.90),
        ];
        let choice = decompose_with_gate_choice(&target, &candidates, &quick_config());
        assert_eq!(choice.chosen_gate, "CZ");
        assert_eq!(choice.candidate_fidelities.len(), 2);
        assert!(choice.candidate_fidelities[0] > choice.candidate_fidelities[1]);
    }

    #[test]
    fn picks_more_expressive_gate_when_fidelities_are_equal() {
        // A ZZ interaction needs 1 CZ-family gate if the CPHASE angle matches,
        // but here we compare CZ (2 layers for generic SU(4)) against... use a
        // QV unitary: sqrt_iSWAP typically needs 3 layers, CZ needs 3 — instead
        // compare CZ vs SWAP for a ZZ target: SWAP cannot express it cheaply.
        let target = standard::zz_interaction(0.4);
        let candidates = vec![
            HardwareGate::new(GateType::swap(), 0.99),
            HardwareGate::new(GateType::cz(), 0.99),
        ];
        let choice = decompose_with_gate_choice(&target, &candidates, &quick_config());
        assert_eq!(choice.chosen_gate, "CZ");
    }

    #[test]
    fn fig5_style_pairwise_adaptivity() {
        // Mirror of Fig. 5: the same SU(4) operation compiled on two qubit
        // pairs with opposite calibration (CZ good on one, iSWAP good on the
        // other) should pick different gate types.
        let mut rng = RngSeed(77).rng();
        let target = haar_random_su4(&mut rng);
        let pair_a = vec![
            HardwareGate::new(GateType::cz(), 0.94),
            HardwareGate::new(GateType::iswap(), 0.70),
        ];
        let pair_b = vec![
            HardwareGate::new(GateType::cz(), 0.70),
            HardwareGate::new(GateType::iswap(), 0.94),
        ];
        let choice_a = decompose_with_gate_choice(&target, &pair_a, &quick_config());
        let choice_b = decompose_with_gate_choice(&target, &pair_b, &quick_config());
        assert_eq!(choice_a.chosen_gate, "CZ");
        assert_eq!(choice_b.chosen_gate, "iSWAP");
    }

    #[test]
    fn single_candidate_is_always_chosen() {
        let target = standard::cnot();
        let candidates = vec![HardwareGate::new(GateType::cz(), 0.97)];
        let choice = decompose_with_gate_choice(&target, &candidates, &quick_config());
        assert_eq!(choice.chosen_index, 0);
        assert_eq!(choice.decomposition.layers, 1);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let _ = decompose_with_gate_choice(&standard::cnot(), &[], &quick_config());
    }

    #[test]
    #[should_panic(expected = "fidelity must lie in")]
    fn invalid_fidelity_panics() {
        let _ = HardwareGate::new(GateType::cz(), 1.5);
    }
}
