//! Sharded decomposition cache shared across compiles.
//!
//! Decomposing one SU(4) costs thousands of objective evaluations, so the
//! pass memoizes results per (target unitary, instruction set, pair
//! fidelities). The cache is shared: a `compiler::Compiler` hands the same
//! [`DecompositionCache`] to every [`NuOpPass`](crate::NuOpPass) it creates,
//! so instruction-set sweeps over the same workloads (the paper's Figs. 9–11
//! compile identical circuits against 21 sets) pay for each distinct
//! decomposition once.
//!
//! Two design points matter at scale:
//!
//! * **Hashed struct keys.** Keys quantize the target matrix to `u64` bit
//!   patterns instead of formatting ~16 complex entries into a `String`,
//!   which removes per-lookup allocation and comparison cost.
//! * **Sharding.** The map is split into [`DEFAULT_SHARDS`] independently
//!   locked shards selected by key hash, so parallel decomposition workers
//!   (and concurrent `compile_batch` circuits) don't serialize on one global
//!   mutex.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};

use circuit::QubitId;
use gates::{GateSetKind, InstructionSet};
use parking_lot::Mutex;
use qmath::MatRef;

use crate::decompose::{DecomposeConfig, Decomposition};
use crate::pass::HardwareFidelityProvider;

/// Number of shards used by [`DecompositionCache::new`].
pub const DEFAULT_SHARDS: usize = 16;

/// Matrix entries are quantized to 9 decimal digits (the granularity the old
/// string keys used); fidelities to 4, matching calibration precision.
const MATRIX_QUANTUM: f64 = 1e9;
const FIDELITY_QUANTUM: f64 = 1e4;

fn quantize(x: f64, scale: f64) -> u64 {
    // Map through i64 so negative values get distinct (two's-complement)
    // bit patterns instead of saturating.
    (x * scale).round() as i64 as u64
}

/// Fingerprint of everything else the decomposition result depends on: the
/// exact [`DecomposeConfig`] (threshold, layer cap, restarts, optimizer
/// settings, seed) and the set's member gate types (two custom discrete sets
/// may share a *name* yet contain different types).
fn config_fingerprint(set: &InstructionSet, config: &DecomposeConfig) -> u64 {
    let mut h = DefaultHasher::new();
    config.fidelity_threshold.to_bits().hash(&mut h);
    config.max_layers.hash(&mut h);
    config.restarts.hash(&mut h);
    config.one_qubit_fidelity.to_bits().hash(&mut h);
    config.seed.hash(&mut h);
    config.bfgs.max_iters.hash(&mut h);
    config.bfgs.grad_tol.to_bits().hash(&mut h);
    config.bfgs.f_tol.to_bits().hash(&mut h);
    config.bfgs.fd_step.to_bits().hash(&mut h);
    config.bfgs.c1.to_bits().hash(&mut h);
    config.bfgs.c2.to_bits().hash(&mut h);
    config.bfgs.max_line_search_steps.hash(&mut h);
    for t in set.gate_types() {
        t.name().hash(&mut h);
    }
    h.finish()
}

/// Cache key: quantized target-matrix bits, the instruction-set name, the
/// quantized calibrated fidelities of the physical pair, and a fingerprint of
/// the decomposition configuration — everything the noise-adaptive choice
/// depends on, so unrelated compilers can safely share one cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    set_name: String,
    matrix_bits: [u64; 32],
    fidelity_bits: Vec<u64>,
    config_bits: u64,
}

impl CacheKey {
    /// Builds the key for decomposing `target` on the physical pair
    /// `(q0, q1)` under `set` with `config`, with fidelities supplied by
    /// `provider`. Accepts either matrix representation (`CMatrix` from a
    /// circuit operation, `Mat4` from the synthesis path).
    ///
    /// # Panics
    /// Panics if `target` is not 4×4.
    pub fn new<M: MatRef + ?Sized>(
        target: &M,
        set: &InstructionSet,
        q0: QubitId,
        q1: QubitId,
        provider: &dyn HardwareFidelityProvider,
        config: &DecomposeConfig,
    ) -> CacheKey {
        assert_eq!(target.nrows(), 4, "cache keys are built for 4x4 targets");
        assert_eq!(target.ncols(), 4, "cache keys are built for 4x4 targets");
        let mut matrix_bits = [0u64; 32];
        for i in 0..16 {
            let z = target.at(i / 4, i % 4);
            matrix_bits[2 * i] = quantize(z.re, MATRIX_QUANTUM);
            matrix_bits[2 * i + 1] = quantize(z.im, MATRIX_QUANTUM);
        }
        let fidelity_bits = match set.kind() {
            GateSetKind::Discrete(types) => types
                .iter()
                .map(|t| {
                    quantize(
                        provider.two_qubit_fidelity(q0, q1, t.name()),
                        FIDELITY_QUANTUM,
                    )
                })
                .collect(),
            GateSetKind::Continuous(family) => vec![quantize(
                provider.two_qubit_fidelity(q0, q1, family.name()),
                FIDELITY_QUANTUM,
            )],
        };
        CacheKey {
            set_name: set.name().to_string(),
            matrix_bits,
            fidelity_bits,
            config_bits: config_fingerprint(set, config),
        }
    }

    fn shard_index(&self, shards: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % shards
    }
}

/// A cached decomposition: the result plus the chosen gate-type label.
pub type CachedDecomposition = (Decomposition, String);

/// One independently locked shard: the memo map plus FIFO insertion order for
/// eviction when the cache is capacity-bounded.
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, CachedDecomposition>,
    /// Insertion order; only maintained when a capacity bound is set.
    order: VecDeque<CacheKey>,
}

/// A sharded, thread-safe memo of two-qubit decompositions.
///
/// Cheap to share: wrap it in an [`std::sync::Arc`] and hand clones to every
/// pass that should reuse results. Hit/miss counters are global to the cache
/// and monotonically increasing.
///
/// By default the cache grows without bound — fine for one-shot experiment
/// sweeps, wrong for long-running compile services. Build with
/// [`DecompositionCache::with_capacity`] (or
/// `compiler`'s `CompilerBuilder::cache_capacity`) to cap the entry count;
/// when a shard is full, its oldest entry is evicted first-in-first-out.
pub struct DecompositionCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry cap; `None` means unbounded.
    per_shard_capacity: Option<usize>,
    /// Keys currently being computed by some thread; used by
    /// [`DecompositionCache::get_or_insert_with`] so concurrent workers that
    /// miss on the same key wait for one computation instead of racing to
    /// repeat it. Guarded by a std mutex because it pairs with a [`Condvar`].
    in_flight: StdMutex<HashSet<CacheKey>>,
    in_flight_done: Condvar,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    /// Shard-lock acquisitions that found the lock already held.
    contended: AtomicUsize,
    /// Times a caller blocked on another thread's in-flight computation.
    inflight_waits: AtomicUsize,
}

impl Default for DecompositionCache {
    fn default() -> Self {
        DecompositionCache::new()
    }
}

impl DecompositionCache {
    /// Creates a cache with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        DecompositionCache::with_shards(DEFAULT_SHARDS)
    }

    /// Creates a cache with `shards` independently locked shards (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        DecompositionCache {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            per_shard_capacity: None,
            in_flight: StdMutex::new(HashSet::new()),
            in_flight_done: Condvar::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            contended: AtomicUsize::new(0),
            inflight_waits: AtomicUsize::new(0),
        }
    }

    /// Creates a capacity-bounded cache with [`DEFAULT_SHARDS`] shards. The
    /// bound is enforced per shard at `ceil(capacity / shards)` entries
    /// (minimum one), so the effective total — reported by
    /// [`DecompositionCache::capacity`] — can exceed `capacity` by up to
    /// `shards - 1` entries. When a shard is full its oldest entry is
    /// evicted FIFO — a deliberately simple policy: decomposition keys
    /// repeat within a workload sweep, so recency tracking buys little over
    /// insertion order.
    pub fn with_capacity(capacity: usize) -> Self {
        DecompositionCache::with_capacity_and_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a capacity-bounded cache with an explicit shard count.
    pub fn with_capacity_and_shards(capacity: usize, shards: usize) -> Self {
        let mut cache = DecompositionCache::with_shards(shards);
        let per_shard = capacity.div_ceil(cache.shards.len()).max(1);
        cache.per_shard_capacity = Some(per_shard);
        cache
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total entry capacity (`None` = unbounded). The bound is enforced per
    /// shard, so the effective total is `per-shard bound × num_shards()`.
    pub fn capacity(&self) -> Option<usize> {
        self.per_shard_capacity.map(|c| c * self.shards.len())
    }

    /// Locks the shard holding `key`, counting the acquisition as contended
    /// when the lock was already held — the observable that tells an
    /// operator whether more shards would help.
    fn lock_shard(&self, key: &CacheKey) -> parking_lot::MutexGuard<'_, Shard> {
        let shard = &self.shards[key.shard_index(self.shards.len())];
        if let Some(guard) = shard.try_lock() {
            return guard;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        shard.lock()
    }

    fn peek(&self, key: &CacheKey) -> Option<CachedDecomposition> {
        self.lock_shard(key).map.get(key).cloned()
    }

    /// Looks up a decomposition, recording a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<CachedDecomposition> {
        match self.peek(key) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns the cached decomposition for `key`, computing and inserting it
    /// with `compute` on a miss. The boolean is `true` for a cache hit.
    ///
    /// Concurrent callers that miss on the *same* key coordinate through an
    /// in-flight set: exactly one runs `compute`, the rest block until the
    /// result lands and then read it as a hit — so a batch of circuits
    /// sharing unitaries optimizes each distinct decomposition once. Callers
    /// with *different* keys never block each other here (the expensive
    /// computation runs outside all shard locks).
    pub fn get_or_insert_with<F>(&self, key: &CacheKey, compute: F) -> (CachedDecomposition, bool)
    where
        F: FnOnce() -> CachedDecomposition,
    {
        loop {
            if let Some(entry) = self.peek(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (entry, true);
            }
            let guard = self
                .in_flight
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // Re-check under the in-flight lock: the computing thread inserts
            // into the shard *before* clearing its in-flight claim, so a
            // present entry can't be missed from here on.
            if let Some(entry) = self.peek(key) {
                drop(guard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (entry, true);
            }
            let mut guard = guard;
            if guard.insert(key.clone()) {
                drop(guard);
                break; // our claim: compute below
            }
            // Another thread is computing this key; wait for it to finish
            // (spurious wakeups just loop and re-check).
            self.inflight_waits.fetch_add(1, Ordering::Relaxed);
            let _waited = self
                .in_flight_done
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }

        // Clear the claim even if `compute` panics, so waiters can take over
        // instead of hanging.
        struct InFlightClaim<'a> {
            cache: &'a DecompositionCache,
            key: &'a CacheKey,
        }
        impl Drop for InFlightClaim<'_> {
            fn drop(&mut self) {
                self.cache
                    .in_flight
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .remove(self.key);
                self.cache.in_flight_done.notify_all();
            }
        }
        let claim = InFlightClaim { cache: self, key };

        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = compute();
        self.insert(key.clone(), entry.clone());
        drop(claim);
        (entry, false)
    }

    /// Stores a decomposition, evicting the shard's oldest entry first when a
    /// capacity bound is set and the shard is full.
    pub fn insert(&self, key: CacheKey, value: CachedDecomposition) {
        let mut shard = self.lock_shard(&key);
        if let Some(cap) = self.per_shard_capacity {
            if shard.map.insert(key.clone(), value).is_none() {
                shard.order.push_back(key);
                while shard.map.len() > cap {
                    let Some(oldest) = shard.order.pop_front() else {
                        break; // order list exhausted; nothing left to evict
                    };
                    shard.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            shard.map.insert(key, value);
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime capacity evictions.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Shard-lock acquisitions that had to wait behind another holder. High
    /// values relative to hits+misses mean the shard count is too low for
    /// the worker count.
    pub fn contended_locks(&self) -> usize {
        self.contended.load(Ordering::Relaxed)
    }

    /// Times [`DecompositionCache::get_or_insert_with`] blocked on another
    /// thread's in-flight computation of the same key (deduplicated work).
    pub fn inflight_waits(&self) -> usize {
        self.inflight_waits.load(Ordering::Relaxed)
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.order.clear();
        }
    }
}

impl std::fmt::Debug for DecompositionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecompositionCache")
            .field("shards", &self.num_shards())
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .field("contended_locks", &self.contended_locks())
            .field("inflight_waits", &self.inflight_waits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::UniformFidelity;
    use qmath::{haar_random_su4, RngSeed};

    fn sample_key(seed: u64, fidelity: f64) -> CacheKey {
        let mut rng = RngSeed(seed).rng();
        let target = haar_random_su4(&mut rng);
        CacheKey::new(
            &target,
            &InstructionSet::g(2),
            0,
            1,
            &UniformFidelity(fidelity),
            &DecomposeConfig::default(),
        )
    }

    fn dummy_entry() -> CachedDecomposition {
        let template = crate::Template::fixed(gates::standard::cz(), 0);
        let decomposition = Decomposition {
            params: vec![0.0; template.parameter_count()],
            template,
            layers: 0,
            decomposition_fidelity: 1.0,
            hardware_fidelity: 1.0,
            overall_fidelity: 1.0,
            gate_label: "CZ".to_string(),
        };
        (decomposition, "CZ".to_string())
    }

    #[test]
    fn identical_inputs_produce_identical_keys() {
        assert_eq!(sample_key(5, 0.99), sample_key(5, 0.99));
    }

    #[test]
    fn keys_distinguish_matrix_set_fidelity_and_config() {
        let base = sample_key(5, 0.99);
        assert_ne!(base, sample_key(6, 0.99), "different target matrix");
        assert_ne!(base, sample_key(5, 0.95), "different pair fidelity");
        let mut rng = RngSeed(5).rng();
        let target = haar_random_su4(&mut rng);
        let provider = UniformFidelity(0.99);
        let other_set = CacheKey::new(
            &target,
            &InstructionSet::s(1),
            0,
            1,
            &provider,
            &DecomposeConfig::default(),
        );
        assert_ne!(base, other_set, "different instruction set");
        // Same set + target + fidelities but different decomposition options
        // must not share a key, or a shared cache would serve results
        // computed under the wrong config.
        let other_config = CacheKey::new(
            &target,
            &InstructionSet::g(2),
            0,
            1,
            &provider,
            &DecomposeConfig::sweep(),
        );
        assert_ne!(base, other_config, "different decompose config");
    }

    #[test]
    fn same_named_sets_with_different_members_get_distinct_keys() {
        use gates::GateType;
        let mut rng = RngSeed(5).rng();
        let target = haar_random_su4(&mut rng);
        let provider = UniformFidelity(0.99);
        let cfg = DecomposeConfig::default();
        let cz_only = InstructionSet::discrete("custom", vec![GateType::cz()]);
        let swap_only = InstructionSet::discrete("custom", vec![GateType::swap()]);
        assert_ne!(
            CacheKey::new(&target, &cz_only, 0, 1, &provider, &cfg),
            CacheKey::new(&target, &swap_only, 0, 1, &provider, &cfg),
        );
    }

    #[test]
    fn get_or_insert_with_computes_once_across_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = DecompositionCache::with_shards(4);
        let key = sample_key(1, 0.99);
        let computations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (_, _) = cache.get_or_insert_with(&key, || {
                        computations.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window so waiters actually contend.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        dummy_entry()
                    });
                });
            }
        });
        assert_eq!(
            computations.load(Ordering::Relaxed),
            1,
            "only one thread should run the computation"
        );
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_insert_with_hits_existing_entries() {
        let cache = DecompositionCache::new();
        let key = sample_key(2, 0.99);
        let (_, hit) = cache.get_or_insert_with(&key, dummy_entry);
        assert!(!hit);
        let (_, hit) = cache.get_or_insert_with(&key, || panic!("must not recompute"));
        assert!(hit);
    }

    #[test]
    fn contention_counters_stay_zero_without_concurrency() {
        let cache = DecompositionCache::with_shards(4);
        let key = sample_key(9, 0.99);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), dummy_entry());
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.contended_locks(), 0);
        assert_eq!(cache.inflight_waits(), 0);
    }

    #[test]
    fn inflight_waits_count_deduplicated_computations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = DecompositionCache::with_shards(4);
        let key = sample_key(11, 0.99);
        let computations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    cache.get_or_insert_with(&key, || {
                        computations.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        dummy_entry()
                    });
                });
            }
        });
        assert_eq!(computations.load(Ordering::Relaxed), 1);
        // Every thread that lost the claim race waited at least once; threads
        // that arrived after the insert hit directly, so the count is bounded
        // by the loser count but may legitimately be smaller.
        assert!(cache.inflight_waits() <= 16);
    }

    #[test]
    fn fidelity_differences_below_quantum_share_a_key() {
        assert_eq!(sample_key(5, 0.99), sample_key(5, 0.99 + 1e-7));
    }

    #[test]
    fn get_insert_and_counters() {
        let cache = DecompositionCache::with_shards(4);
        let key = sample_key(1, 0.99);
        assert!(cache.get(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(key.clone(), dummy_entry());
        assert!(cache.get(&key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn entries_spread_across_shards() {
        let cache = DecompositionCache::new();
        for seed in 0..64 {
            cache.insert(sample_key(seed, 0.99), dummy_entry());
        }
        assert_eq!(cache.len(), 64);
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.lock().map.is_empty())
            .count();
        assert!(populated > 1, "only {populated} shard(s) populated");
    }

    #[test]
    fn zero_shard_request_clamps_to_one() {
        let cache = DecompositionCache::with_shards(0);
        assert_eq!(cache.num_shards(), 1);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn bounded_cache_evicts_oldest_per_shard() {
        // One shard makes the FIFO order deterministic.
        let cache = DecompositionCache::with_capacity_and_shards(4, 1);
        assert_eq!(cache.capacity(), Some(4));
        let keys: Vec<CacheKey> = (0..6).map(|i| sample_key(i, 0.99)).collect();
        for key in &keys {
            cache.insert(key.clone(), dummy_entry());
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 2);
        // The two oldest keys were evicted; the four newest survive.
        assert!(cache.get(&keys[0]).is_none());
        assert!(cache.get(&keys[1]).is_none());
        for key in &keys[2..] {
            assert!(cache.get(key).is_some());
        }
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = DecompositionCache::with_capacity_and_shards(2, 1);
        let a = sample_key(1, 0.99);
        let b = sample_key(2, 0.99);
        cache.insert(a.clone(), dummy_entry());
        cache.insert(b.clone(), dummy_entry());
        cache.insert(a.clone(), dummy_entry());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_some());
    }

    #[test]
    fn bounded_cache_still_memoizes_through_get_or_insert_with() {
        let cache = DecompositionCache::with_capacity(64);
        let key = sample_key(3, 0.99);
        let (_, hit) = cache.get_or_insert_with(&key, dummy_entry);
        assert!(!hit);
        let (_, hit) = cache.get_or_insert_with(&key, || panic!("must not recompute"));
        assert!(hit);
    }

    #[test]
    fn tiny_capacity_is_clamped_to_one_entry_per_shard() {
        let cache = DecompositionCache::with_capacity_and_shards(0, 4);
        assert_eq!(cache.capacity(), Some(4));
        cache.insert(sample_key(1, 0.99), dummy_entry());
        assert_eq!(cache.len(), 1);
    }
}
