//! Template circuits (paper Fig. 4).
//!
//! A template with `i` layers alternates arbitrary single-qubit rotations with
//! the target hardware two-qubit gate:
//!
//! ```text
//! q0: ─U3──■──U3──■── … ──U3─
//!          │      │
//! q1: ─U3──G──U3──G── … ──U3─
//! ```
//!
//! The free parameters are the `6·(i+1)` single-qubit angles (three per `U3`,
//! two `U3`s per layer boundary) plus, when compiling for a *continuous*
//! family, the family's own angles for each layer (one for XY, two for fSim).

use gates::fsim::ContinuousFamily;
use gates::standard::u3;
use qmath::Mat4;
use serde::{Deserialize, Serialize};

/// The two-qubit gate placed in each template layer.
// The Fixed variant inlines a 4×4 matrix (256 bytes) by design: templates are
// long-lived while their unitary is read in the optimizer inner loop, so the
// variant-size imbalance against the tiny Family tag is a deliberate trade.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TemplateGate {
    /// A fixed hardware gate type with a constant (stack-allocated) unitary.
    Fixed(Mat4),
    /// A continuous family whose per-layer angles are optimization variables.
    Family(ContinuousFamily),
}

/// A NuOp template circuit for a given hardware gate and layer count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Template {
    gate: TemplateGate,
    layers: usize,
}

impl Template {
    /// Creates a template with `layers` applications of the fixed 4×4 `gate`.
    pub fn fixed(gate: Mat4, layers: usize) -> Self {
        Template {
            gate: TemplateGate::Fixed(gate),
            layers,
        }
    }

    /// Creates a template whose two-qubit gates are drawn from a continuous
    /// family, with the family angles free per layer.
    pub fn family(family: ContinuousFamily, layers: usize) -> Self {
        Template {
            gate: TemplateGate::Family(family),
            layers,
        }
    }

    /// Number of two-qubit gate layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The template gate description.
    pub fn gate(&self) -> &TemplateGate {
        &self.gate
    }

    /// Number of free single-qubit parameters: `6 · (layers + 1)`.
    pub fn single_qubit_parameter_count(&self) -> usize {
        6 * (self.layers + 1)
    }

    /// Number of free two-qubit (family) parameters: zero for fixed gates,
    /// `layers · family.parameter_count()` for continuous families.
    pub fn family_parameter_count(&self) -> usize {
        match &self.gate {
            TemplateGate::Fixed(_) => 0,
            TemplateGate::Family(f) => self.layers * f.parameter_count(),
        }
    }

    /// Total number of optimization variables.
    pub fn parameter_count(&self) -> usize {
        self.single_qubit_parameter_count() + self.family_parameter_count()
    }

    /// Evaluates the 4×4 unitary realized by the template at a parameter
    /// vector. The layout of `params` is: the `6·(layers+1)` single-qubit
    /// angles first (interleaved per layer boundary: q0's `U3` then q1's
    /// `U3`), followed by the per-layer family angles (if any).
    ///
    /// # Panics
    /// Panics if `params.len() != self.parameter_count()`.
    ///
    /// This is the inner kernel of the BFGS objective: everything is
    /// stack-allocated ([`Mat4`] is `Copy`), so one evaluation performs zero
    /// heap allocations.
    pub fn unitary(&self, params: &[f64]) -> Mat4 {
        assert_eq!(
            params.len(),
            self.parameter_count(),
            "expected {} parameters",
            self.parameter_count()
        );
        let (sq, fam) = params.split_at(self.single_qubit_parameter_count());
        let layer_1q = |k: usize| -> Mat4 {
            let base = 6 * k;
            let a = u3(sq[base], sq[base + 1], sq[base + 2]);
            let b = u3(sq[base + 3], sq[base + 4], sq[base + 5]);
            a.kron(&b)
        };
        let mut u = layer_1q(0);
        for layer in 0..self.layers {
            let two_q = match &self.gate {
                TemplateGate::Fixed(m) => *m,
                TemplateGate::Family(f) => {
                    let np = f.parameter_count();
                    f.unitary(&fam[layer * np..(layer + 1) * np])
                }
            };
            u = two_q * u;
            u = layer_1q(layer + 1) * u;
        }
        u
    }

    /// The two-qubit unitary used in layer `layer` at a parameter vector
    /// (constant for fixed-gate templates).
    ///
    /// # Panics
    /// Panics if `layer >= self.layers()`.
    pub fn layer_gate_unitary(&self, params: &[f64], layer: usize) -> Mat4 {
        assert!(layer < self.layers, "layer out of range");
        match &self.gate {
            TemplateGate::Fixed(m) => *m,
            TemplateGate::Family(f) => {
                let fam = &params[self.single_qubit_parameter_count()..];
                let np = f.parameter_count();
                f.unitary(&fam[layer * np..(layer + 1) * np])
            }
        }
    }

    /// The six `U3` angles `(q0: α,β,λ, q1: α,β,λ)` of single-qubit layer `k`
    /// (`k` ranges over `0..=layers`).
    ///
    /// # Panics
    /// Panics if `k > self.layers()`.
    pub fn single_qubit_layer_params<'p>(&self, params: &'p [f64], k: usize) -> &'p [f64] {
        assert!(k <= self.layers, "single-qubit layer out of range");
        &params[6 * k..6 * (k + 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::GateType;
    use qmath::{haar_random_unitary, RngSeed};

    #[test]
    fn parameter_counts() {
        let t = Template::fixed(*GateType::cz().unitary(), 3);
        assert_eq!(t.layers(), 3);
        assert_eq!(t.single_qubit_parameter_count(), 24);
        assert_eq!(t.family_parameter_count(), 0);
        assert_eq!(t.parameter_count(), 24);

        let f = Template::family(ContinuousFamily::FullFsim, 2);
        assert_eq!(f.parameter_count(), 18 + 4);
        let xy = Template::family(ContinuousFamily::FullXy, 2);
        assert_eq!(xy.parameter_count(), 18 + 2);
    }

    #[test]
    fn zero_layer_template_is_a_local_unitary() {
        let t = Template::fixed(*GateType::cz().unitary(), 0);
        assert_eq!(t.parameter_count(), 6);
        let u = t.unitary(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert!(u.is_unitary(1e-12));
        // A local unitary cannot create entanglement: it must be a Kronecker
        // product, so its partial transpose structure keeps |u[(0,0)]*u[(3,3)]|
        // == |u[(0,3)] ... | — simplest check: compare against the explicit kron.
        let a = gates::standard::u3(0.1, 0.2, 0.3);
        let b = gates::standard::u3(0.4, 0.5, 0.6);
        assert!(u.approx_eq(&a.kron(&b), 1e-12));
    }

    #[test]
    fn template_unitary_is_always_unitary() {
        for layers in 0..4 {
            let t = Template::fixed(*GateType::syc().unitary(), layers);
            let params: Vec<f64> = (0..t.parameter_count())
                .map(|i| (i as f64 * 0.73).sin() * 3.0)
                .collect();
            assert!(t.unitary(&params).is_unitary(1e-10), "layers={layers}");
        }
        // Family templates too.
        let t = Template::family(ContinuousFamily::FullFsim, 2);
        let params: Vec<f64> = (0..t.parameter_count()).map(|i| 0.1 * i as f64).collect();
        assert!(t.unitary(&params).is_unitary(1e-10));
    }

    #[test]
    fn identity_parameters_reproduce_plain_gate_product() {
        // With all U3 angles zero, the template is just G^layers.
        let cz = *GateType::cz().unitary();
        for layers in 1..4 {
            let t = Template::fixed(cz, layers);
            let params = vec![0.0; t.parameter_count()];
            let expect = cz.pow(layers);
            assert!(t.unitary(&params).approx_eq(&expect, 1e-12));
        }
    }

    #[test]
    fn one_layer_cz_template_can_express_cz_exactly() {
        let t = Template::fixed(*GateType::cz().unitary(), 1);
        let params = vec![0.0; t.parameter_count()];
        let u = t.unitary(&params);
        assert!(u.approx_eq(GateType::cz().unitary(), 1e-12));
    }

    #[test]
    fn family_layer_gate_unitary_reads_per_layer_angles() {
        let t = Template::family(ContinuousFamily::FullFsim, 2);
        let mut params = vec![0.0; t.parameter_count()];
        // Layer 0 angles (theta, phi) = (0.3, 0.4); layer 1 = (1.0, 2.0).
        let off = t.single_qubit_parameter_count();
        params[off] = 0.3;
        params[off + 1] = 0.4;
        params[off + 2] = 1.0;
        params[off + 3] = 2.0;
        let g0 = t.layer_gate_unitary(&params, 0);
        let g1 = t.layer_gate_unitary(&params, 1);
        assert!(g0.approx_eq(&gates::fsim::fsim(0.3, 0.4), 1e-12));
        assert!(g1.approx_eq(&gates::fsim::fsim(1.0, 2.0), 1e-12));
    }

    #[test]
    fn single_qubit_layer_param_slicing() {
        let t = Template::fixed(*GateType::cz().unitary(), 1);
        let params: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(
            t.single_qubit_layer_params(&params, 0),
            &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(
            t.single_qubit_layer_params(&params, 1),
            &[6.0, 7.0, 8.0, 9.0, 10.0, 11.0]
        );
    }

    #[test]
    #[should_panic(expected = "expected 12 parameters")]
    fn wrong_parameter_count_panics() {
        let t = Template::fixed(*GateType::cz().unitary(), 1);
        let _ = t.unitary(&[0.0; 6]);
    }

    #[test]
    fn random_local_rotations_of_target_reachable_with_zero_layers() {
        // Sanity: a purely local target is expressible by a 0-layer template at
        // the right parameters (we just check such parameters exist by
        // construction).
        let mut rng = RngSeed(11).rng();
        let a = haar_random_unitary(2, &mut rng);
        let b = haar_random_unitary(2, &mut rng);
        let target = a.kron(&b);
        assert!(target.is_unitary(1e-10));
    }
}
