//! Exact, approximate and continuous-family decomposition of two-qubit
//! unitaries (paper §V.A–B).

use circuit::{Circuit, Operation, QubitId};
use gates::fsim::ContinuousFamily;
use gates::GateType;
use optim::{multistart_minimize_with_grad, BfgsOptions, MultistartOptions};
use qmath::{hilbert_schmidt_fidelity, Mat4, RngSeed};
use serde::{Deserialize, Serialize};

use crate::template::Template;

/// Configuration for a NuOp decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecomposeConfig {
    /// Decomposition-fidelity threshold for the *exact* mode: the smallest
    /// layer count whose optimized `F_d` exceeds this value is selected.
    /// The paper uses 99.999%.
    pub fidelity_threshold: f64,
    /// Maximum number of two-qubit layers to try (the paper caps at 10; 3 is
    /// sufficient for any SU(4) with most gate types, SWAP-like targets may
    /// need more).
    pub max_layers: usize,
    /// Number of random restarts per layer count.
    pub restarts: usize,
    /// Single-qubit gate fidelity folded into the hardware-fidelity estimate
    /// `F_h` of the approximate mode. `1.0` ignores single-qubit errors, which
    /// matches the paper's model (1Q errors are an order of magnitude smaller).
    pub one_qubit_fidelity: f64,
    /// Options of the underlying BFGS optimizer.
    pub bfgs: BfgsOptions,
    /// Seed for the (deterministic) restart randomization.
    pub seed: u64,
}

impl Default for DecomposeConfig {
    fn default() -> Self {
        DecomposeConfig {
            fidelity_threshold: 0.99999,
            max_layers: 6,
            restarts: 4,
            one_qubit_fidelity: 1.0,
            bfgs: BfgsOptions::default(),
            seed: 0x6E75_4F70, // "nuOp"
        }
    }
}

impl DecomposeConfig {
    /// A cheaper configuration for large parameter sweeps (Fig. 8 heatmaps):
    /// fewer restarts and a faster optimizer, still reliably reaching
    /// `F_d > 0.9999` for expressible targets.
    pub fn sweep() -> Self {
        DecomposeConfig {
            fidelity_threshold: 0.9999,
            max_layers: 6,
            restarts: 2,
            bfgs: BfgsOptions::fast(),
            ..DecomposeConfig::default()
        }
    }
}

/// The result of decomposing one two-qubit target unitary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// The template that was optimized.
    pub template: Template,
    /// Optimal parameter vector for the template.
    pub params: Vec<f64>,
    /// Number of two-qubit hardware gates used.
    pub layers: usize,
    /// Decomposition fidelity `F_d` (Eq. 1) achieved.
    pub decomposition_fidelity: f64,
    /// Hardware fidelity `F_h` assumed for this decomposition (1.0 when the
    /// caller did not supply hardware error rates).
    pub hardware_fidelity: f64,
    /// Overall fidelity `F_u = F_d · F_h` (Eq. 2).
    pub overall_fidelity: f64,
    /// Label of the hardware gate type (or continuous family) targeted.
    pub gate_label: String,
}

impl Decomposition {
    /// The 4×4 unitary realized by the optimized template.
    pub fn realized_unitary(&self) -> Mat4 {
        self.template.unitary(&self.params)
    }

    /// Number of two-qubit hardware gates in the decomposition.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.layers
    }

    /// Expands the decomposition into circuit operations acting on `(q0, q1)`.
    ///
    /// The emitted sequence alternates pairs of `U3` rotations with the
    /// hardware two-qubit gate, exactly as in paper Fig. 4.
    pub fn to_operations(&self, q0: QubitId, q1: QubitId) -> Vec<Operation> {
        let mut ops = Vec::with_capacity(3 * (self.layers + 1));
        let push_1q_layer = |ops: &mut Vec<Operation>, k: usize| {
            let p = self.template.single_qubit_layer_params(&self.params, k);
            ops.push(Operation::u3(q0, p[0], p[1], p[2]));
            ops.push(Operation::u3(q1, p[3], p[4], p[5]));
        };
        push_1q_layer(&mut ops, 0);
        for layer in 0..self.layers {
            let gate_matrix = self.template.layer_gate_unitary(&self.params, layer);
            ops.push(Operation::unitary2q(
                self.gate_label.clone(),
                gate_matrix,
                q0,
                q1,
            ));
            push_1q_layer(&mut ops, layer + 1);
        }
        ops
    }

    /// Builds a circuit over `num_qubits` qubits containing the decomposition
    /// applied to `(q0, q1)`.
    pub fn to_circuit(&self, num_qubits: usize, q0: QubitId, q1: QubitId) -> Circuit {
        let mut c = Circuit::new(num_qubits);
        for op in self.to_operations(q0, q1) {
            c.push(op);
        }
        c
    }
}

/// Optimizes a template against a target and returns `(params, F_d)`.
fn optimize_template(
    template: &Template,
    target: &Mat4,
    config: &DecomposeConfig,
    stream: u64,
) -> (Vec<f64>, f64) {
    // The objective is allocation-free: `Template::unitary` builds the 4×4
    // on the stack and the fidelity reduces it to a scalar in place. BFGS is
    // steered by the analytic gradient of crate::gradient, which replaces the
    // 2n central-difference probes per iteration with one prefix/suffix sweep.
    let objective =
        |params: &[f64]| 1.0 - hilbert_schmidt_fidelity(&template.unitary(params), target);
    let gradient_fn = |params: &[f64]| {
        let mut g = vec![0.0; params.len()];
        crate::gradient::hs_objective_gradient(template, target, params, &mut g);
        g
    };
    let n = template.parameter_count();
    // Start from all-zero angles (identity 1Q layers); restarts perturb this.
    let x0 = vec![0.0; n];
    let opts = MultistartOptions {
        restarts: config.restarts,
        spread: std::f64::consts::PI,
        target_value: Some(1.0 - config.fidelity_threshold),
        bfgs: config.bfgs.clone(),
    };
    let mut rng = RngSeed(config.seed).child(stream).rng();
    let result = multistart_minimize_with_grad(&objective, &gradient_fn, &x0, &opts, &mut rng);
    let fidelity = 1.0 - result.value;
    (result.x, fidelity)
}

/// Exact decomposition into a fixed hardware gate type (paper §V.A).
///
/// Templates of 0, 1, 2, … layers are optimized in turn; the first to reach
/// `config.fidelity_threshold` is returned. If no layer count up to
/// `config.max_layers` reaches the threshold, the best attempt found is
/// returned (its `decomposition_fidelity` tells the caller how close it got).
pub fn decompose_fixed(target: &Mat4, gate: &GateType, config: &DecomposeConfig) -> Decomposition {
    let attempt = |layers: usize| {
        let template = Template::fixed(*gate.unitary(), layers);
        let (params, fd) = optimize_template(&template, target, config, layers as u64);
        Decomposition {
            template,
            params,
            layers,
            decomposition_fidelity: fd,
            hardware_fidelity: 1.0,
            overall_fidelity: fd,
            gate_label: gate.name().to_string(),
        }
    };
    // The zero-layer template always exists, so `best` is never empty.
    let mut best = attempt(0);
    for layers in 1..=config.max_layers {
        if best.decomposition_fidelity >= config.fidelity_threshold {
            break;
        }
        let candidate = attempt(layers);
        if candidate.decomposition_fidelity > best.decomposition_fidelity {
            best = candidate;
        }
    }
    best
}

/// Approximate, hardware-aware decomposition (paper §V.B, Eq. 2).
///
/// `two_qubit_fidelity` is the calibrated hardware fidelity of the target gate
/// type on the qubit pair being compiled. The returned decomposition maximizes
/// `F_u = F_d(i) · F_h(i)` over layer counts `i`, where
/// `F_h(i) = two_qubit_fidelity^i · one_qubit_fidelity^(2(i+1))`.
pub fn decompose_approx(
    target: &Mat4,
    gate: &GateType,
    two_qubit_fidelity: f64,
    config: &DecomposeConfig,
) -> Decomposition {
    assert!(
        (0.0..=1.0).contains(&two_qubit_fidelity),
        "hardware fidelity must lie in [0, 1]"
    );
    let hw = |layers: usize| -> f64 {
        two_qubit_fidelity.powi(layers as i32)
            * config.one_qubit_fidelity.powi(2 * (layers as i32 + 1))
    };
    let attempt = |layers: usize, f_h: f64| {
        let template = Template::fixed(*gate.unitary(), layers);
        let (params, fd) = optimize_template(&template, target, config, 100 + layers as u64);
        Decomposition {
            template,
            params,
            layers,
            decomposition_fidelity: fd,
            hardware_fidelity: f_h,
            overall_fidelity: fd * f_h,
            gate_label: gate.name().to_string(),
        }
    };
    // The zero-layer template always exists, so `best` is never empty.
    let mut best = attempt(0, hw(0));
    for layers in 1..=config.max_layers {
        let f_h = hw(layers);
        // Adding layers can only lower F_h; once even a perfect F_d cannot beat
        // the best F_u found so far, stop.
        if f_h <= best.overall_fidelity {
            break;
        }
        let candidate = attempt(layers, f_h);
        if candidate.overall_fidelity > best.overall_fidelity {
            best = candidate;
        }
    }
    best
}

/// Decomposition targeting a *continuous* gate family (FullXY / FullfSim): the
/// per-layer family angles are optimization variables alongside the
/// single-qubit angles (paper §V.A, last paragraph).
pub fn decompose_continuous(
    target: &Mat4,
    family: ContinuousFamily,
    config: &DecomposeConfig,
) -> Decomposition {
    let attempt = |layers: usize| {
        let template = Template::family(family, layers);
        let (params, fd) = optimize_template(&template, target, config, 200 + layers as u64);
        Decomposition {
            template,
            params,
            layers,
            decomposition_fidelity: fd,
            hardware_fidelity: 1.0,
            overall_fidelity: fd,
            gate_label: family.name().to_string(),
        }
    };
    // The zero-layer template always exists, so `best` is never empty.
    let mut best = attempt(0);
    for layers in 1..=config.max_layers {
        if best.decomposition_fidelity >= config.fidelity_threshold {
            break;
        }
        let candidate = attempt(layers);
        if candidate.decomposition_fidelity > best.decomposition_fidelity {
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::{haar_random_su4, RngSeed};

    fn quick_config() -> DecomposeConfig {
        DecomposeConfig {
            restarts: 3,
            max_layers: 4,
            ..DecomposeConfig::default()
        }
    }

    #[test]
    fn identity_needs_zero_layers() {
        let d = decompose_fixed(&Mat4::identity(), &GateType::cz(), &quick_config());
        assert_eq!(d.layers, 0);
        assert!(d.decomposition_fidelity > 0.99999);
    }

    #[test]
    fn cz_target_with_cz_gate_needs_one_layer() {
        let d = decompose_fixed(&standard::cz(), &GateType::cz(), &quick_config());
        assert!(d.layers <= 1);
        assert!(d.decomposition_fidelity > 0.99999);
    }

    #[test]
    fn cnot_with_cz_needs_one_layer() {
        let d = decompose_fixed(&standard::cnot(), &GateType::cz(), &quick_config());
        assert_eq!(d.layers, 1);
        assert!(d.decomposition_fidelity > 0.99999);
        // Verify the emitted operations reproduce CNOT up to global phase.
        let circ = d.to_circuit(2, 0, 1);
        assert!(circ
            .unitary()
            .approx_eq_up_to_phase(&standard::cnot(), 1e-3));
    }

    #[test]
    fn qaoa_zz_with_cz_needs_two_layers() {
        // Fig. 2d: the ZZ interaction requires 2 CZ applications.
        let target = standard::zz_interaction(0.0303);
        let d = decompose_fixed(&target, &GateType::cz(), &quick_config());
        assert_eq!(d.layers, 2);
        assert!(d.decomposition_fidelity > 0.9999);
    }

    #[test]
    fn random_su4_with_cz_needs_three_layers() {
        // Fig. 2c: a generic SU(4) (QV unitary) needs 3 CZ gates.
        let mut rng = RngSeed(21).rng();
        let target = haar_random_su4(&mut rng);
        let d = decompose_fixed(&target, &GateType::cz(), &quick_config());
        assert_eq!(d.layers, 3, "fd = {}", d.decomposition_fidelity);
        assert!(d.decomposition_fidelity > 0.9999);
        // Realized unitary matches the target up to phase.
        assert!(qmath::hilbert_schmidt_fidelity(&d.realized_unitary(), &target) > 0.9999);
    }

    #[test]
    fn swap_with_cz_needs_three_layers() {
        let d = decompose_fixed(&standard::swap(), &GateType::cz(), &quick_config());
        assert_eq!(d.layers, 3);
        assert!(d.decomposition_fidelity > 0.9999);
    }

    #[test]
    fn approx_mode_trades_accuracy_for_gate_count() {
        // With a very noisy hardware gate (90% fidelity), the approximate mode
        // should never use more gates than the exact mode, and usually fewer
        // for a generic SU(4) target.
        let mut rng = RngSeed(33).rng();
        let target = haar_random_su4(&mut rng);
        let exact = decompose_fixed(&target, &GateType::cz(), &quick_config());
        let approx = decompose_approx(&target, &GateType::cz(), 0.90, &quick_config());
        assert!(approx.layers <= exact.layers);
        assert!(
            approx.overall_fidelity
                >= exact.decomposition_fidelity * 0.9f64.powi(exact.layers as i32) - 1e-9
        );
        assert!(approx.hardware_fidelity <= 1.0);
    }

    #[test]
    fn approx_mode_with_perfect_hardware_matches_exact() {
        let target = standard::cnot();
        let approx = decompose_approx(&target, &GateType::cz(), 1.0, &quick_config());
        assert_eq!(approx.layers, 1);
        assert!(approx.decomposition_fidelity > 0.99999);
        assert!((approx.overall_fidelity - approx.decomposition_fidelity).abs() < 1e-12);
    }

    #[test]
    fn continuous_fsim_reaches_generic_su4_in_two_layers() {
        // Paper Fig. 8 caption: with the full continuous fSim family, QV
        // unitaries need ~2 gates.
        let mut rng = RngSeed(55).rng();
        let target = haar_random_su4(&mut rng);
        let cfg = DecomposeConfig {
            restarts: 4,
            max_layers: 3,
            ..DecomposeConfig::default()
        };
        let d = decompose_continuous(&target, ContinuousFamily::FullFsim, &cfg);
        assert!(d.layers <= 3);
        assert!(
            d.decomposition_fidelity > 0.999,
            "fd = {}",
            d.decomposition_fidelity
        );
    }

    #[test]
    fn to_operations_structure() {
        let d = decompose_fixed(&standard::cnot(), &GateType::cz(), &quick_config());
        let ops = d.to_operations(2, 3);
        // 2 U3s per 1Q layer, (layers+1) 1Q layers, plus `layers` 2Q gates.
        assert_eq!(ops.len(), 2 * (d.layers + 1) + d.layers);
        let two_q = ops.iter().filter(|o| o.is_two_qubit_unitary()).count();
        assert_eq!(two_q, d.layers);
        for op in &ops {
            for &q in op.qubits() {
                assert!(q == 2 || q == 3);
            }
        }
    }

    #[test]
    fn sweep_config_is_cheaper_but_valid() {
        let cfg = DecomposeConfig::sweep();
        assert!(cfg.restarts < DecomposeConfig::default().restarts);
        let d = decompose_fixed(&standard::cnot(), &GateType::cz(), &cfg);
        assert_eq!(d.layers, 1);
    }

    #[test]
    fn non_two_qubit_targets_are_rejected_at_the_conversion_boundary() {
        // The 4×4 shape is now enforced by the type system: a wrong-sized
        // CMatrix fails to convert instead of panicking inside the optimizer.
        let err = Mat4::try_from(&qmath::CMatrix::identity(2)).unwrap_err();
        assert_eq!(err.expected, 4);
    }
}
