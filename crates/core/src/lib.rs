//! # NuOp — numerical-optimization gate decomposition
//!
//! This crate implements the primary contribution of the ISCA'21 paper
//! *"Designing Calibration and Expressivity-Efficient Instruction Sets for
//! Quantum Computing"*: **NuOp**, a flexible compilation pass that decomposes
//! arbitrary two-qubit application unitaries into sequences of *any* hardware
//! two-qubit gate type, using numerical optimization over template circuits.
//!
//! The pass supports three operating modes, mirroring §V of the paper:
//!
//! 1. **Exact decomposition** ([`decompose::decompose_fixed`]): grow the
//!    template one layer at a time and accept the first layer count whose
//!    decomposition fidelity `F_d` (Eq. 1) exceeds a threshold (e.g. 99.999%).
//! 2. **Approximate, hardware-aware decomposition**
//!    ([`decompose::decompose_approx`]): maximize the product
//!    `F_d · F_h` (Eq. 2) of decomposition fidelity and hardware fidelity, so a
//!    slightly inexact decomposition with fewer noisy gates can win.
//! 3. **Noise-adaptive gate-type selection**
//!    ([`noise_adaptive::decompose_with_gate_choice`]): when the instruction
//!    set exposes several gate types with per-qubit-pair calibrated fidelities,
//!    pick, per application operation, the type and layer count with the best
//!    overall fidelity `F_u`.
//!
//! [`pass::NuOpPass`] applies these modes to whole circuits (optionally in
//! parallel across operations) and is what the `compiler` crate invokes after
//! routing.
//!
//! # Quickstart
//!
//! ```
//! use gates::GateType;
//! use nuop_core::{decompose_fixed, DecomposeConfig};
//! use qmath::{haar_random_su4, RngSeed};
//!
//! let mut rng = RngSeed(7).rng();
//! // The sampled Mat4 is stack-allocated, like the whole decomposition path.
//! let target = haar_random_su4(&mut rng);
//! let result = decompose_fixed(&target, &GateType::cz(), &DecomposeConfig::default());
//! // Any SU(4) needs at most 3 CZ layers.
//! assert!(result.layers <= 3);
//! assert!(result.decomposition_fidelity > 0.9999);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod decompose;
pub mod gradient;
pub mod noise_adaptive;
pub mod pass;
pub mod template;

pub use cache::{CacheKey, CachedDecomposition, DecompositionCache};
pub use decompose::{
    decompose_approx, decompose_continuous, decompose_fixed, DecomposeConfig, Decomposition,
};
pub use gradient::hs_objective_gradient;
pub use noise_adaptive::{decompose_with_gate_choice, GateChoice, HardwareGate};
pub use pass::{HardwareFidelityProvider, NuOpPass, PassStats, UniformFidelity};
pub use template::Template;
