//! Analytic gradient of the Hilbert–Schmidt fidelity objective.
//!
//! The BFGS objective minimized by [`crate::decompose`] is
//! `f(θ) = 1 − |Tr(T† U(θ))| / 4`, where `U(θ)` is the template unitary and
//! `T` the target. Central differences cost `2n` template evaluations per
//! gradient (`n = 6(L+1) + family params`), which dominates decomposition
//! time. This module computes the exact gradient from one prefix/suffix sweep
//! over the template's factor chain — a constant number of 4×4 products per
//! parameter — using the closed-form derivatives of the `u3` and `fSim`
//! matrices.
//!
//! # Scheme
//!
//! Write the template as an ordered product of factors
//! `U = F_{m−1} · … · F_1 · F_0` with `m = 2L + 1` (single-qubit layers at
//! even indices, two-qubit gates at odd ones). With the suffix products
//! `S_j = F_{j−1}···F_0` and prefix products `P_j = F_{m−1}···F_{j+1}`,
//! the trace `s = Tr(T† U)` differentiates factor-locally:
//!
//! ```text
//! ds/dθ = Tr(S_j · T† · P_j · dF_j/dθ) = Tr(M_j · dF_j/dθ)
//! ```
//!
//! so each factor needs its `M_j` once, and each of its parameters one extra
//! trace. The chain rule through the absolute value gives
//! `df/dθ = −Re(conj(s) · ds/dθ) / (4|s|)`, with the gradient defined as zero
//! at the (measure-zero) point `s = 0` where `|s|` is not differentiable.

use gates::fsim::ContinuousFamily;
use gates::standard::u3;
use qmath::{Complex, Mat2, Mat4};

use crate::template::{Template, TemplateGate};

/// Evaluates the Hilbert–Schmidt objective `1 − |Tr(T† U(θ))|/4` and writes
/// its analytic gradient into `grad`.
///
/// Returns the objective value. The layout of `params` (and `grad`) matches
/// [`Template::unitary`]: the `6(L+1)` single-qubit `u3` angles first, then
/// the per-layer family angles for continuous-family templates.
///
/// # Panics
/// Panics if `params.len()` or `grad.len()` differs from
/// `template.parameter_count()`.
pub fn hs_objective_gradient(
    template: &Template,
    target: &Mat4,
    params: &[f64],
    grad: &mut [f64],
) -> f64 {
    let n = template.parameter_count();
    assert_eq!(params.len(), n, "expected {n} parameters");
    assert_eq!(grad.len(), n, "expected a gradient buffer of length {n}");

    let layers = template.layers();
    let m = 2 * layers + 1;
    let sq_count = template.single_qubit_parameter_count();
    let (sq, fam) = params.split_at(sq_count);

    // Factor chain: L_0, G_0, L_1, G_1, …, G_{L-1}, L_L.
    let layer_1q = |k: usize| -> Mat4 {
        let p = &sq[6 * k..6 * (k + 1)];
        u3(p[0], p[1], p[2]).kron(&u3(p[3], p[4], p[5]))
    };
    let mut factors = Vec::with_capacity(m);
    factors.push(layer_1q(0));
    for layer in 0..layers {
        factors.push(template.layer_gate_unitary(params, layer));
        factors.push(layer_1q(layer + 1));
    }

    // S_j = F_{j-1}···F_0 and P_j = F_{m-1}···F_{j+1}.
    let mut suffix = vec![Mat4::identity(); m];
    for j in 1..m {
        suffix[j] = factors[j - 1] * suffix[j - 1];
    }
    let mut prefix = vec![Mat4::identity(); m];
    for j in (0..m - 1).rev() {
        prefix[j] = prefix[j + 1] * factors[j + 1];
    }

    let u = factors[m - 1] * suffix[m - 1];
    let s = trace_adjoint_product(target, &u);
    let snorm = s.norm();
    let value = 1.0 - snorm / 4.0;
    if snorm < 1e-15 {
        // |s| is not differentiable at s = 0; any subgradient works for a
        // descent method, and zero keeps BFGS well-defined.
        grad.fill(0.0);
        return value;
    }
    let tdag = target.dagger();
    let chain = -1.0 / (4.0 * snorm);
    let sbar = s.conj();

    // Single-qubit layers: F_{2k} = A_k ⊗ B_k, three u3 angles per factor.
    for k in 0..=layers {
        let j = 2 * k;
        let mj = suffix[j] * tdag * prefix[j];
        let p = &sq[6 * k..6 * (k + 1)];
        let a = u3(p[0], p[1], p[2]);
        let b = u3(p[3], p[4], p[5]);
        let da = u3_derivatives(p[0], p[1], p[2]);
        let db = u3_derivatives(p[3], p[4], p[5]);
        for i in 0..3 {
            grad[6 * k + i] = chain * (sbar * trace_product(&mj, &da[i].kron(&b))).re;
            grad[6 * k + 3 + i] = chain * (sbar * trace_product(&mj, &a.kron(&db[i]))).re;
        }
    }

    // Two-qubit layers: fixed gates contribute nothing; continuous families
    // contribute their per-layer angle derivatives.
    if let TemplateGate::Family(f) = template.gate() {
        let np = f.parameter_count();
        for layer in 0..layers {
            let j = 2 * layer + 1;
            let mj = suffix[j] * tdag * prefix[j];
            let angles = &fam[layer * np..(layer + 1) * np];
            for (i, d) in family_derivatives(f, angles).iter().enumerate() {
                grad[sq_count + layer * np + i] = chain * (sbar * trace_product(&mj, d)).re;
            }
        }
    }
    value
}

/// `Tr(a† b) = Σ conj(a[r,c]) · b[r,c]`.
fn trace_adjoint_product(a: &Mat4, b: &Mat4) -> Complex {
    let mut acc = Complex::ZERO;
    for r in 0..4 {
        for c in 0..4 {
            acc += a[(r, c)].conj() * b[(r, c)];
        }
    }
    acc
}

/// `Tr(a b) = Σ a[r,c] · b[c,r]`.
fn trace_product(a: &Mat4, b: &Mat4) -> Complex {
    let mut acc = Complex::ZERO;
    for r in 0..4 {
        for c in 0..4 {
            acc += a[(r, c)] * b[(c, r)];
        }
    }
    acc
}

/// Partial derivatives `[∂/∂α, ∂/∂β, ∂/∂λ]` of
/// `u3(α,β,λ) = [[cos(α/2), −e^{iλ} sin(α/2)], [e^{iβ} sin(α/2), e^{i(β+λ)} cos(α/2)]]`.
fn u3_derivatives(alpha: f64, beta: f64, lambda: f64) -> [Mat2; 3] {
    let (c, s) = ((alpha / 2.0).cos(), (alpha / 2.0).sin());
    let d_alpha = Mat2::from_rows(&[
        Complex::from_real(-s),
        -(Complex::cis(lambda) * c),
        Complex::cis(beta) * c,
        -(Complex::cis(beta + lambda) * s),
    ])
    .scale(0.5);
    let d_beta = Mat2::from_rows(&[
        Complex::ZERO,
        Complex::ZERO,
        Complex::I * Complex::cis(beta) * s,
        Complex::I * Complex::cis(beta + lambda) * c,
    ]);
    let d_lambda = Mat2::from_rows(&[
        Complex::ZERO,
        -(Complex::I * Complex::cis(lambda) * s),
        Complex::ZERO,
        Complex::I * Complex::cis(beta + lambda) * c,
    ]);
    [d_alpha, d_beta, d_lambda]
}

/// `∂/∂θ` of `fsim(θ, φ)`; the θ dependence lives entirely in the middle
/// `XY` block, so the derivative is φ-independent.
fn fsim_dtheta(theta: f64) -> Mat4 {
    let mut d = Mat4::zeros();
    let ms = Complex::from_real(-theta.sin());
    let mic = Complex::new(0.0, -theta.cos());
    d[(1, 1)] = ms;
    d[(1, 2)] = mic;
    d[(2, 1)] = mic;
    d[(2, 2)] = ms;
    d
}

/// `∂/∂φ` of `fsim(θ, φ)`: only the `|11⟩` corner phase `e^{−iφ}` moves.
fn fsim_dphi(phi: f64) -> Mat4 {
    let mut d = Mat4::zeros();
    d[(3, 3)] = Complex::new(0.0, -1.0) * Complex::cis(-phi);
    d
}

/// Derivative matrices of a continuous family's layer unitary with respect to
/// its per-layer angles, in parameter order.
fn family_derivatives(family: &ContinuousFamily, angles: &[f64]) -> Vec<Mat4> {
    match family {
        // XY(p) = fsim(p/2, 0), so d/dp = ½ ∂θ fsim(p/2, ·).
        ContinuousFamily::FullXy => vec![fsim_dtheta(angles[0] / 2.0).scale(0.5)],
        ContinuousFamily::FullFsim => vec![fsim_dtheta(angles[0]), fsim_dphi(angles[1])],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::GateType;
    use proptest::prelude::*;
    use qmath::hilbert_schmidt_fidelity;
    use qmath::{haar_random_su4, RngSeed};

    fn check_against_finite_differences(template: &Template, target: &Mat4, params: &[f64]) {
        let objective = |p: &[f64]| 1.0 - hilbert_schmidt_fidelity(&template.unitary(p), target);
        let mut analytic = vec![0.0; params.len()];
        let value = hs_objective_gradient(template, target, params, &mut analytic);
        assert!(
            (value - objective(params)).abs() < 1e-12,
            "objective mismatch: {} vs {}",
            value,
            objective(params)
        );
        let numeric = optim::numerical_gradient(&objective, params, 1e-6);
        for (i, (a, n)) in analytic.iter().zip(numeric.iter()).enumerate() {
            assert!(
                (a - n).abs() < 1e-5,
                "component {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    fn params_for(template: &Template, scatter: f64) -> Vec<f64> {
        (0..template.parameter_count())
            .map(|i| ((i as f64 + 1.0) * scatter).sin() * 2.0)
            .collect()
    }

    #[test]
    fn matches_finite_differences_for_fixed_gates() {
        let mut rng = RngSeed(41).rng();
        let target = haar_random_su4(&mut rng);
        for gate in [GateType::cz(), GateType::syc()] {
            for layers in 1..=3 {
                let t = Template::fixed(*gate.unitary(), layers);
                check_against_finite_differences(&t, &target, &params_for(&t, 0.83));
            }
        }
    }

    #[test]
    fn matches_finite_differences_for_continuous_families() {
        let mut rng = RngSeed(42).rng();
        let target = haar_random_su4(&mut rng);
        for family in [ContinuousFamily::FullXy, ContinuousFamily::FullFsim] {
            for layers in 1..=2 {
                let t = Template::family(family, layers);
                check_against_finite_differences(&t, &target, &params_for(&t, 0.61));
            }
        }
    }

    #[test]
    fn zero_layer_template_gradient() {
        let mut rng = RngSeed(43).rng();
        let target = haar_random_su4(&mut rng);
        let t = Template::fixed(*GateType::cz().unitary(), 0);
        check_against_finite_differences(&t, &target, &params_for(&t, 1.07));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The analytic gradient agrees with central differences at random
        /// parameter points, for both fixed-gate and family templates.
        #[test]
        fn gradient_agrees_with_finite_differences(
            seed in 0u64..1024,
            layers in 1usize..3,
            family_step in 0usize..2,
        ) {
            let mut rng = RngSeed(seed).rng();
            let target = haar_random_su4(&mut rng);
            let template = if family_step == 1 {
                Template::family(ContinuousFamily::FullFsim, layers)
            } else {
                Template::fixed(*GateType::syc().unitary(), layers)
            };
            // Deterministic scattered parameter point derived from the seed.
            let params: Vec<f64> = (0..template.parameter_count())
                .map(|i| ((seed as f64) * 0.37 + (i as f64) * 0.91).sin() * 3.0)
                .collect();
            check_against_finite_differences(&template, &target, &params);
        }
    }
}
