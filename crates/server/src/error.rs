//! Typed failures of the job server.

use compiler::CompileError;

use crate::wire::WireError;

/// Everything that can go wrong between submitting a job and reading its
/// response.
///
/// The variants split along the lines a caller cares about: `Overloaded` and
/// `ShutDown` are *admission* failures (retry later, or not at all);
/// `InvalidRequest` and `Compile` are *your* fault (fix the request);
/// `Panicked` is *our* fault (a worker hit a bug, but the server and every
/// other job keep running).
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The bounded queue is full; the request was rejected at admission so
    /// callers see backpressure instead of unbounded latency.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts work.
    ShutDown,
    /// The request failed validation before reaching a worker.
    InvalidRequest {
        /// Human-readable reason the request was rejected.
        reason: String,
    },
    /// Compilation failed with a typed [`CompileError`].
    Compile(CompileError),
    /// The job's worker panicked. The original panic message is preserved;
    /// the worker thread survives and moves on to the next job.
    Panicked {
        /// The panic payload, rendered as text.
        message: String,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded { capacity } => {
                write!(f, "server overloaded: queue capacity {capacity} reached")
            }
            ServerError::ShutDown => write!(f, "server is shut down"),
            ServerError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServerError::Compile(e) => write!(f, "compilation failed: {e}"),
            ServerError::Panicked { message } => write!(f, "job panicked: {message}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for ServerError {
    fn from(e: CompileError) -> Self {
        ServerError::Compile(e)
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::InvalidRequest {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_interesting_detail() {
        assert!(ServerError::Overloaded { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(ServerError::Panicked {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        let e: ServerError = WireError::new("missing field `tenant`").into();
        assert!(e.to_string().contains("tenant"));
    }

    #[test]
    fn compile_errors_keep_their_source() {
        use std::error::Error as _;
        let e = ServerError::Compile(CompileError::EmptyCircuit);
        assert!(e.source().is_some());
    }
}
