//! Wire format for compile/simulate requests and responses.
//!
//! Requests describe *workloads* (tenant, instruction set, generator, size,
//! seed), not serialized circuits: both ends of the wire own the same
//! deterministic generators ([`apps::workloads`]), so a handful of scalars
//! reproduces any circuit bit-for-bit — the same trick the paper's sweep
//! binaries use to name their workloads.
//!
//! The encoding is a flat, single-level JSON object with string and unsigned
//! integer values only. The codec here is hand-rolled because the vendored
//! `serde` shim is marker-only (see `vendor/README.md`); the types still
//! carry the derive markers so switching to real `serde_json` later is a
//! mechanical change.

use serde::{Deserialize, Serialize};
use sim::FusionPolicy;

/// Canonical wire spelling of a fusion policy.
pub(crate) fn fusion_as_str(policy: FusionPolicy) -> &'static str {
    match policy {
        FusionPolicy::Off => "off",
        FusionPolicy::Safe => "safe",
        FusionPolicy::Aggressive => "aggressive",
    }
}

fn fusion_from_str(text: &str) -> Result<FusionPolicy, WireError> {
    match text {
        "off" => Ok(FusionPolicy::Off),
        "safe" => Ok(FusionPolicy::Safe),
        "aggressive" => Ok(FusionPolicy::Aggressive),
        other => Err(WireError::new(format!(
            "unknown fusion {other:?} (expected \"off\", \"safe\" or \"aggressive\")"
        ))),
    }
}

/// What a job should do after compiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOp {
    /// Compile only; report circuit and cache statistics.
    Compile,
    /// Compile, then sample the compiled circuit under the device's
    /// calibrated noise.
    Simulate {
        /// Number of measurement shots.
        shots: usize,
    },
}

/// Which deterministic workload generator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Quantum-volume model circuit ([`apps::workloads::qv_circuit`]).
    Qv,
    /// Hardware-style QAOA instance ([`apps::workloads::qaoa_circuit`]).
    Qaoa,
}

impl WorkloadKind {
    fn as_str(&self) -> &'static str {
        match self {
            WorkloadKind::Qv => "qv",
            WorkloadKind::Qaoa => "qaoa",
        }
    }
}

/// One compile-or-simulate request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Tenant namespace; each tenant gets its own decomposition cache.
    pub tenant: String,
    /// Table II instruction-set name (e.g. `"G3"`, case-insensitive).
    pub set: String,
    /// Workload generator.
    pub workload: WorkloadKind,
    /// Number of logical qubits.
    pub qubits: usize,
    /// Seed of the workload generator.
    pub seed: u64,
    /// Compile only, or compile then simulate.
    pub op: JobOp,
    /// Gate-fusion policy for the simulation engine. `None` uses the server's
    /// configured engine unchanged; `Some` selects the engine variant running
    /// that policy (`"off"`, `"safe"` or `"aggressive"` on the wire).
    pub fusion: Option<FusionPolicy>,
}

impl JobRequest {
    /// Encodes the request as a flat JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "tenant", &self.tenant);
        push_str_field(&mut out, "set", &self.set);
        push_str_field(&mut out, "workload", self.workload.as_str());
        push_num_field(&mut out, "qubits", self.qubits as u64);
        push_num_field(&mut out, "seed", self.seed);
        match self.op {
            JobOp::Compile => push_str_field(&mut out, "op", "compile"),
            JobOp::Simulate { shots } => {
                push_str_field(&mut out, "op", "simulate");
                push_num_field(&mut out, "shots", shots as u64);
            }
        }
        if let Some(policy) = self.fusion {
            push_str_field(&mut out, "fusion", fusion_as_str(policy));
        }
        out.pop(); // trailing comma
        out.push('}');
        out
    }

    /// Parses a request from the flat JSON produced by [`JobRequest::encode`].
    pub fn parse(text: &str) -> Result<JobRequest, WireError> {
        let fields = parse_flat_object(text)?;
        let tenant = require_str(&fields, "tenant")?.to_string();
        if tenant.is_empty() {
            return Err(WireError::new("field `tenant` must be non-empty"));
        }
        let set = require_str(&fields, "set")?.to_string();
        let workload = match require_str(&fields, "workload")? {
            "qv" => WorkloadKind::Qv,
            "qaoa" => WorkloadKind::Qaoa,
            other => {
                return Err(WireError::new(format!(
                    "unknown workload {other:?} (expected \"qv\" or \"qaoa\")"
                )))
            }
        };
        let qubits = require_num(&fields, "qubits")? as usize;
        let seed = require_num(&fields, "seed")?;
        let op = match require_str(&fields, "op")? {
            "compile" => JobOp::Compile,
            "simulate" => JobOp::Simulate {
                shots: require_num(&fields, "shots")? as usize,
            },
            other => {
                return Err(WireError::new(format!(
                    "unknown op {other:?} (expected \"compile\" or \"simulate\")"
                )))
            }
        };
        let fusion = match fields.iter().find(|(k, _)| k == "fusion") {
            None => None,
            Some(_) => Some(fusion_from_str(require_str(&fields, "fusion")?)?),
        };
        Ok(JobRequest {
            tenant,
            set,
            workload,
            qubits,
            seed,
            op,
            fusion,
        })
    }
}

/// Simulation half of a [`JobResponse`], present for `op = simulate`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Shots executed.
    pub shots: usize,
    /// Wall-clock of the sampling phase, microseconds.
    pub simulate_micros: u64,
    /// Number of distinct measured outcomes (a cheap sanity statistic that
    /// does not bloat the wire with a full histogram).
    pub distinct_outcomes: usize,
    /// Fusion policy the engine actually ran (the request's choice, or the
    /// server engine's default when the request left it unset).
    pub fusion: FusionPolicy,
}

/// What a completed job reports back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobResponse {
    /// Echo of the request's tenant.
    pub tenant: String,
    /// Echo of the request's instruction set (canonical Table II casing).
    pub set: String,
    /// Two-qubit hardware gates in the compiled circuit.
    pub two_qubit_gates: usize,
    /// Routing SWAPs inserted before decomposition.
    pub swap_count: usize,
    /// Decomposition-cache hits during this compile.
    pub cache_hits: usize,
    /// Decomposition-cache misses during this compile.
    pub cache_misses: usize,
    /// Wall-clock of the compile phase, microseconds.
    pub compile_micros: u64,
    /// Present when the job also simulated.
    pub sim: Option<SimSummary>,
}

impl JobResponse {
    /// Encodes the response as a flat JSON object.
    pub fn encode(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "tenant", &self.tenant);
        push_str_field(&mut out, "set", &self.set);
        push_num_field(&mut out, "two_qubit_gates", self.two_qubit_gates as u64);
        push_num_field(&mut out, "swap_count", self.swap_count as u64);
        push_num_field(&mut out, "cache_hits", self.cache_hits as u64);
        push_num_field(&mut out, "cache_misses", self.cache_misses as u64);
        push_num_field(&mut out, "compile_micros", self.compile_micros);
        if let Some(sim) = &self.sim {
            push_num_field(&mut out, "shots", sim.shots as u64);
            push_num_field(&mut out, "simulate_micros", sim.simulate_micros);
            push_num_field(&mut out, "distinct_outcomes", sim.distinct_outcomes as u64);
            push_str_field(&mut out, "fusion", fusion_as_str(sim.fusion));
        }
        out.pop();
        out.push('}');
        out
    }
}

/// A malformed wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    reason: String,
}

impl WireError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        WireError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire message: {}", self.reason)
    }
}

impl std::error::Error for WireError {}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(value);
    out.push_str("\",");
}

fn push_num_field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(u64),
}

/// Parses a single-level JSON object with string and unsigned-integer values.
/// Escape sequences are rejected (no field this format carries needs them).
fn parse_flat_object(text: &str) -> Result<Vec<(String, Value)>, WireError> {
    let mut chars = text.chars().peekable();
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    expect_char(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return finish(chars, fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect_char(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Value::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => Value::Num(parse_number(&mut chars)?),
            Some(c) => {
                return Err(WireError::new(format!(
                    "unexpected {c:?} (values must be strings or unsigned integers)"
                )))
            }
            None => return Err(WireError::new("unexpected end of input")),
        };
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(WireError::new(format!("duplicate field `{key}`")));
        }
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => return finish(chars, fields),
            Some(c) => return Err(WireError::new(format!("expected ',' or '}}', got {c:?}"))),
            None => return Err(WireError::new("unexpected end of input")),
        }
    }
}

fn finish(
    mut chars: std::iter::Peekable<std::str::Chars<'_>>,
    fields: Vec<(String, Value)>,
) -> Result<Vec<(String, Value)>, WireError> {
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(fields),
        Some(c) => Err(WireError::new(format!(
            "trailing {c:?} after closing brace"
        ))),
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn expect_char(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    want: char,
) -> Result<(), WireError> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        Some(c) => Err(WireError::new(format!("expected {want:?}, got {c:?}"))),
        None => Err(WireError::new(format!(
            "expected {want:?}, got end of input"
        ))),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, WireError> {
    expect_char(chars, '"')?;
    let mut out = String::new();
    for c in chars.by_ref() {
        match c {
            '"' => return Ok(out),
            '\\' => return Err(WireError::new("escape sequences are not supported")),
            c => out.push(c),
        }
    }
    Err(WireError::new("unterminated string"))
}

fn parse_number(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<u64, WireError> {
    let mut out = String::new();
    while let Some(c) = chars.next_if(|c| c.is_ascii_digit()) {
        out.push(c);
    }
    out.parse()
        .map_err(|_| WireError::new(format!("integer {out:?} out of range")))
}

fn require_str<'a>(fields: &'a [(String, Value)], key: &str) -> Result<&'a str, WireError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Value::Str(s))) => Ok(s),
        Some((_, Value::Num(_))) => Err(WireError::new(format!("field `{key}` must be a string"))),
        None => Err(WireError::new(format!("missing field `{key}`"))),
    }
}

fn require_num(fields: &[(String, Value)], key: &str) -> Result<u64, WireError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, Value::Num(n))) => Ok(*n),
        Some((_, Value::Str(_))) => Err(WireError::new(format!(
            "field `{key}` must be an unsigned integer"
        ))),
        None => Err(WireError::new(format!("missing field `{key}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobRequest {
        JobRequest {
            tenant: "team-a".into(),
            set: "G3".into(),
            workload: WorkloadKind::Qaoa,
            qubits: 3,
            seed: 42,
            op: JobOp::Simulate { shots: 256 },
            fusion: None,
        }
    }

    #[test]
    fn requests_round_trip() {
        let req = sample();
        assert_eq!(JobRequest::parse(&req.encode()).unwrap(), req);

        let compile_only = JobRequest {
            op: JobOp::Compile,
            ..sample()
        };
        assert_eq!(
            JobRequest::parse(&compile_only.encode()).unwrap(),
            compile_only
        );
    }

    #[test]
    fn fusion_field_round_trips_and_defaults_to_unset() {
        for policy in [
            FusionPolicy::Off,
            FusionPolicy::Safe,
            FusionPolicy::Aggressive,
        ] {
            let req = JobRequest {
                fusion: Some(policy),
                ..sample()
            };
            let text = req.encode();
            assert!(text.contains(&format!("\"fusion\":\"{}\"", fusion_as_str(policy))));
            assert_eq!(JobRequest::parse(&text).unwrap(), req);
        }
        // Absent on the wire means "server's engine decides".
        let req = sample();
        assert!(!req.encode().contains("fusion"));
        assert_eq!(JobRequest::parse(&req.encode()).unwrap().fusion, None);
        // Unknown spellings are rejected with the reason.
        let text = r#"{"tenant":"t","set":"G3","workload":"qv","qubits":3,"seed":1,
                       "op":"compile","fusion":"turbo"}"#;
        let err = JobRequest::parse(text).unwrap_err();
        assert!(err.to_string().contains("unknown fusion"));
    }

    #[test]
    fn parser_accepts_whitespace_and_any_field_order() {
        let text = r#" { "op" : "compile" , "seed": 7, "qubits": 4,
                         "workload": "qv", "set": "S3", "tenant": "t" } "#;
        let req = JobRequest::parse(text).unwrap();
        assert_eq!(req.set, "S3");
        assert_eq!(req.op, JobOp::Compile);
        assert_eq!(req.qubits, 4);
    }

    #[test]
    fn malformed_requests_are_rejected_with_the_reason() {
        let cases = [
            ("{}", "missing field `tenant`"),
            (r#"{"tenant":"t"}"#, "missing field `set`"),
            (r#"{"tenant":""}"#, "non-empty"),
            (r#"{"tenant":3}"#, "must be a string"),
            (r#"{"tenant":"t","tenant":"u"}"#, "duplicate"),
            (r#"{"tenant":"t" "set":"G3"}"#, "expected ',' or '}'"),
            (r#"{"tenant":"t"} trailing"#, "trailing"),
            (r#"{"tenant":"t\n"}"#, "escape"),
            ("not json", "expected '{'"),
        ];
        for (text, needle) in cases {
            let err = JobRequest::parse(text).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{text:?}: {err} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn simulate_requires_shots() {
        let text =
            r#"{"tenant":"t","set":"G3","workload":"qv","qubits":3,"seed":1,"op":"simulate"}"#;
        let err = JobRequest::parse(text).unwrap_err();
        assert!(err.to_string().contains("shots"));
    }

    #[test]
    fn responses_encode_flat_json() {
        let resp = JobResponse {
            tenant: "t".into(),
            set: "G3".into(),
            two_qubit_gates: 12,
            swap_count: 2,
            cache_hits: 10,
            cache_misses: 2,
            compile_micros: 1500,
            sim: Some(SimSummary {
                shots: 256,
                simulate_micros: 900,
                distinct_outcomes: 8,
                fusion: FusionPolicy::Aggressive,
            }),
        };
        let text = resp.encode();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"two_qubit_gates\":12"));
        assert!(text.contains("\"shots\":256"));
        assert!(text.contains("\"fusion\":\"aggressive\""));
        // Compile-only responses omit the simulation fields entirely.
        let compile_only = JobResponse { sim: None, ..resp };
        assert!(!compile_only.encode().contains("shots"));
    }
}
