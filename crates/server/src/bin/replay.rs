//! Replay harness: measures the job server against serial baselines.
//!
//! A fixed, deterministic request mix (several tenants x instruction sets x
//! workload generators x seeds) is replayed three ways:
//!
//! * `serial_cold` — one-shot loop: every request builds a fresh compiler
//!   with an empty decomposition cache, the way a per-request CLI process
//!   would serve it.
//! * `serial_warm` — a long-lived single-threaded loop that keeps one warm
//!   compiler per (tenant, set), an upper bound for any serial server.
//! * `server` — the [`server::JobServer`] with its work-stealing pool and
//!   per-tenant caches, driven closed-loop at a bounded in-flight window.
//!
//! Per-request latency (p50/p99) and jobs/sec go to `BENCH_server.json`
//! (default; `--out` overrides). `--smoke` runs a tiny mix and writes no
//! file unless `--out` is given — that is what CI runs.
//!
//! `--telemetry on|off` controls whether the server run records spans and
//! per-stage latency histograms (default: on in full mode, off in smoke).
//! `--trace <path>` writes the server's span ring buffer as Chrome Trace
//! Event JSON (Perfetto-loadable) and implies `--telemetry on`.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use apps::workloads::{qaoa_circuit, qv_circuit};
use compiler::{Compiler, CompilerOptions};
use device::DeviceModel;
use qmath::RngSeed;
use server::{JobOp, JobRequest, JobServer, ServerError, WorkloadKind};
use sim::{ExecutionEngine, NoiseModel, SimJob};
use telemetry::Collector;

struct Config {
    requests: usize,
    workers: usize,
    queue_capacity: usize,
    tenants: usize,
    smoke: bool,
    out: Option<String>,
    /// Whether the server run records spans and latency histograms. Resolved
    /// from `--telemetry on|off`; defaults to on in full mode, off in smoke
    /// mode (so the CI smoke measures the un-instrumented hot path), and
    /// `--trace` forces it on.
    telemetry: bool,
    trace: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config {
        requests: 120,
        workers: 4,
        queue_capacity: 256,
        tenants: 2,
        smoke: false,
        out: None,
        telemetry: false,
        trace: None,
    };
    let mut telemetry: Option<bool> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |name: &str| -> Result<&str, String> {
            args.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag {
            "--smoke" => {
                config.smoke = true;
                i += 1;
            }
            "--requests" => {
                config.requests = parse_positive(flag, value(flag)?)?;
                i += 2;
            }
            "--workers" => {
                config.workers = parse_positive(flag, value(flag)?)?;
                i += 2;
            }
            "--queue" => {
                config.queue_capacity = parse_positive(flag, value(flag)?)?;
                i += 2;
            }
            "--tenants" => {
                config.tenants = parse_positive(flag, value(flag)?)?;
                i += 2;
            }
            "--out" => {
                config.out = Some(value(flag)?.to_string());
                i += 2;
            }
            "--telemetry" => {
                telemetry = Some(match value(flag)? {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!(
                            "invalid value {other:?} for --telemetry (expected on|off)"
                        ))
                    }
                });
                i += 2;
            }
            "--trace" => {
                let path = value(flag)?;
                // Probe the path now: a typo'd directory must fail before
                // the replay runs, not after.
                if std::fs::write(path, "").is_err() {
                    return Err(format!(
                        "invalid value {path:?} for --trace (expected a writable file path)"
                    ));
                }
                config.trace = Some(path.to_string());
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if config.smoke {
        config.requests = config.requests.min(16);
    }
    config.telemetry = config.trace.is_some() || telemetry.unwrap_or(!config.smoke);
    Ok(config)
}

fn parse_positive(flag: &str, text: &str) -> Result<usize, String> {
    match text.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "invalid value {text:?} for {flag} (expected a positive integer)"
        )),
    }
}

/// The deterministic request mix: every tenant replays the same small pool
/// of distinct workloads, alternating compile-only and simulate ops.
fn request_mix(config: &Config) -> Vec<JobRequest> {
    let sets = ["S3", "G3"];
    let seeds_per_combo = 2u64;
    let mut pool = Vec::new();
    for tenant in 0..config.tenants {
        for (s, set) in sets.iter().enumerate() {
            for seed in 0..seeds_per_combo {
                for workload in [WorkloadKind::Qv, WorkloadKind::Qaoa] {
                    let simulate = (tenant + s + seed as usize).is_multiple_of(2);
                    pool.push(JobRequest {
                        tenant: format!("tenant-{tenant}"),
                        set: set.to_string(),
                        workload,
                        qubits: 3,
                        seed: seed + 1,
                        op: if simulate {
                            JobOp::Simulate { shots: 64 }
                        } else {
                            JobOp::Compile
                        },
                        fusion: None,
                    });
                }
            }
        }
    }
    (0..config.requests)
        .map(|i| pool[i % pool.len()].clone())
        .collect()
}

fn build_circuit(request: &JobRequest) -> circuit::Circuit {
    match request.workload {
        WorkloadKind::Qv => qv_circuit(request.qubits, RngSeed(request.seed)),
        WorkloadKind::Qaoa => qaoa_circuit(request.qubits, RngSeed(request.seed)),
    }
}

fn serial_options() -> CompilerOptions {
    CompilerOptions {
        threads: 1,
        ..CompilerOptions::sweep()
    }
}

fn serve_one(compiler: &Compiler, engine: &ExecutionEngine, request: &JobRequest) {
    let compiled = compiler
        .compile(&build_circuit(request))
        .expect("the replay mix only contains compilable requests");
    if let JobOp::Simulate { shots } = request.op {
        let noise = NoiseModel::from_device(&compiled.subdevice);
        let job = SimJob::noisy(
            compiled.circuit.clone(),
            noise,
            shots,
            RngSeed(request.seed),
        );
        engine.run_job(&job);
    }
}

struct RunStats {
    p50: Duration,
    p99: Duration,
    jobs_per_sec: f64,
}

fn stats_from(mut latencies: Vec<Duration>, total: Duration) -> RunStats {
    let n = latencies.len();
    latencies.sort_unstable();
    let percentile = |p: f64| latencies[(((n - 1) as f64) * p).round() as usize];
    RunStats {
        p50: percentile(0.50),
        p99: percentile(0.99),
        jobs_per_sec: n as f64 / total.as_secs_f64(),
    }
}

/// One-shot loop: fresh compiler (cold cache) per request.
fn run_serial_cold(device: &DeviceModel, requests: &[JobRequest]) -> RunStats {
    let engine = ExecutionEngine::builder().threads(1).build().unwrap();
    let started = Instant::now();
    let latencies = requests
        .iter()
        .map(|request| {
            let job_started = Instant::now();
            let compiler = Compiler::for_device(device.clone())
                .instruction_set_named(&request.set)
                .options(serial_options())
                .build()
                .expect("Table II set names resolve");
            serve_one(&compiler, &engine, request);
            job_started.elapsed()
        })
        .collect();
    stats_from(latencies, started.elapsed())
}

/// Long-lived serial loop: one warm compiler per (tenant, set).
fn run_serial_warm(device: &DeviceModel, requests: &[JobRequest]) -> RunStats {
    let engine = ExecutionEngine::builder().threads(1).build().unwrap();
    let mut compilers: HashMap<(String, String), Compiler> = HashMap::new();
    let started = Instant::now();
    let latencies = requests
        .iter()
        .map(|request| {
            let job_started = Instant::now();
            let key = (request.tenant.clone(), request.set.clone());
            let compiler = compilers.entry(key).or_insert_with(|| {
                Compiler::for_device(device.clone())
                    .instruction_set_named(&request.set)
                    .options(serial_options())
                    .build()
                    .expect("Table II set names resolve")
            });
            serve_one(compiler, &engine, request);
            job_started.elapsed()
        })
        .collect();
    stats_from(latencies, started.elapsed())
}

/// Closed-loop replay against the job server, plus a panic-isolation probe.
fn run_server(
    device: &DeviceModel,
    requests: &[JobRequest],
    config: &Config,
) -> (RunStats, String, bool) {
    // The collector is always attached; it records only when --telemetry
    // resolves to on. The disabled path is a single atomic load per span
    // site, which is what the <2% overhead acceptance bound measures.
    let collector = Arc::new(Collector::new());
    collector.set_enabled(config.telemetry);
    let server = JobServer::builder(device.clone())
        .workers(config.workers)
        .queue_capacity(config.queue_capacity)
        .options(CompilerOptions::sweep())
        .telemetry(collector)
        .build()
        .expect("replay config validated at arg parse time");

    // Mid-run, inject a job that panics on its worker: the probe passes when
    // the panic comes back as a typed error and the whole replay still
    // completes. (The panic message printed by the std hook is expected.)
    eprintln!("note: the worker panic printed below is an intentional isolation probe");
    let probe = server
        .submit_task(|| panic!("replay harness isolation probe"))
        .expect("queue has room for the probe");

    let window = (config.workers * 2).max(2);
    let mut in_flight: Vec<(Instant, server::JobTicket)> = Vec::new();
    let mut latencies = Vec::with_capacity(requests.len());
    let started = Instant::now();
    for request in requests {
        let ticket = loop {
            match server.submit_request(request.clone()) {
                Ok(ticket) => break ticket,
                Err(ServerError::Overloaded { .. }) => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("replay submission failed: {e}"),
            }
        };
        in_flight.push((Instant::now(), ticket));
        if in_flight.len() >= window {
            let (submitted, oldest) = in_flight.remove(0);
            oldest.wait().expect("replay jobs compile and simulate");
            latencies.push(submitted.elapsed());
        }
    }
    for (submitted, ticket) in in_flight {
        ticket.wait().expect("replay jobs compile and simulate");
        latencies.push(submitted.elapsed());
    }
    let total = started.elapsed();

    let probe_isolated = matches!(probe.wait(), Err(ServerError::Panicked { .. }));
    let metrics_json = server.metrics_json();
    if let Some(path) = &config.trace {
        std::fs::write(path, server.trace_json()).expect("trace path probed at arg parse time");
        println!("wrote trace {path}");
    }
    server.shutdown();
    (stats_from(latencies, total), metrics_json, probe_isolated)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("replay: {message}");
            std::process::exit(2);
        }
    };
    let device = DeviceModel::aspen8(RngSeed(1));
    let requests = request_mix(&config);
    let distinct = requests.len().min({
        let sets = 2;
        let workloads = 2;
        let seeds = 2;
        config.tenants * sets * workloads * seeds
    });

    println!(
        "replaying {} requests ({} distinct) on {} workers, queue capacity {}...",
        requests.len(),
        distinct,
        config.workers,
        config.queue_capacity
    );
    let cold = run_serial_cold(&device, &requests);
    println!(
        "serial_cold:  p50 {:>8.1} us  p99 {:>8.1} us  {:>6.1} jobs/s",
        cold.p50.as_secs_f64() * 1e6,
        cold.p99.as_secs_f64() * 1e6,
        cold.jobs_per_sec
    );
    let warm = run_serial_warm(&device, &requests);
    println!(
        "serial_warm:  p50 {:>8.1} us  p99 {:>8.1} us  {:>6.1} jobs/s",
        warm.p50.as_secs_f64() * 1e6,
        warm.p99.as_secs_f64() * 1e6,
        warm.jobs_per_sec
    );
    let (served, metrics_json, probe_isolated) = run_server(&device, &requests, &config);
    println!(
        "server:       p50 {:>8.1} us  p99 {:>8.1} us  {:>6.1} jobs/s",
        served.p50.as_secs_f64() * 1e6,
        served.p99.as_secs_f64() * 1e6,
        served.jobs_per_sec
    );
    let speedup = served.jobs_per_sec / cold.jobs_per_sec;
    println!("speedup vs serial_cold: {speedup:.2}x; panic probe isolated: {probe_isolated}");
    if !probe_isolated {
        eprintln!("replay: panic probe was NOT isolated");
        std::process::exit(1);
    }
    if config.smoke && speedup <= 1.0 {
        // In smoke mode the mix is tiny; warn but do not fail CI on noise.
        eprintln!("replay: warning: server did not beat serial_cold on this tiny smoke mix");
    }

    let out = match (&config.out, config.smoke) {
        (Some(path), _) => Some(path.clone()),
        (None, false) => Some("BENCH_server.json".to_string()),
        (None, true) => None,
    };
    if let Some(path) = out {
        let json = render_json(
            &config,
            &requests,
            distinct,
            &cold,
            &warm,
            &served,
            speedup,
            probe_isolated,
            &metrics_json,
        );
        std::fs::write(&path, json).expect("write benchmark output");
        println!("wrote {path}");
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &Config,
    requests: &[JobRequest],
    distinct: usize,
    cold: &RunStats,
    warm: &RunStats,
    served: &RunStats,
    speedup: f64,
    probe_isolated: bool,
    metrics_json: &str,
) -> String {
    let run = |stats: &RunStats| {
        format!(
            "{{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"jobs_per_sec\": {:.2}}}",
            stats.p50.as_secs_f64() * 1e6,
            stats.p99.as_secs_f64() * 1e6,
            stats.jobs_per_sec
        )
    };
    let metrics_indented = metrics_json.replace('\n', "\n  ");
    format!(
        r#"{{
  "description": "Replay harness for the compile-and-simulate job server (crates/server). A deterministic request mix (tenants x {{S3, G3}} x {{qv, qaoa}} x seeds, 3-qubit workloads on Aspen-8 calibration, half compile-only and half compile+64-shot simulate) is replayed three ways. serial_cold = fresh compiler and empty decomposition cache per request (a per-request CLI process). serial_warm = long-lived serial loop with one warm compiler per (tenant, set). server = JobServer with a bounded work-stealing queue, per-tenant caches and panic-isolated workers, driven closed-loop. Latencies are per-request submit-to-complete wall-clock.",
  "config": {{"requests": {requests_len}, "distinct_requests": {distinct}, "workers": {workers}, "queue_capacity": {queue}, "tenants": {tenants}, "telemetry": {telemetry}}},
  "serial_cold": {cold},
  "serial_warm": {warm},
  "server": {server},
  "acceptance": {{
    "criterion": "server jobs/sec beats the serial_cold job loop, and a deliberately panicking job resolves as a typed error without aborting the replay",
    "speedup_vs_serial_cold": {speedup:.2},
    "panic_probe_isolated": {probe_isolated},
    "met": {met}
  }},
  "server_metrics": {metrics},
  "notes": [
    "The benchmark container exposes a single CPU core (nproc = 1), so the work-stealing pool cannot add parallel speedup here: the server's win over serial_cold comes from persistent per-tenant decomposition caches (every repeated request is a cache hit instead of a cold NuOp decomposition). On multi-core hosts cross-job scheduling stacks on top of that.",
    "serial_warm is the upper bound for any single-threaded server; on one core the JobServer tracks it to within queueing overhead while adding admission control, tenant isolation and panic isolation.",
    "Server latencies include queueing: the closed-loop driver keeps 2x workers jobs in flight, so on one core p99 reflects time spent waiting behind the window, not service time. jobs/sec is the like-for-like comparison with the serial loops.",
    "The panic probe is injected mid-run via submit_task; its worker prints the standard panic message to stderr and keeps serving."
  ]
}}
"#,
        requests_len = requests.len(),
        workers = config.workers,
        queue = config.queue_capacity,
        tenants = config.tenants,
        telemetry = config.telemetry,
        cold = run(cold),
        warm = run(warm),
        server = run(served),
        met = speedup > 1.0 && probe_isolated,
        metrics = metrics_indented,
    )
}
