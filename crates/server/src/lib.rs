//! Compile-and-simulate job server.
//!
//! The paper's experiments are batch sweeps; this crate wraps the same
//! pipeline — [`compiler::Compiler`] in front of [`sim::ExecutionEngine`] —
//! in a long-running, multi-tenant service:
//!
//! * **Bounded work-stealing queue** ([`queue`]): jobs from every tenant are
//!   spread round-robin over per-worker deques; idle workers steal, so one
//!   slow compile cannot idle the pool. Admission is bounded — once the
//!   queue holds `queue_capacity` jobs, submissions fail fast with
//!   [`ServerError::Overloaded`] backpressure instead of queueing unbounded
//!   latency.
//! * **Per-tenant cache namespaces**: each tenant owns a bounded
//!   [`nuop_core::DecompositionCache`] shared by its per-instruction-set
//!   compilers. Tenants never see each other's cache traffic, and the
//!   metrics endpoint reports hit rates and evictions per namespace.
//! * **Panic-isolated workers** ([`server`]): every job body runs inside
//!   `catch_unwind`. A panicking job resolves its own ticket with
//!   [`ServerError::Panicked`] (carrying the original message) while the
//!   worker thread and every other job carry on untouched.
//! * **Wire format** ([`wire`]): requests name deterministic workloads
//!   (tenant, instruction set, generator, qubits, seed) in flat JSON, so a
//!   few scalars reproduce any circuit on both ends of the wire.
//! * **Metrics endpoint** ([`metrics`]): [`JobServer::metrics_json`] serves
//!   queue depth, completion/failure/panic counts, compile and simulate
//!   wall-clock, per-stage latency quantiles (p50/p90/p99 for queue wait,
//!   compile, simulate and per tenant, when telemetry is attached), and
//!   per-tenant cache statistics as JSON.
//! * **Trace endpoint** ([`JobServer::trace_json`]): with a
//!   [`telemetry::Collector`] attached via [`ServerBuilder::telemetry`],
//!   every job leaves a `job → queue_wait / compile / simulate → shard`
//!   span tree; the endpoint renders the most recent completed spans as
//!   Chrome Trace Event JSON loadable in Perfetto.
//!
//! The `replay` binary (`cargo run --release -p server --bin replay`) replays
//! a recorded request mix against the server and a serial baseline, writing
//! p50/p99 latency and jobs/sec to `BENCH_server.json`.
//!
//! ```
//! use device::DeviceModel;
//! use compiler::CompilerOptions;
//! use server::{JobOp, JobRequest, JobServer, WorkloadKind};
//!
//! let server = JobServer::builder(DeviceModel::ideal(3, 0.99))
//!     .options(CompilerOptions::sweep())
//!     .build()
//!     .unwrap();
//! // Wire text and typed requests land on the same queue.
//! let ticket = server
//!     .submit_wire(
//!         r#"{"tenant":"demo","set":"S3","workload":"qaoa",
//!             "qubits":3,"seed":7,"op":"simulate","shots":128}"#,
//!     )
//!     .unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.sim.unwrap().shots, 128);
//! # let _ = JobRequest { tenant: String::new(), set: String::new(),
//! #     workload: WorkloadKind::Qv, qubits: 1, seed: 0, op: JobOp::Compile, fusion: None };
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod error;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod wire;

pub use error::ServerError;
pub use metrics::{LatencyStats, MetricsSnapshot, ServerMetrics, TenantCacheStats};
pub use queue::{Scheduler, SubmitError};
pub use server::{JobServer, JobTicket, ServerBuilder, ServerConfigError, MAX_SIM_QUBITS};
pub use wire::{JobOp, JobRequest, JobResponse, SimSummary, WireError, WorkloadKind};
