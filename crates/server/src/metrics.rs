//! Server-wide counters and the metrics endpoint payload.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use sim::FusionPolicy;

/// Monotonic counters updated by the admission path and the workers. All
/// updates are relaxed atomics: metrics tolerate being a moment stale, they
/// must never contend with the jobs they measure.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    pub(crate) submitted: AtomicUsize,
    pub(crate) rejected: AtomicUsize,
    pub(crate) completed: AtomicUsize,
    pub(crate) failed: AtomicUsize,
    pub(crate) panicked: AtomicUsize,
    pub(crate) shots_total: AtomicUsize,
    pub(crate) compile_nanos: AtomicU64,
    pub(crate) simulate_nanos: AtomicU64,
    pub(crate) verify_errors: AtomicUsize,
    pub(crate) verify_warnings: AtomicUsize,
    /// Telemetry span id of the most recent job that produced an error-level
    /// verifier finding (0 when none has). Lets a metrics consumer jump from
    /// a non-zero `verify_errors` to the exact traced request.
    pub(crate) verify_last_error_span: AtomicU64,
    /// Simulate jobs per fusion policy, indexed by [`fusion_index`].
    pub(crate) sim_by_fusion: [AtomicUsize; 3],
}

/// Stable index of a fusion policy in the per-policy counter arrays.
pub(crate) fn fusion_index(policy: FusionPolicy) -> usize {
    match policy {
        FusionPolicy::Off => 0,
        FusionPolicy::Safe => 1,
        FusionPolicy::Aggressive => 2,
    }
}

impl ServerMetrics {
    pub(crate) fn record_compile(&self, elapsed: Duration) {
        self.compile_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_simulate(&self, elapsed: Duration, shots: usize, policy: FusionPolicy) {
        self.simulate_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.shots_total.fetch_add(shots, Ordering::Relaxed);
        self.sim_by_fusion[fusion_index(policy)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_verify(&self, diagnostics: &[verify::Diagnostic]) {
        let errors = diagnostics
            .iter()
            .filter(|d| d.severity() == verify::Severity::Error)
            .count();
        let warnings = diagnostics
            .iter()
            .filter(|d| d.severity() == verify::Severity::Warning)
            .count();
        self.verify_errors.fetch_add(errors, Ordering::Relaxed);
        self.verify_warnings.fetch_add(warnings, Ordering::Relaxed);
        // Remember which traced job produced the latest error so the metrics
        // endpoint can point at the exact request, not just a count.
        if let Some(span) = diagnostics
            .iter()
            .filter(|d| d.severity() == verify::Severity::Error)
            .filter_map(verify::Diagnostic::trace_span)
            .next_back()
        {
            self.verify_last_error_span.store(span, Ordering::Relaxed);
        }
    }
}

/// Cache statistics of one tenant namespace.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCacheStats {
    /// Tenant name.
    pub tenant: String,
    /// Entries currently cached.
    pub entries: usize,
    /// Lifetime cache hits.
    pub hits: usize,
    /// Lifetime cache misses.
    pub misses: usize,
    /// Lifetime FIFO evictions.
    pub evictions: usize,
}

impl TenantCacheStats {
    /// Hits over total lookups, `0.0` before any traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Latency distribution of one pipeline stage, summarised from the
/// telemetry registry's log-bucketed histogram for that stage. All values
/// are microseconds except `count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    /// Stage name (`queue_wait`, `compile`, `simulate`, `tenant.<name>`).
    pub stage: String,
    /// Samples recorded.
    pub count: u64,
    /// Estimated median, µs.
    pub p50_micros: u64,
    /// Estimated 90th percentile, µs.
    pub p90_micros: u64,
    /// Estimated 99th percentile, µs.
    pub p99_micros: u64,
    /// Largest recorded sample, µs.
    pub max_micros: u64,
}

/// Summarises every `latency.*` histogram in a telemetry registry, sorted by
/// stage name. Returns an empty list when the server runs without telemetry.
pub(crate) fn latency_stats(registry: &telemetry::Registry) -> Vec<LatencyStats> {
    let mut stats: Vec<LatencyStats> = registry
        .histograms()
        .into_iter()
        .filter_map(|(name, histogram)| {
            let stage = name.strip_prefix("latency.")?;
            Some(LatencyStats {
                stage: stage.to_string(),
                count: histogram.count(),
                p50_micros: histogram.p50(),
                p90_micros: histogram.p90(),
                p99_micros: histogram.p99(),
                max_micros: histogram.max(),
            })
        })
        .collect();
    stats.sort_by(|a, b| a.stage.cmp(&b.stage));
    stats
}

/// A point-in-time copy of every server counter — what the metrics endpoint
/// serves.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Jobs admitted to the queue.
    pub submitted: usize,
    /// Jobs rejected at admission (queue full or server shut down).
    pub rejected: usize,
    /// Jobs that completed with a response.
    pub completed: usize,
    /// Jobs that completed with a typed error.
    pub failed: usize,
    /// Jobs whose worker panicked (the worker survived).
    pub panicked: usize,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Measurement shots executed across all simulate jobs.
    pub shots_total: usize,
    /// Simulate jobs that ran with `FusionPolicy::Off`.
    pub sim_fusion_off: usize,
    /// Simulate jobs that ran with `FusionPolicy::Safe`.
    pub sim_fusion_safe: usize,
    /// Simulate jobs that ran with `FusionPolicy::Aggressive`.
    pub sim_fusion_aggressive: usize,
    /// Total wall-clock spent compiling, across all workers.
    pub compile_time: Duration,
    /// Total wall-clock spent simulating, across all workers.
    pub simulate_time: Duration,
    /// Error-level findings of the static verifier across all validated jobs
    /// (0 unless the server was built with `validate(true)`).
    pub verify_errors: usize,
    /// Warning-level findings of the static verifier across all validated
    /// jobs.
    pub verify_warnings: usize,
    /// Telemetry span id of the most recent job with an error-level verifier
    /// finding (0 when none, or when telemetry is off).
    pub verify_last_error_span: u64,
    /// Jobs claimed by work-stealing rather than a worker's own deque.
    pub queue_steals: u64,
    /// Per-stage latency distributions from the telemetry registry, sorted
    /// by stage name; empty when the server runs without telemetry.
    pub latency: Vec<LatencyStats>,
    /// Per-tenant decomposition-cache statistics, sorted by tenant name.
    pub tenants: Vec<TenantCacheStats>,
}

impl MetricsSnapshot {
    pub(crate) fn from_counters(
        metrics: &ServerMetrics,
        queue_depth: usize,
        workers: usize,
        queue_steals: u64,
        latency: Vec<LatencyStats>,
        mut tenants: Vec<TenantCacheStats>,
    ) -> Self {
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        MetricsSnapshot {
            submitted: metrics.submitted.load(Ordering::Relaxed),
            rejected: metrics.rejected.load(Ordering::Relaxed),
            completed: metrics.completed.load(Ordering::Relaxed),
            failed: metrics.failed.load(Ordering::Relaxed),
            panicked: metrics.panicked.load(Ordering::Relaxed),
            queue_depth,
            workers,
            shots_total: metrics.shots_total.load(Ordering::Relaxed),
            sim_fusion_off: metrics.sim_by_fusion[0].load(Ordering::Relaxed),
            sim_fusion_safe: metrics.sim_by_fusion[1].load(Ordering::Relaxed),
            sim_fusion_aggressive: metrics.sim_by_fusion[2].load(Ordering::Relaxed),
            compile_time: Duration::from_nanos(metrics.compile_nanos.load(Ordering::Relaxed)),
            simulate_time: Duration::from_nanos(metrics.simulate_nanos.load(Ordering::Relaxed)),
            verify_errors: metrics.verify_errors.load(Ordering::Relaxed),
            verify_warnings: metrics.verify_warnings.load(Ordering::Relaxed),
            verify_last_error_span: metrics.verify_last_error_span.load(Ordering::Relaxed),
            queue_steals,
            latency,
            tenants,
        }
    }

    /// Renders the snapshot as JSON — the body a `/metrics` route would
    /// serve. Hand-rolled for the same reason as the wire codec (the vendored
    /// `serde` is marker-only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        out.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!("  \"failed\": {},\n", self.failed));
        out.push_str(&format!("  \"panicked\": {},\n", self.panicked));
        out.push_str(&format!("  \"queue_depth\": {},\n", self.queue_depth));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"shots_total\": {},\n", self.shots_total));
        out.push_str(&format!("  \"sim_fusion_off\": {},\n", self.sim_fusion_off));
        out.push_str(&format!(
            "  \"sim_fusion_safe\": {},\n",
            self.sim_fusion_safe
        ));
        out.push_str(&format!(
            "  \"sim_fusion_aggressive\": {},\n",
            self.sim_fusion_aggressive
        ));
        out.push_str(&format!(
            "  \"compile_micros\": {},\n",
            self.compile_time.as_micros()
        ));
        out.push_str(&format!(
            "  \"simulate_micros\": {},\n",
            self.simulate_time.as_micros()
        ));
        out.push_str(&format!("  \"verify_errors\": {},\n", self.verify_errors));
        out.push_str(&format!(
            "  \"verify_warnings\": {},\n",
            self.verify_warnings
        ));
        out.push_str(&format!(
            "  \"verify_last_error_span\": {},\n",
            self.verify_last_error_span
        ));
        out.push_str(&format!("  \"queue_steals\": {},\n", self.queue_steals));
        out.push_str("  \"latency\": {");
        for (i, stage) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"p50_micros\": {}, \"p90_micros\": {}, \"p99_micros\": {}, \"max_micros\": {}}}",
                stage.stage, stage.count, stage.p50_micros, stage.p90_micros, stage.p99_micros, stage.max_micros
            ));
        }
        if !self.latency.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"tenants\": [");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"tenant\": \"{}\", \"entries\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}}",
                t.tenant, t.entries, t.hits, t.misses, t.evictions, t.hit_rate()
            ));
        }
        if !self.tenants.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_traffic() {
        let stats = TenantCacheStats {
            tenant: "t".into(),
            entries: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        assert_eq!(stats.hit_rate(), 0.0);
        let stats = TenantCacheStats {
            hits: 3,
            misses: 1,
            ..stats
        };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_lists_tenants_sorted() {
        let metrics = ServerMetrics::default();
        metrics.submitted.store(5, Ordering::Relaxed);
        let snap = MetricsSnapshot::from_counters(
            &metrics,
            1,
            2,
            0,
            Vec::new(),
            vec![
                TenantCacheStats {
                    tenant: "zeta".into(),
                    entries: 1,
                    hits: 1,
                    misses: 1,
                    evictions: 0,
                },
                TenantCacheStats {
                    tenant: "alpha".into(),
                    entries: 2,
                    hits: 4,
                    misses: 0,
                    evictions: 1,
                },
            ],
        );
        assert_eq!(snap.tenants[0].tenant, "alpha");
        let json = snap.to_json();
        assert!(json.contains("\"submitted\": 5"));
        assert!(json.find("alpha").unwrap() < json.find("zeta").unwrap());
        assert!(json.contains("\"hit_rate\": 0.5000"));
        // Without telemetry the latency object is present but empty.
        assert!(json.contains("\"latency\": {}"));
        assert!(json.contains("\"queue_steals\": 0"));
    }

    #[test]
    fn latency_stats_summarise_only_latency_histograms() {
        let registry = telemetry::Registry::new();
        registry.histogram("latency.simulate").record(100);
        registry.histogram("latency.compile").record(10);
        registry.histogram("latency.compile").record(20);
        registry.histogram("engine.shots").record(999); // not a latency stage
        let stats = latency_stats(&registry);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].stage, "compile");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[1].stage, "simulate");
        assert_eq!(stats[1].max_micros, 100);
        assert!(stats[1].p50_micros >= 64 && stats[1].p50_micros <= 127);
    }

    #[test]
    fn latency_json_renders_per_stage_quantiles() {
        let registry = telemetry::Registry::new();
        for v in [10, 20, 40, 80] {
            registry.histogram("latency.queue_wait").record(v);
        }
        let metrics = ServerMetrics::default();
        let snap =
            MetricsSnapshot::from_counters(&metrics, 0, 1, 3, latency_stats(&registry), vec![]);
        assert_eq!(snap.queue_steals, 3);
        let json = snap.to_json();
        assert!(json.contains("\"queue_wait\": {\"count\": 4"));
        assert!(json.contains("\"p50_micros\":"));
        assert!(json.contains("\"p99_micros\":"));
        assert!(json.contains("\"queue_steals\": 3"));
    }

    #[test]
    fn record_verify_remembers_the_last_error_trace_span() {
        let metrics = ServerMetrics::default();
        metrics.record_verify(&[
            verify::Diagnostic::warning("rule/w", "odd").with_trace_span(7),
            verify::Diagnostic::error("rule/e", "bad").with_trace_span(42),
        ]);
        assert_eq!(metrics.verify_errors.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.verify_last_error_span.load(Ordering::Relaxed), 42);
        // Warnings alone never overwrite the remembered error span.
        metrics.record_verify(&[verify::Diagnostic::warning("rule/w", "odd").with_trace_span(9)]);
        assert_eq!(metrics.verify_last_error_span.load(Ordering::Relaxed), 42);
    }
}
