//! Bounded work-stealing job queue.
//!
//! Submitted jobs are placed round-robin onto per-worker deques. Each worker
//! drains its own deque FIFO (oldest job first, for latency fairness) and,
//! when empty, steals the *newest* job from the back of a sibling's deque —
//! the classic split that keeps owners and thieves off the same end. Every
//! deque has its own lock, so on a multi-core host workers only contend when
//! actually stealing.
//!
//! Admission control is a hard bound: once `capacity` jobs are queued,
//! [`Scheduler::submit`] fails immediately with [`SubmitError::Overloaded`]
//! instead of letting latency grow without limit. Sleeping workers park on a
//! `Condvar` (the vendored `parking_lot` shim has no condvar, so the sleep
//! path uses `std::sync` with explicit poison recovery).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

use parking_lot::Mutex;

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// `capacity` jobs are already queued.
    Overloaded {
        /// The configured admission bound.
        capacity: usize,
    },
    /// [`Scheduler::shutdown`] was called.
    ShutDown,
}

/// A bounded multi-queue scheduler handing jobs of type `T` to `workers`
/// consumers.
#[derive(Debug)]
pub struct Scheduler<T> {
    locals: Vec<Mutex<VecDeque<T>>>,
    queued: AtomicUsize,
    capacity: usize,
    next_queue: AtomicUsize,
    steals: AtomicU64,
    shutdown: AtomicBool,
    sleep: StdMutex<()>,
    wake: Condvar,
}

impl<T> Scheduler<T> {
    /// A scheduler feeding `workers` consumers, admitting at most `capacity`
    /// queued jobs.
    ///
    /// # Panics
    /// Panics if `workers` or `capacity` is zero (the server validates both
    /// at build time).
    pub fn new(workers: usize, capacity: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        assert!(capacity > 0, "scheduler needs a positive capacity");
        Scheduler {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            capacity,
            next_queue: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sleep: StdMutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Number of consumers this scheduler feeds.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (admitted but not yet claimed by a worker).
    pub fn len(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of jobs claimed by stealing from a sibling's deque
    /// rather than from the claiming worker's own queue.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Admits `job`, or rejects it when the queue is full or shut down.
    pub fn submit(&self, job: T) -> Result<(), SubmitError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShutDown);
        }
        // Reserve a slot first so concurrent submitters cannot overshoot the
        // bound between a load and a store.
        if self
            .queued
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |queued| {
                (queued < self.capacity).then_some(queued + 1)
            })
            .is_err()
        {
            return Err(SubmitError::Overloaded {
                capacity: self.capacity,
            });
        }
        let target = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.locals.len();
        self.locals[target].lock().push_back(job);
        self.wake.notify_one();
        Ok(())
    }

    /// Claims the next job for worker `worker`: own deque first (FIFO), then
    /// steal the newest job from a sibling. Blocks while the queue is empty;
    /// returns `None` once the scheduler is shut down and drained.
    pub fn pop(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(job) = self.try_pop(worker) {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                // Re-check after observing shutdown: a job may have been
                // admitted just before the flag flipped.
                if let Some(job) = self.try_pop(worker) {
                    self.queued.fetch_sub(1, Ordering::AcqRel);
                    return Some(job);
                }
                return None;
            }
            // Sleep with a timeout instead of relying purely on wakeups:
            // a missed notify (submit between our try_pop and the wait)
            // then only costs one tick of latency, never a hang.
            let guard = self
                .sleep
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let _ = self
                .wake
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn try_pop(&self, worker: usize) -> Option<T> {
        if let Some(job) = self.locals[worker].lock().pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            if let Some(job) = self.locals[victim].lock().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Stops admission and wakes every sleeping worker. Already-queued jobs
    /// are still handed out; workers see `None` once the queue drains.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn submissions_beyond_capacity_are_rejected() {
        let s: Scheduler<usize> = Scheduler::new(2, 3);
        for i in 0..3 {
            s.submit(i).unwrap();
        }
        assert_eq!(s.submit(99), Err(SubmitError::Overloaded { capacity: 3 }));
        assert_eq!(s.len(), 3);
        // Draining one job frees one admission slot.
        assert!(s.pop(0).is_some());
        s.submit(99).unwrap();
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_the_backlog() {
        let s: Scheduler<usize> = Scheduler::new(1, 8);
        s.submit(1).unwrap();
        s.submit(2).unwrap();
        s.shutdown();
        assert_eq!(s.submit(3), Err(SubmitError::ShutDown));
        assert_eq!(s.pop(0), Some(1));
        assert_eq!(s.pop(0), Some(2));
        assert_eq!(s.pop(0), None);
    }

    #[test]
    fn idle_workers_steal_from_busy_siblings() {
        // With 4 workers and round-robin placement, jobs land on every deque;
        // worker 0 alone must still be able to claim all of them.
        let s: Scheduler<usize> = Scheduler::new(4, 16);
        for i in 0..8 {
            s.submit(i).unwrap();
        }
        let mut got: Vec<usize> = (0..8).map(|_| s.pop(0).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        // Round-robin put 2 jobs on worker 0's own deque; the other 6 were
        // stolen from siblings and the counter says so.
        assert_eq!(s.steals(), 6);
    }

    #[test]
    fn concurrent_submitters_never_overshoot_the_bound() {
        let s: Arc<Scheduler<usize>> = Arc::new(Scheduler::new(2, 10));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..10 {
                        let _ = s.submit(t * 10 + i);
                    }
                });
            }
        });
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn blocking_pop_wakes_on_late_submission() {
        let s: Arc<Scheduler<usize>> = Arc::new(Scheduler::new(1, 4));
        std::thread::scope(|scope| {
            let popper = {
                let s = Arc::clone(&s);
                scope.spawn(move || s.pop(0))
            };
            std::thread::sleep(Duration::from_millis(20));
            s.submit(7).unwrap();
            assert_eq!(popper.join().unwrap(), Some(7));
        });
    }
}
