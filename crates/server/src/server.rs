//! The job server: admission, per-tenant compiler state, panic-isolated
//! workers, and the metrics endpoint.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Instant;

use apps::workloads::{qaoa_circuit, qv_circuit};
use compiler::{Compiler, CompilerOptions};
use device::DeviceModel;
use nuop_core::DecompositionCache;
use parking_lot::Mutex;
use qmath::RngSeed;
use sim::{ExecutionEngine, FusionPolicy, NoiseModel, SimJob};
use telemetry::{Collector, Span, SpanId};

use crate::error::ServerError;
use crate::metrics::{
    fusion_index, latency_stats, MetricsSnapshot, ServerMetrics, TenantCacheStats,
};
use crate::queue::{Scheduler, SubmitError};
use crate::wire::{JobOp, JobRequest, JobResponse, SimSummary, WorkloadKind};

/// Largest register a simulate request may ask for: beyond this the dense
/// statevector no longer fits a request-serving memory budget.
pub const MAX_SIM_QUBITS: usize = 20;

/// An invalid server configuration, reported by [`ServerBuilder::build`]
/// instead of panicking (the same contract as `sim`'s `EngineConfigError`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerConfigError {
    /// `workers(0)` was requested.
    ZeroWorkers,
    /// `queue_capacity(0)` was requested.
    ZeroQueueCapacity,
    /// `tenant_cache_capacity(0)` was requested.
    ZeroTenantCacheCapacity,
}

impl std::fmt::Display for ServerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerConfigError::ZeroWorkers => write!(f, "worker count must be positive (got 0)"),
            ServerConfigError::ZeroQueueCapacity => {
                write!(f, "queue capacity must be positive (got 0)")
            }
            ServerConfigError::ZeroTenantCacheCapacity => {
                write!(f, "tenant cache capacity must be positive (got 0)")
            }
        }
    }
}

impl std::error::Error for ServerConfigError {}

/// One tenant's namespace: a bounded decomposition cache plus one lazily
/// built [`Compiler`] per instruction set, all sharing that cache.
struct Tenant {
    cache: Arc<DecompositionCache>,
    compilers: Mutex<HashMap<String, Arc<Compiler>>>,
}

impl Tenant {
    fn new(cache_capacity: usize) -> Self {
        Tenant {
            cache: Arc::new(DecompositionCache::with_capacity(cache_capacity)),
            compilers: Mutex::new(HashMap::new()),
        }
    }
}

type JobBody = Box<dyn FnOnce() -> Result<JobResponse, ServerError> + Send + 'static>;

struct QueuedJob {
    ticket: Arc<TicketInner>,
    body: JobBody,
}

struct Shared {
    scheduler: Scheduler<QueuedJob>,
    device: DeviceModel,
    options: CompilerOptions,
    tenant_cache_capacity: usize,
    engine: ExecutionEngine,
    /// Engine variants sharing the base engine's configuration but pinned to
    /// one fusion policy each (indexed by [`fusion_index`]); serves requests
    /// that name a policy on the wire.
    fusion_engines: [ExecutionEngine; 3],
    validate: bool,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    metrics: ServerMetrics,
    /// Telemetry sink shared by the server, its per-tenant compilers and its
    /// engines; `None` when the server was built without telemetry.
    collector: Option<Arc<Collector>>,
}

impl Shared {
    fn tenant(&self, name: &str) -> Arc<Tenant> {
        let mut map = self.tenants.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Tenant::new(self.tenant_cache_capacity))),
        )
    }

    fn compiler_for(&self, tenant: &Tenant, set: &str) -> Result<Arc<Compiler>, ServerError> {
        let key = set.to_ascii_uppercase();
        let mut map = tenant.compilers.lock();
        if let Some(compiler) = map.get(&key) {
            return Ok(Arc::clone(compiler));
        }
        let mut builder = Compiler::for_device(self.device.clone())
            .instruction_set_named(set)
            .shared_cache(Arc::clone(&tenant.cache))
            .options(self.options.clone());
        if let Some(collector) = &self.collector {
            builder = builder.telemetry(Arc::clone(collector));
        }
        let compiler = Arc::new(builder.build()?);
        map.insert(key, Arc::clone(&compiler));
        Ok(compiler)
    }

    /// Records `elapsed` into the registry histogram `latency.<stage>`, in
    /// microseconds. A no-op without an enabled collector.
    fn record_latency(&self, stage: &str, elapsed: std::time::Duration) {
        if let Some(collector) = self.collector.as_ref().filter(|c| c.enabled()) {
            collector
                .registry()
                .histogram(&format!("latency.{stage}"))
                .record(elapsed.as_micros() as u64);
        }
    }

    /// Runs one job on a worker thread. `admitted` is the admission
    /// timestamp, captured in [`JobServer::submit_request`]; the job span
    /// opens there so queue wait is inside the job span, as a synthesized
    /// `queue_wait` child covering admission → worker pickup.
    fn execute(&self, request: &JobRequest, admitted: Instant) -> Result<JobResponse, ServerError> {
        let collector = self.collector.as_ref();
        let mut job_span = Span::enter_at(collector, "job", SpanId::NONE, admitted);
        let job_id = job_span.id();
        if job_span.recording() {
            job_span.set_attr("qubits", request.qubits as u64);
            job_span.set_attr("seed", request.seed);
            job_span.set_tag(
                "workload",
                match request.workload {
                    WorkloadKind::Qv => "qv",
                    WorkloadKind::Qaoa => "qaoa",
                },
            );
        }
        let queue_wait = Span::enter_at(collector, "queue_wait", job_id, admitted).finish();
        self.record_latency("queue_wait", queue_wait);

        let tenant = self.tenant(&request.tenant);
        let compiler = self.compiler_for(&tenant, &request.set)?;
        let circuit = match request.workload {
            WorkloadKind::Qv => qv_circuit(request.qubits, RngSeed(request.seed)),
            WorkloadKind::Qaoa => qaoa_circuit(request.qubits, RngSeed(request.seed)),
        };
        let compile_span = Span::enter_child(collector, "compile", job_id);
        let (compiled, report) =
            compiler.compile_with_report_in_span(&circuit, compile_span.id())?;
        let compile_elapsed = compile_span.finish();
        self.metrics.record_compile(compile_elapsed);
        self.record_latency("compile", compile_elapsed);
        if self.validate {
            // Validate-before-run: prove the compiled artifact legal (coupling,
            // gate set, layouts) before any shot executes. Findings feed the
            // metrics endpoint tagged with the job's span id, so a non-zero
            // error count correlates to the exact traced request; they never
            // abort the job.
            let diagnostics: Vec<_> = compiled
                .verify(compiler.instruction_set())
                .into_diagnostics()
                .into_iter()
                .map(|d| d.with_trace_span(job_id.0))
                .collect();
            self.metrics.record_verify(&diagnostics);
        }

        let sim = match request.op {
            JobOp::Compile => None,
            JobOp::Simulate { shots } => {
                let engine = match request.fusion {
                    None => &self.engine,
                    Some(policy) => &self.fusion_engines[fusion_index(policy)],
                };
                let noise = NoiseModel::from_device(&compiled.subdevice);
                let job = SimJob::noisy(
                    compiled.circuit.clone(),
                    noise,
                    shots,
                    RngSeed(request.seed),
                );
                let result = engine.run_job_in_span(&job, job_id);
                // Account simulation by the simulate phase alone: the
                // report's total also includes precompilation (lowering and
                // validation), which belongs to neither shots/sec nor the
                // simulate latency histogram.
                self.metrics
                    .record_simulate(result.report.simulate, shots, engine.fusion());
                self.record_latency("simulate", result.report.simulate);
                if self.validate {
                    let diagnostics: Vec<_> = result
                        .diagnostics
                        .iter()
                        .cloned()
                        .map(|d| d.with_trace_span(job_id.0))
                        .collect();
                    self.metrics.record_verify(&diagnostics);
                }
                Some(SimSummary {
                    shots,
                    simulate_micros: result.report.simulate.as_micros() as u64,
                    distinct_outcomes: result.counts.iter().filter(|(_, c)| *c > 0).count(),
                    fusion: engine.fusion(),
                })
            }
        };

        let total = job_span.finish();
        self.record_latency(&format!("tenant.{}", request.tenant), total);

        Ok(JobResponse {
            tenant: request.tenant.clone(),
            set: compiler.instruction_set().name().to_string(),
            two_qubit_gates: compiled.two_qubit_gate_count(),
            swap_count: compiled.swap_count,
            cache_hits: report.cache_hits,
            cache_misses: report.cache_misses,
            compile_micros: compile_elapsed.as_micros() as u64,
            sim,
        })
    }
}

struct TicketInner {
    slot: StdMutex<Option<Result<JobResponse, ServerError>>>,
    ready: Condvar,
}

impl TicketInner {
    fn complete(&self, result: Result<JobResponse, ServerError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(result);
        self.ready.notify_all();
    }
}

/// A handle to one submitted job. [`JobTicket::wait`] blocks until a worker
/// finishes the job and yields its response (or its typed failure, including
/// [`ServerError::Panicked`] when the job's body blew up).
pub struct JobTicket {
    inner: Arc<TicketInner>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let done = self
            .inner
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some();
        f.debug_struct("JobTicket").field("done", &done).finish()
    }
}

impl JobTicket {
    /// Blocks until the job completes.
    pub fn wait(self) -> Result<JobResponse, ServerError> {
        let mut slot = self.inner.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .inner
                .ready
                .wait(slot)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// A compile-and-simulate job server.
///
/// Build one with [`JobServer::builder`], submit [`JobRequest`]s (or raw wire
/// text via [`JobServer::submit_wire`]) and wait on the returned
/// [`JobTicket`]s. Jobs from all tenants run on one work-stealing worker
/// pool; each tenant gets an isolated, bounded decomposition cache.
///
/// ```
/// use compiler::CompilerOptions;
/// use device::DeviceModel;
/// use server::{JobOp, JobRequest, JobServer, WorkloadKind};
///
/// let server = JobServer::builder(DeviceModel::ideal(3, 0.99))
///     .workers(2)
///     .options(CompilerOptions::sweep())
///     .build()
///     .unwrap();
/// let ticket = server
///     .submit_request(JobRequest {
///         tenant: "docs".into(),
///         set: "S3".into(),
///         workload: WorkloadKind::Qv,
///         qubits: 3,
///         seed: 1,
///         op: JobOp::Compile,
///         fusion: None,
///     })
///     .unwrap();
/// let response = ticket.wait().unwrap();
/// assert!(response.two_qubit_gates > 0);
/// assert_eq!(server.metrics().completed, 1);
/// server.shutdown();
/// ```
pub struct JobServer {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Starts building a server that compiles onto `device`.
    pub fn builder(device: DeviceModel) -> ServerBuilder {
        ServerBuilder {
            device,
            workers: 2,
            queue_capacity: 64,
            tenant_cache_capacity: 1024,
            options: CompilerOptions::default(),
            engine: None,
            validate: false,
            telemetry: None,
        }
    }

    /// Submits a request; returns its ticket, or an admission failure when
    /// the queue is full ([`ServerError::Overloaded`]) or the request fails
    /// validation.
    pub fn submit_request(&self, request: JobRequest) -> Result<JobTicket, ServerError> {
        validate(&request)?;
        let shared = Arc::clone(&self.shared);
        // Stamp admission time now: the worker that picks the job up opens
        // the job's telemetry span at this instant and derives the
        // queue-wait histogram sample from it.
        let admitted = Instant::now();
        self.submit_task(move || shared.execute(&request, admitted))
    }

    /// Parses a wire-format request (see [`JobRequest::parse`]) and submits
    /// it.
    pub fn submit_wire(&self, text: &str) -> Result<JobTicket, ServerError> {
        self.submit_request(JobRequest::parse(text)?)
    }

    /// Submits an arbitrary job body. This is the escape hatch the typed
    /// submission paths are built on; tests use it to inject panicking jobs
    /// and prove worker isolation.
    pub fn submit_task(
        &self,
        body: impl FnOnce() -> Result<JobResponse, ServerError> + Send + 'static,
    ) -> Result<JobTicket, ServerError> {
        let inner = Arc::new(TicketInner {
            slot: StdMutex::new(None),
            ready: Condvar::new(),
        });
        let job = QueuedJob {
            ticket: Arc::clone(&inner),
            body: Box::new(body),
        };
        match self.shared.scheduler.submit(job) {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(JobTicket { inner })
            }
            Err(e) => {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(match e {
                    SubmitError::Overloaded { capacity } => ServerError::Overloaded { capacity },
                    SubmitError::ShutDown => ServerError::ShutDown,
                })
            }
        }
    }

    /// A point-in-time snapshot of every server counter, including
    /// per-tenant cache statistics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let tenants = self
            .shared
            .tenants
            .lock()
            .iter()
            .map(|(name, tenant)| TenantCacheStats {
                tenant: name.clone(),
                entries: tenant.cache.len(),
                hits: tenant.cache.hits(),
                misses: tenant.cache.misses(),
                evictions: tenant.cache.evictions(),
            })
            .collect();
        let latency = match &self.shared.collector {
            Some(collector) => latency_stats(collector.registry()),
            None => Vec::new(),
        };
        MetricsSnapshot::from_counters(
            &self.shared.metrics,
            self.shared.scheduler.len(),
            self.shared.scheduler.workers(),
            self.shared.scheduler.steals(),
            latency,
            tenants,
        )
    }

    /// The metrics endpoint body: [`JobServer::metrics`] rendered as JSON.
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }

    /// The trace endpoint body: the collector's ring buffer of completed
    /// spans (most recent [`telemetry::span::DEFAULT_SPAN_CAPACITY`] by
    /// default) rendered as Chrome Trace Event JSON — load it in Perfetto or
    /// `chrome://tracing`. Returns an empty trace when the server was built
    /// without telemetry.
    pub fn trace_json(&self) -> String {
        let spans = match &self.shared.collector {
            Some(collector) => collector.completed_spans(),
            None => Vec::new(),
        };
        telemetry::export::trace_json(&spans)
    }

    /// Stops admission, drains already-queued jobs and joins every worker.
    /// Dropping the server does the same.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.scheduler.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

impl std::fmt::Debug for JobServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobServer")
            .field("device", &self.shared.device.name())
            .field("workers", &self.shared.scheduler.workers())
            .field("queue_capacity", &self.shared.scheduler.capacity())
            .finish()
    }
}

fn validate(request: &JobRequest) -> Result<(), ServerError> {
    if request.qubits == 0 {
        return Err(ServerError::InvalidRequest {
            reason: "qubits must be positive".into(),
        });
    }
    match request.op {
        JobOp::Simulate { shots: 0 } => Err(ServerError::InvalidRequest {
            reason: "shots must be positive".into(),
        }),
        JobOp::Simulate { .. } if request.qubits > MAX_SIM_QUBITS => {
            Err(ServerError::InvalidRequest {
                reason: format!(
                    "simulate requests are limited to {MAX_SIM_QUBITS} qubits (got {})",
                    request.qubits
                ),
            })
        }
        _ => Ok(()),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    while let Some(QueuedJob { ticket, body }) = shared.scheduler.pop(index) {
        // The catch_unwind boundary is the whole point of the worker: one
        // buggy job must neither take the thread down nor touch its
        // neighbours. The payload is converted to text here, so the ticket
        // owner sees the original message.
        let result = match catch_unwind(AssertUnwindSafe(body)) {
            Ok(result) => {
                match &result {
                    Ok(_) => shared.metrics.completed.fetch_add(1, Ordering::Relaxed),
                    Err(_) => shared.metrics.failed.fetch_add(1, Ordering::Relaxed),
                };
                result
            }
            Err(payload) => {
                shared.metrics.panicked.fetch_add(1, Ordering::Relaxed);
                Err(ServerError::Panicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        };
        ticket.complete(result);
    }
}

/// Builder returned by [`JobServer::builder`].
pub struct ServerBuilder {
    device: DeviceModel,
    workers: usize,
    queue_capacity: usize,
    tenant_cache_capacity: usize,
    options: CompilerOptions,
    engine: Option<ExecutionEngine>,
    validate: bool,
    telemetry: Option<Arc<Collector>>,
}

impl ServerBuilder {
    /// Number of worker threads (default 2).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Admission bound of the job queue (default 64).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Bound of each tenant's decomposition cache (default 1024 entries).
    pub fn tenant_cache_capacity(mut self, capacity: usize) -> Self {
        self.tenant_cache_capacity = capacity;
        self
    }

    /// Compilation options used by every per-tenant compiler. The per-job
    /// thread count is forced to 1: on a server, parallelism lives *across*
    /// jobs (the worker pool), not inside one compile.
    pub fn options(mut self, options: CompilerOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the default single-thread simulation engine.
    pub fn engine(mut self, engine: ExecutionEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Enables validate-before-run (default off): every compiled artifact is
    /// statically verified before execution and every simulate job's lowered
    /// kernels are audited by the engine. Finding counts surface in the
    /// metrics endpoint (`verify_errors` / `verify_warnings`); jobs are never
    /// aborted. When no custom [`engine`](ServerBuilder::engine) is supplied,
    /// the default engine is built with its own validation enabled too.
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// Attaches a telemetry collector (default none). The collector is
    /// shared with every per-tenant compiler and every engine variant, so
    /// one trace carries the full job → stage → shard span tree, and
    /// [`JobServer::metrics_json`] grows per-stage latency histograms.
    /// Telemetry costs nothing until [`Collector::set_enabled`] turns the
    /// collector on; sampling knobs live on the collector itself.
    pub fn telemetry(mut self, collector: Arc<Collector>) -> Self {
        self.telemetry = Some(collector);
        self
    }

    /// Builds and starts the server (spawns the worker threads).
    pub fn build(self) -> Result<JobServer, ServerConfigError> {
        if self.workers == 0 {
            return Err(ServerConfigError::ZeroWorkers);
        }
        if self.queue_capacity == 0 {
            return Err(ServerConfigError::ZeroQueueCapacity);
        }
        if self.tenant_cache_capacity == 0 {
            return Err(ServerConfigError::ZeroTenantCacheCapacity);
        }
        let mut options = self.options;
        options.threads = 1;
        let engine = self.engine.unwrap_or_else(|| {
            ExecutionEngine::builder()
                .threads(1)
                .validate(self.validate)
                .build()
                .expect("one thread and the default chunk size are a valid config")
        });
        // When the server carries a collector, rebuild the base engine from
        // its own knobs with the collector attached, so engine-side spans
        // (precompile / simulate / shard) land in the same trace as the
        // server's job spans.
        let engine = match &self.telemetry {
            Some(collector) => ExecutionEngine::builder()
                .threads(engine.threads())
                .shot_chunk_size(engine.shot_chunk_size())
                .seed_policy(engine.seed_policy())
                .fusion(engine.fusion())
                .validate(engine.validate())
                .parallel_sweep_min_qubits(engine.parallel_sweep_min_qubits())
                .telemetry(Arc::clone(collector))
                .build()
                .unwrap_or_else(|_| engine.clone()),
            None => engine,
        };
        // One engine variant per fusion policy, inheriting every other knob
        // from the base engine, so wire requests can pick their policy without
        // the server rebuilding engines per job. A built engine's knobs are
        // already a valid config, so the fallback arm is unreachable; it
        // degrades to the base engine (and its policy) rather than panicking.
        let fusion_engines = [
            FusionPolicy::Off,
            FusionPolicy::Safe,
            FusionPolicy::Aggressive,
        ]
        .map(|policy| {
            let mut builder = ExecutionEngine::builder()
                .threads(engine.threads())
                .shot_chunk_size(engine.shot_chunk_size())
                .seed_policy(engine.seed_policy())
                .fusion(policy)
                .validate(engine.validate())
                .parallel_sweep_min_qubits(engine.parallel_sweep_min_qubits());
            if let Some(collector) = &self.telemetry {
                builder = builder.telemetry(Arc::clone(collector));
            }
            builder.build().unwrap_or_else(|_| engine.clone())
        });
        let shared = Arc::new(Shared {
            scheduler: Scheduler::new(self.workers, self.queue_capacity),
            device: self.device,
            options,
            tenant_cache_capacity: self.tenant_cache_capacity,
            engine,
            fusion_engines,
            validate: self.validate,
            tenants: Mutex::new(HashMap::new()),
            metrics: ServerMetrics::default(),
            collector: self.telemetry,
        });
        let handles = (0..self.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("server-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning a worker thread succeeds")
            })
            .collect();
        Ok(JobServer { shared, handles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server(workers: usize) -> JobServer {
        JobServer::builder(DeviceModel::ideal(3, 0.99))
            .workers(workers)
            .options(CompilerOptions::sweep())
            .build()
            .unwrap()
    }

    fn compile_request(tenant: &str, seed: u64) -> JobRequest {
        JobRequest {
            tenant: tenant.into(),
            set: "S3".into(),
            workload: WorkloadKind::Qv,
            qubits: 3,
            seed,
            op: JobOp::Compile,
            fusion: None,
        }
    }

    #[test]
    fn misconfiguration_is_a_typed_error_not_a_panic() {
        let device = DeviceModel::ideal(2, 0.99);
        assert_eq!(
            JobServer::builder(device.clone()).workers(0).build().err(),
            Some(ServerConfigError::ZeroWorkers)
        );
        assert_eq!(
            JobServer::builder(device.clone())
                .queue_capacity(0)
                .build()
                .err(),
            Some(ServerConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            JobServer::builder(device)
                .tenant_cache_capacity(0)
                .build()
                .err(),
            Some(ServerConfigError::ZeroTenantCacheCapacity)
        );
    }

    #[test]
    fn compile_and_simulate_round_trip() {
        let server = test_server(2);
        let compile = server.submit_request(compile_request("t", 1)).unwrap();
        let simulate = server
            .submit_request(JobRequest {
                op: JobOp::Simulate { shots: 64 },
                ..compile_request("t", 1)
            })
            .unwrap();
        let compiled = compile.wait().unwrap();
        assert!(compiled.two_qubit_gates > 0);
        assert!(compiled.sim.is_none());
        let simulated = simulate.wait().unwrap();
        let sim = simulated.sim.expect("simulate jobs report sampling stats");
        assert_eq!(sim.shots, 64);
        assert!(sim.distinct_outcomes >= 1);
        let metrics = server.metrics();
        assert_eq!(metrics.completed, 2);
        assert_eq!(metrics.shots_total, 64);
        assert_eq!(metrics.tenants.len(), 1);
        assert!(metrics.tenants[0].misses > 0);
    }

    #[test]
    fn wire_submission_and_validation_errors() {
        let server = test_server(1);
        let wire = compile_request("w", 3).encode();
        assert!(server.submit_wire(&wire).unwrap().wait().is_ok());
        assert!(matches!(
            server.submit_wire("{oops"),
            Err(ServerError::InvalidRequest { .. })
        ));
        assert!(matches!(
            server.submit_request(JobRequest {
                qubits: 0,
                ..compile_request("w", 1)
            }),
            Err(ServerError::InvalidRequest { .. })
        ));
        assert!(matches!(
            server.submit_request(JobRequest {
                qubits: MAX_SIM_QUBITS + 1,
                op: JobOp::Simulate { shots: 1 },
                ..compile_request("w", 1)
            }),
            Err(ServerError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn validated_jobs_report_zero_findings_in_metrics() {
        let server = JobServer::builder(DeviceModel::ideal(3, 0.99))
            .workers(2)
            .options(CompilerOptions::sweep())
            .validate(true)
            .build()
            .unwrap();
        let ticket = server
            .submit_request(JobRequest {
                op: JobOp::Simulate { shots: 32 },
                ..compile_request("v", 1)
            })
            .unwrap();
        ticket.wait().unwrap();
        let metrics = server.metrics();
        // A legal pipeline produces no findings; the counters exist and stay
        // at zero, and the JSON endpoint exposes them.
        assert_eq!(metrics.verify_errors, 0);
        assert_eq!(metrics.verify_warnings, 0);
        assert!(server.metrics_json().contains("\"verify_errors\": 0"));
    }

    #[test]
    fn wire_fusion_policy_selects_the_engine_and_shows_in_metrics() {
        let server = test_server(2);
        for (policy, expect) in [
            (FusionPolicy::Off, "off"),
            (FusionPolicy::Safe, "safe"),
            (FusionPolicy::Aggressive, "aggressive"),
        ] {
            let ticket = server
                .submit_request(JobRequest {
                    op: JobOp::Simulate { shots: 32 },
                    fusion: Some(policy),
                    ..compile_request("f", 1)
                })
                .unwrap();
            let response = ticket.wait().unwrap();
            assert!(response
                .encode()
                .contains(&format!("\"fusion\":\"{expect}\"")));
            let sim = response.sim.expect("simulate jobs report sampling stats");
            assert_eq!(sim.fusion, policy);
        }
        let metrics = server.metrics();
        assert_eq!(metrics.sim_fusion_off, 1);
        assert_eq!(metrics.sim_fusion_safe, 1);
        assert_eq!(metrics.sim_fusion_aggressive, 1);
        assert!(server
            .metrics_json()
            .contains("\"sim_fusion_aggressive\": 1"));
        // A request that leaves fusion unset runs on the server's base engine
        // (Safe by default) and is counted under that policy.
        let ticket = server
            .submit_request(JobRequest {
                op: JobOp::Simulate { shots: 16 },
                ..compile_request("f", 2)
            })
            .unwrap();
        assert_eq!(
            ticket.wait().unwrap().sim.unwrap().fusion,
            FusionPolicy::Safe
        );
        assert_eq!(server.metrics().sim_fusion_safe, 2);
    }

    #[test]
    fn telemetry_server_reports_latency_histograms_and_a_job_span_tree() {
        let collector = Arc::new(Collector::new());
        collector.set_enabled(true);
        let server = JobServer::builder(DeviceModel::ideal(3, 0.99))
            .workers(2)
            .options(CompilerOptions::sweep())
            .telemetry(Arc::clone(&collector))
            .build()
            .unwrap();
        let compile = server.submit_request(compile_request("t", 1)).unwrap();
        let simulate = server
            .submit_request(JobRequest {
                op: JobOp::Simulate { shots: 64 },
                ..compile_request("t", 2)
            })
            .unwrap();
        compile.wait().unwrap();
        simulate.wait().unwrap();

        // Per-stage latency quantiles in the snapshot and the JSON endpoint.
        let metrics = server.metrics();
        let stage = |name: &str| {
            metrics
                .latency
                .iter()
                .find(|s| s.stage == name)
                .unwrap_or_else(|| panic!("latency stage {name} missing"))
                .clone()
        };
        assert_eq!(stage("queue_wait").count, 2);
        assert_eq!(stage("compile").count, 2);
        assert_eq!(stage("simulate").count, 1);
        assert_eq!(stage("tenant.t").count, 2);
        let latency = stage("compile");
        assert!(latency.p50_micros <= latency.p90_micros);
        assert!(latency.p90_micros <= latency.p99_micros);
        let json = server.metrics_json();
        assert!(json.contains("\"compile\": {\"count\": 2"));
        assert!(json.contains("\"p50_micros\":"));
        assert!(json.contains("\"p99_micros\":"));

        // The trace holds a job → stage span tree with consistent parent ids.
        let spans = collector.completed_spans();
        let jobs: Vec<_> = spans.iter().filter(|s| s.name == "job").collect();
        assert_eq!(jobs.len(), 2);
        for name in ["queue_wait", "compile", "simulate"] {
            assert!(
                spans
                    .iter()
                    .filter(|s| s.name == name)
                    .all(|s| jobs.iter().any(|j| j.id == s.parent)),
                "every {name} span nests under a job span"
            );
        }
        assert!(spans.iter().any(|s| s.name == "simulate"));
        let trace = server.trace_json();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"job\""));
        assert!(trace.contains("\"name\":\"queue_wait\""));
        server.shutdown();
    }

    #[test]
    fn untraced_server_serves_empty_latency_and_trace() {
        let server = test_server(1);
        server
            .submit_request(compile_request("t", 1))
            .unwrap()
            .wait()
            .unwrap();
        assert!(server.metrics().latency.is_empty());
        assert_eq!(server.trace_json(), "{\"traceEvents\":[]}");
        assert!(server.metrics_json().contains("\"latency\": {}"));
    }

    #[test]
    fn validated_telemetry_jobs_tag_findings_with_the_job_span() {
        // A legal pipeline yields no findings, so the correlation field stays
        // zero — but the endpoint must expose it.
        let collector = Arc::new(Collector::new());
        collector.set_enabled(true);
        let server = JobServer::builder(DeviceModel::ideal(3, 0.99))
            .workers(1)
            .options(CompilerOptions::sweep())
            .validate(true)
            .telemetry(collector)
            .build()
            .unwrap();
        let ticket = server
            .submit_request(JobRequest {
                op: JobOp::Simulate { shots: 16 },
                ..compile_request("v", 1)
            })
            .unwrap();
        ticket.wait().unwrap();
        let metrics = server.metrics();
        assert_eq!(metrics.verify_errors, 0);
        assert_eq!(metrics.verify_last_error_span, 0);
        assert!(server
            .metrics_json()
            .contains("\"verify_last_error_span\": 0"));
    }

    #[test]
    fn unknown_instruction_sets_fail_the_job_not_the_server() {
        let server = test_server(1);
        let bad = server
            .submit_request(JobRequest {
                set: "G99".into(),
                ..compile_request("t", 1)
            })
            .unwrap();
        assert!(matches!(bad.wait(), Err(ServerError::Compile(_))));
        // The worker survived and serves the next job.
        let good = server.submit_request(compile_request("t", 2)).unwrap();
        assert!(good.wait().is_ok());
        assert_eq!(server.metrics().failed, 1);
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let server = test_server(1);
        let shared = Arc::clone(&server.shared);
        server.shutdown();
        assert!(matches!(
            shared.scheduler.submit(QueuedJob {
                ticket: Arc::new(TicketInner {
                    slot: StdMutex::new(None),
                    ready: Condvar::new(),
                }),
                body: Box::new(|| Err(ServerError::ShutDown)),
            }),
            Err(SubmitError::ShutDown)
        ));
    }
}
