//! Mutation tests: each deliberately broken artifact must be caught by
//! exactly the intended rule, with the diagnostic's span pointing at the
//! offending op.
//!
//! This is the verifier's own acceptance suite — if a mutation slips through,
//! or trips an unrelated rule, the rule set is either too lax or too noisy.

use circuit::{Circuit, Operation};
use device::DeviceModel;
use gates::{GateType, InstructionSet};
use qmath::RngSeed;
use verify::{Artifact, Severity, Stage, StageSnapshot, Verifier};

/// Runs the structural rules over a snapshot and returns `(rule, span-start)`
/// for every error-level finding.
fn errors_of(snapshot: &StageSnapshot<'_>) -> Vec<(&'static str, Option<usize>)> {
    Verifier::structural()
        .run(&Artifact::Stage(snapshot))
        .into_diagnostics()
        .into_iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(|d| (d.rule(), d.span().map(|s| s.start)))
        .collect()
}

/// A three-qubit line region carved from the Sycamore model: qubits 0–1 and
/// 1–2 are coupled, 0–2 is not.
fn line3() -> (DeviceModel, Vec<usize>) {
    let device = DeviceModel::sycamore(RngSeed(1));
    let region = vec![0, 1, 2];
    (device.subdevice(&region), region)
}

#[test]
fn uncoupled_two_qubit_op_is_caught_by_coupling_rule_only() {
    let (subdevice, region) = line3();
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::cz(0, 1)); // legal
    circuit.push(Operation::cz(0, 2)); // uncoupled
    let layout = [0, 1, 2];
    let snapshot = StageSnapshot {
        stage: Stage::SwapRoute,
        circuit: &circuit,
        region: &region,
        subdevice: Some(&subdevice),
        initial_layout: &layout,
        final_layout: &layout,
        swap_count: 0,
        program_swap_count: 0,
        instruction_set: None,
    };
    assert_eq!(errors_of(&snapshot), vec![("route/coupling", Some(1))]);
}

#[test]
fn off_set_gate_is_caught_by_isa_rule_only() {
    let (subdevice, region) = line3();
    let set = InstructionSet::s(1); // SYC only
    let syc = *GateType::syc().unitary();
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::unitary2q("SYC", syc, 0, 1));
    circuit.push(Operation::cz(1, 2)); // CZ is not in S1
    let layout = [0, 1, 2];
    let snapshot = StageSnapshot {
        stage: Stage::NuOpDecompose,
        circuit: &circuit,
        region: &region,
        subdevice: Some(&subdevice),
        initial_layout: &layout,
        final_layout: &layout,
        swap_count: 0,
        program_swap_count: 0,
        instruction_set: Some(&set),
    };
    assert_eq!(errors_of(&snapshot), vec![("isa/gate-set", Some(1))]);
}

#[test]
fn mislabelled_gate_matrix_is_caught_by_isa_rule_only() {
    let (subdevice, region) = line3();
    let set = InstructionSet::s(1);
    // Labelled SYC, but the matrix is CZ: the label passes, the matrix must
    // not.
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::unitary2q("SYC", gates::standard::cz(), 0, 1));
    let layout = [0, 1, 2];
    let snapshot = StageSnapshot {
        stage: Stage::NuOpDecompose,
        circuit: &circuit,
        region: &region,
        subdevice: Some(&subdevice),
        initial_layout: &layout,
        final_layout: &layout,
        swap_count: 0,
        program_swap_count: 0,
        instruction_set: Some(&set),
    };
    assert_eq!(errors_of(&snapshot), vec![("isa/gate-set", Some(0))]);
}

#[test]
fn qubit_bounds_mutants_are_rejected_at_construction() {
    // The circuit layer makes both bounds mutants unrepresentable through its
    // public constructors: out-of-range indices are rejected by
    // `Circuit::push` and degenerate two-qubit ops by `Operation::new`. The
    // `circuit/qubit-bounds` rule is the backstop for artifacts that arrive
    // from outside the typed constructors (e.g. future wire decoding).
    let out_of_range = std::panic::catch_unwind(|| {
        let mut circuit = Circuit::new(3);
        circuit.push(Operation::h(7));
    });
    assert!(
        out_of_range.is_err(),
        "push must reject out-of-range qubits"
    );

    let degenerate = std::panic::catch_unwind(|| Operation::cz(1, 1));
    assert!(
        degenerate.is_err(),
        "constructors must reject degenerate two-qubit ops"
    );
}

#[test]
fn duplicated_layout_target_is_caught_by_bijection_rule_only() {
    let (subdevice, region) = line3();
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::h(0));
    let initial = [0, 1, 1]; // two logical qubits on physical 1
    let final_layout = [0, 1, 2];
    let snapshot = StageSnapshot {
        stage: Stage::InitialMap,
        circuit: &circuit,
        region: &region,
        subdevice: Some(&subdevice),
        initial_layout: &initial,
        final_layout: &final_layout,
        swap_count: 0,
        program_swap_count: 0,
        instruction_set: None,
    };
    let errors = errors_of(&snapshot);
    assert_eq!(errors, vec![("layout/bijection", None)]);
}

#[test]
fn unrecorded_swap_is_caught_by_swap_consistency_rule_only() {
    let (subdevice, region) = line3();
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::swap(0, 1));
    let layout = [0, 1, 2];
    // swap_count says 0 and final_layout is unpermuted: both replay checks
    // fire, and only the swap-consistency rule does.
    let snapshot = StageSnapshot {
        stage: Stage::SwapRoute,
        circuit: &circuit,
        region: &region,
        subdevice: Some(&subdevice),
        initial_layout: &layout,
        final_layout: &layout,
        swap_count: 0,
        program_swap_count: 0,
        instruction_set: None,
    };
    let errors = errors_of(&snapshot);
    assert!(!errors.is_empty());
    assert!(
        errors
            .iter()
            .all(|(rule, _)| *rule == "layout/swap-consistency"),
        "{errors:?}"
    );
}

#[test]
fn the_legal_baseline_of_every_mutation_is_clean() {
    // The unmutated artifact each case above starts from must verify clean —
    // otherwise the mutation assertions prove nothing.
    let (subdevice, region) = line3();
    let set = InstructionSet::s(1);
    let syc = *GateType::syc().unitary();
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::unitary2q("SYC", syc, 0, 1));
    circuit.push(Operation::unitary2q("SYC", syc, 1, 2));
    circuit.push(Operation::measure(vec![0, 1, 2]));
    let layout = [0, 1, 2];
    for stage in [
        Stage::RegionSelect,
        Stage::InitialMap,
        Stage::SwapRoute,
        Stage::NuOpDecompose,
    ] {
        let snapshot = StageSnapshot {
            stage,
            circuit: &circuit,
            region: &region,
            subdevice: Some(&subdevice),
            initial_layout: &layout,
            final_layout: &layout,
            swap_count: 0,
            program_swap_count: 0,
            instruction_set: Some(&set),
        };
        assert_eq!(errors_of(&snapshot), vec![], "stage {stage:?}");
    }
}
