//! Golden-file tests for the flat-JSON diagnostic rendering.
//!
//! The rendered bytes are part of the server's metrics/report surface, so any
//! drift must be a conscious decision. Regenerate with:
//!
//! ```text
//! BLESS=1 cargo test -p verify --test golden_json
//! ```

use circuit::{Circuit, Operation};
use device::DeviceModel;
use qmath::RngSeed;
use verify::{Artifact, Diagnostic, Span, Stage, StageSnapshot, Verifier, VerifyReport};

fn check_golden(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, format!("{rendered}\n")).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        rendered,
        expected.trim_end(),
        "rendered JSON drifted from {}; rerun with BLESS=1 if intentional",
        path.display()
    );
}

#[test]
fn handcrafted_report_matches_golden() {
    let mut report = VerifyReport::new();
    report.push(
        Diagnostic::error("route/coupling", "op 2 (CZ) acts on uncoupled pair (0, 2)").at_op(2),
    );
    report.push(Diagnostic::warning(
        "fusion/equivalence",
        "spot check skipped: register wider than the probe limit",
    ));
    report.push(
        Diagnostic::info("isa/gate-set", "stream uses 3 distinct labels")
            .with_span(Span::range(0, 4)),
    );
    check_golden("handcrafted.json", &report.to_json());
}

#[test]
fn coupling_violation_diagnostic_matches_golden() {
    // A real rule run, so the golden also locks the message wording that
    // reaches the server metrics surface.
    let device = DeviceModel::sycamore(RngSeed(1));
    let region = vec![0, 1, 2];
    let subdevice = device.subdevice(&region);
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::cz(0, 2));
    let layout = [0, 1, 2];
    let snapshot = StageSnapshot {
        stage: Stage::SwapRoute,
        circuit: &circuit,
        region: &region,
        subdevice: Some(&subdevice),
        initial_layout: &layout,
        final_layout: &layout,
        swap_count: 0,
        program_swap_count: 0,
        instruction_set: None,
    };
    let report = Verifier::structural().run(&Artifact::Stage(&snapshot));
    check_golden("coupling_violation.json", &report.to_json());
}

#[test]
fn escaping_is_stable_against_the_golden() {
    let report = {
        let mut r = VerifyReport::new();
        r.push(Diagnostic::error(
            "kernel/unitarity",
            "matrix entry \"(0,0)\" drifted by 2.5e-1\nnorm |U U^dag - I| = 0.25",
        ));
        r
    };
    check_golden("escaping.json", &report.to_json());
}
