//! Semantic rules over lowered simulation kernels.
//!
//! The simulator lowers circuits into streams of `Mat2`/`Mat4` kernels with
//! attached Kraus channels (and optionally fuses adjacent kernels). This
//! module defines a neutral, simulator-independent view of such a stream —
//! [`KernelOp`] — and the rules that prove a stream is semantically sound:
//! every kernel unitary, every channel trace-preserving, and a fused stream
//! both equivalent to its unfused baseline (up to global phase) and consuming
//! randomness in exactly the same order.

use qmath::{Complex, Mat2, Mat4, SmallMat};

use crate::diagnostic::Diagnostic;
use crate::rule::{Artifact, Context, Rule};

/// The unitary kernel of one lowered operation.
#[derive(Debug, Clone, Copy)]
pub enum KernelKind {
    /// A one-qubit kernel applied to `qubit`.
    One {
        /// The 2×2 kernel matrix.
        matrix: Mat2,
        /// Target qubit.
        qubit: usize,
    },
    /// A two-qubit kernel applied to the ordered pair `(q0, q1)`;
    /// `q0` indexes the most significant factor of the 4×4 matrix.
    Two {
        /// The 4×4 kernel matrix.
        matrix: Mat4,
        /// Most significant target qubit.
        q0: usize,
        /// Least significant target qubit.
        q1: usize,
    },
    /// No unitary action (barriers, measurements, identity placeholders).
    Silent,
}

/// The Kraus operators of one attached channel.
#[derive(Debug, Clone)]
pub enum ChannelKraus {
    /// A one-qubit channel.
    One(Vec<Mat2>),
    /// A two-qubit channel.
    Two(Vec<Mat4>),
}

/// A noise channel attached to a lowered operation.
#[derive(Debug, Clone)]
pub struct ChannelView {
    /// The qubits the channel acts on (one or two entries).
    pub qubits: Vec<usize>,
    /// The channel's Kraus operators.
    pub kraus: ChannelKraus,
    /// Whether sampling this channel consumes a random draw at run time
    /// (identity channels are skipped by the simulator and draw nothing).
    pub consumes_rng: bool,
}

/// One lowered operation: a kernel plus its attached channels, tagged with
/// its index in the stream so findings carry exact spans.
#[derive(Debug, Clone)]
pub struct KernelOp {
    /// Position of this op in its stream.
    pub index: usize,
    /// The unitary kernel.
    pub kind: KernelKind,
    /// Channels applied after the kernel, in draw order.
    pub channels: Vec<ChannelView>,
}

/// A lowered kernel stream under verification, with an optional unfused
/// baseline stream for fusion-preservation rules.
#[derive(Debug, Clone, Copy)]
pub struct KernelArtifact<'a> {
    /// Register width in qubits.
    pub num_qubits: usize,
    /// The stream under verification (possibly fused).
    pub ops: &'a [KernelOp],
    /// The unfused baseline the stream was derived from, when available.
    pub baseline: Option<&'a [KernelOp]>,
    /// Whether the lowering promises to preserve the baseline's RNG draw
    /// sequence verbatim (`FusionPolicy::Off`/`Safe`). When `false`
    /// (`FusionPolicy::Aggressive` carried channels past kernels), the
    /// [`RngOrderAudit`] does not apply and [`ChannelComposition`] checks the
    /// composed channels instead.
    pub rng_order_exact: bool,
}

/// `kernel/unitarity`: every non-silent kernel matrix is unitary within
/// tolerance.
#[derive(Debug, Default)]
pub struct KernelUnitarity;

impl Rule for KernelUnitarity {
    fn id(&self) -> &'static str {
        "kernel/unitarity"
    }

    fn description(&self) -> &'static str {
        "every lowered (possibly fused) kernel matrix is unitary"
    }

    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Kernels(art) = artifact else {
            return;
        };
        for op in art.ops {
            let ok = match &op.kind {
                KernelKind::One { matrix, .. } => matrix.is_unitary(ctx.tolerance),
                KernelKind::Two { matrix, .. } => matrix.is_unitary(ctx.tolerance),
                KernelKind::Silent => true,
            };
            if !ok {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        format!(
                            "kernel {} is not unitary within {:.0e}",
                            op.index, ctx.tolerance
                        ),
                    )
                    .at_op(op.index),
                );
            }
        }
    }
}

/// `channel/kraus-completeness`: every attached channel satisfies
/// `Σ K†K = I` within tolerance (trace preservation).
#[derive(Debug, Default)]
pub struct KrausCompleteness;

impl Rule for KrausCompleteness {
    fn id(&self) -> &'static str {
        "channel/kraus-completeness"
    }

    fn description(&self) -> &'static str {
        "every attached Kraus channel is trace-preserving (sum of K-dagger-K is identity)"
    }

    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Kernels(art) = artifact else {
            return;
        };
        for op in art.ops {
            for channel in &op.channels {
                let deviation = match &channel.kraus {
                    ChannelKraus::One(ops) => completeness_deviation(ops),
                    ChannelKraus::Two(ops) => completeness_deviation(ops),
                };
                if deviation > ctx.tolerance {
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            format!(
                                "channel on qubits {:?} of op {} deviates from completeness \
                                 by {deviation:.2e}",
                                channel.qubits, op.index
                            ),
                        )
                        .at_op(op.index),
                    );
                }
            }
        }
    }
}

/// Max-entry deviation of `Σ K†K` from the identity.
fn completeness_deviation<const N: usize>(ops: &[SmallMat<N>]) -> f64 {
    let mut sum = SmallMat::<N>::zeros();
    for k in ops {
        sum = sum + k.dagger() * *k;
    }
    sum.max_abs_diff(&SmallMat::<N>::identity())
}

/// `fusion/rng-order`: a fused stream consumes random draws in exactly the
/// order of its unfused baseline. This statically proves the
/// `FusionPolicy::Safe` invariant: fusion may only move kernels past
/// channel-free ops, so the sequence of RNG-consuming channels (targets and
/// Kraus operators alike) must be preserved verbatim.
#[derive(Debug, Default)]
pub struct RngOrderAudit;

impl Rule for RngOrderAudit {
    fn id(&self) -> &'static str {
        "fusion/rng-order"
    }

    fn description(&self) -> &'static str {
        "a fused stream preserves the baseline's order of RNG-consuming channels"
    }

    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Kernels(art) = artifact else {
            return;
        };
        if !art.rng_order_exact {
            // Aggressive fusion deliberately reorders and composes draws; the
            // ChannelComposition rule covers that lowering instead.
            return;
        }
        let Some(baseline) = art.baseline else {
            return;
        };
        let fused_events = rng_events(art.ops);
        let base_events = rng_events(baseline);
        for (position, (fused, base)) in fused_events.iter().zip(&base_events).enumerate() {
            if let Some(reason) = events_differ(fused, base, ctx.tolerance) {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        format!(
                            "RNG draw {position} diverges from the baseline ({reason}); \
                             fusion reordered noise"
                        ),
                    )
                    .at_op(fused.op_index),
                );
                return;
            }
        }
        if fused_events.len() != base_events.len() {
            let mut d = Diagnostic::error(
                self.id(),
                format!(
                    "fused stream consumes {} RNG draws but the baseline consumes {}",
                    fused_events.len(),
                    base_events.len()
                ),
            );
            if let Some(event) = fused_events.get(base_events.len()) {
                d = d.at_op(event.op_index);
            }
            out.push(d);
        }
    }
}

/// One run-time random draw: a channel sampled on specific qubits.
struct RngEvent<'a> {
    op_index: usize,
    qubits: &'a [usize],
    kraus: &'a ChannelKraus,
}

/// The stream's RNG-consuming channels, in draw order.
fn rng_events(ops: &[KernelOp]) -> Vec<RngEvent<'_>> {
    let mut events = Vec::new();
    for op in ops {
        for channel in &op.channels {
            if channel.consumes_rng {
                events.push(RngEvent {
                    op_index: op.index,
                    qubits: &channel.qubits,
                    kraus: &channel.kraus,
                });
            }
        }
    }
    events
}

/// Why two draw events differ, if they do.
fn events_differ(a: &RngEvent<'_>, b: &RngEvent<'_>, tol: f64) -> Option<String> {
    if a.qubits != b.qubits {
        return Some(format!("targets {:?} vs baseline {:?}", a.qubits, b.qubits));
    }
    match (a.kraus, b.kraus) {
        (ChannelKraus::One(x), ChannelKraus::One(y)) => kraus_differ(x, y, tol),
        (ChannelKraus::Two(x), ChannelKraus::Two(y)) => kraus_differ(x, y, tol),
        _ => Some("channel arity changed".to_string()),
    }
}

fn kraus_differ<const N: usize>(a: &[SmallMat<N>], b: &[SmallMat<N>], tol: f64) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!(
            "{} Kraus operators vs baseline {}",
            a.len(),
            b.len()
        ));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.max_abs_diff(y) > tol {
            return Some(format!("Kraus operator {i} changed"));
        }
    }
    None
}

/// `channel/composition`: sanity rules for lowerings that compose or
/// conjugate noise channels (`FusionPolicy::Aggressive`, flagged by
/// [`KernelArtifact::rng_order_exact`] being `false`).
///
/// Conjugating a Kraus set by a unitary and composing trace-preserving
/// channels both preserve completeness *exactly* in exact arithmetic, so the
/// composed channels must satisfy `Σ K†K = I` within the much tighter
/// [`Context::composed_tolerance`] — numerical drift here means the carry
/// math is wrong, not that the inputs were loose. Against a baseline, the
/// composed stream must also consume at most the baseline's number of draws
/// (composition only ever merges draws).
#[derive(Debug, Default)]
pub struct ChannelComposition;

impl Rule for ChannelComposition {
    fn id(&self) -> &'static str {
        "channel/composition"
    }

    fn description(&self) -> &'static str {
        "composed/conjugated channels stay tightly trace-preserving and never add RNG draws"
    }

    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Kernels(art) = artifact else {
            return;
        };
        if art.rng_order_exact {
            return;
        }
        for op in art.ops {
            for channel in &op.channels {
                let deviation = match &channel.kraus {
                    ChannelKraus::One(ops) => completeness_deviation(ops),
                    ChannelKraus::Two(ops) => completeness_deviation(ops),
                };
                if deviation > ctx.composed_tolerance {
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            format!(
                                "composed channel on qubits {:?} of op {} deviates from \
                                 completeness by {deviation:.2e} (composition must preserve \
                                 it within {:.0e})",
                                channel.qubits, op.index, ctx.composed_tolerance
                            ),
                        )
                        .at_op(op.index),
                    );
                }
            }
        }
        if let Some(baseline) = art.baseline {
            let fused_draws = rng_events(art.ops).len();
            let base_draws = rng_events(baseline).len();
            if fused_draws > base_draws {
                out.push(Diagnostic::error(
                    self.id(),
                    format!(
                        "composed stream consumes {fused_draws} RNG draws but the baseline \
                         consumes {base_draws}; channel composition may only merge draws"
                    ),
                ));
            }
        }
    }
}

/// `fusion/equivalence`: phase-insensitive spot check that the fused stream's
/// overall unitary action equals the baseline's. Both streams are applied to
/// a fixed non-degenerate probe state; the final states must coincide up to a
/// global phase. Registers wider than [`Context::equivalence_max_qubits`] are
/// skipped with an [`Info`](crate::Severity::Info) finding.
#[derive(Debug, Default)]
pub struct FusionEquivalence;

impl Rule for FusionEquivalence {
    fn id(&self) -> &'static str {
        "fusion/equivalence"
    }

    fn description(&self) -> &'static str {
        "fused and unfused streams act identically (up to global phase) on a probe state"
    }

    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Kernels(art) = artifact else {
            return;
        };
        let Some(baseline) = art.baseline else {
            return;
        };
        if art.num_qubits > ctx.equivalence_max_qubits {
            out.push(Diagnostic::info(
                self.id(),
                format!(
                    "equivalence spot check skipped: {} qubits exceeds the {}-qubit limit",
                    art.num_qubits, ctx.equivalence_max_qubits
                ),
            ));
            return;
        }
        let fused_state = apply_stream(art.num_qubits, art.ops);
        let base_state = apply_stream(art.num_qubits, baseline);
        let overlap = state_overlap(&fused_state, &base_state);
        if (overlap - 1.0).abs() > ctx.tolerance {
            out.push(Diagnostic::error(
                self.id(),
                format!(
                    "fused stream diverges from the baseline: probe-state overlap {overlap:.6} \
                     (1.0 expected)"
                ),
            ));
        }
    }
}

/// Applies a kernel stream (unitaries only; channels are noise, not part of
/// the deterministic action) to the fixed probe state.
fn apply_stream(num_qubits: usize, ops: &[KernelOp]) -> Vec<Complex> {
    let mut state = probe_state(num_qubits);
    for op in ops {
        match &op.kind {
            KernelKind::One { matrix, qubit } => apply_one(&mut state, num_qubits, matrix, *qubit),
            KernelKind::Two { matrix, q0, q1 } => {
                apply_two(&mut state, num_qubits, matrix, *q0, *q1);
            }
            KernelKind::Silent => {}
        }
    }
    state
}

/// A fixed, fully non-degenerate probe state: every amplitude distinct in
/// modulus and phase, generated by a deterministic recurrence.
fn probe_state(num_qubits: usize) -> Vec<Complex> {
    let dim = 1usize << num_qubits;
    let mut state = Vec::with_capacity(dim);
    let mut norm_sqr = 0.0;
    for i in 0..dim {
        let x = i as f64;
        let amp = Complex::from_polar(1.0 + (0.37 * x).sin() * 0.5, 0.61 * x);
        norm_sqr += amp.norm_sqr();
        state.push(amp);
    }
    let scale = 1.0 / norm_sqr.sqrt();
    for amp in &mut state {
        *amp = amp.scale(scale);
    }
    state
}

/// Applies a 2×2 matrix to `qubit`; qubit `q` owns bit `num_qubits - 1 - q`
/// of the amplitude index (the simulator's convention).
fn apply_one(state: &mut [Complex], num_qubits: usize, m: &Mat2, qubit: usize) {
    let mask = 1usize << (num_qubits - 1 - qubit);
    for i in 0..state.len() {
        if i & mask == 0 {
            let j = i | mask;
            let (a, b) = (state[i], state[j]);
            state[i] = m[(0, 0)] * a + m[(0, 1)] * b;
            state[j] = m[(1, 0)] * a + m[(1, 1)] * b;
        }
    }
}

/// Applies a 4×4 matrix to the pair `(q0, q1)` with `q0` as the most
/// significant factor, matching the simulator and fusion conventions.
fn apply_two(state: &mut [Complex], num_qubits: usize, m: &Mat4, q0: usize, q1: usize) {
    let mask0 = 1usize << (num_qubits - 1 - q0);
    let mask1 = 1usize << (num_qubits - 1 - q1);
    for i in 0..state.len() {
        if i & (mask0 | mask1) == 0 {
            let idx = [i, i | mask1, i | mask0, i | mask0 | mask1];
            let amps = [state[idx[0]], state[idx[1]], state[idx[2]], state[idx[3]]];
            for (r, &out_index) in idx.iter().enumerate() {
                let mut acc = Complex::ZERO;
                for (c, &amp) in amps.iter().enumerate() {
                    acc += m[(r, c)] * amp;
                }
                state[out_index] = acc;
            }
        }
    }
}

/// `|⟨a|b⟩| / (‖a‖‖b‖)`: 1.0 iff the states coincide up to a global phase.
fn state_overlap(a: &[Complex], b: &[Complex]) -> f64 {
    let mut inner = Complex::ZERO;
    let mut norm_a = 0.0;
    let mut norm_b = 0.0;
    for (x, y) in a.iter().zip(b) {
        inner += x.conj() * *y;
        norm_a += x.norm_sqr();
        norm_b += y.norm_sqr();
    }
    inner.norm() / (norm_a.sqrt() * norm_b.sqrt()).max(f64::MIN_POSITIVE)
}

/// All semantic kernel rules, in evaluation order.
pub fn semantic_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(KernelUnitarity),
        Box::new(KrausCompleteness),
        Box::new(RngOrderAudit),
        Box::new(ChannelComposition),
        Box::new(FusionEquivalence),
    ]
}
