//! The diagnostic model: severities, op-index spans, findings and reports.
//!
//! Every rule reports its findings as [`Diagnostic`]s collected into a
//! [`VerifyReport`]. Diagnostics render to the same flat-JSON dialect as the
//! server wire codec (a single-level object whose values are plain strings or
//! unsigned integers, no escape sequences), so findings can travel over the
//! existing job-server endpoints unchanged.

use serde::{Deserialize, Serialize};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: nothing is wrong, the rule is reporting context
    /// (e.g. "equivalence spot check skipped: register too large").
    Info,
    /// Suspicious but not provably illegal; the artifact may still run.
    Warning,
    /// The artifact violates a hard invariant and must not run.
    Error,
}

impl Severity {
    /// Lower-case name used in the flat-JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A half-open `[start, end)` range of operation indices a finding points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Index of the first operation covered.
    pub start: usize,
    /// One past the last operation covered.
    pub end: usize,
}

impl Span {
    /// Span covering the single operation at `index`.
    pub fn op(index: usize) -> Span {
        Span {
            start: index,
            end: index + 1,
        }
    }

    /// Span covering `[start, end)`.
    pub fn range(start: usize, end: usize) -> Span {
        Span { start, end }
    }
}

/// One finding produced by a verification rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    severity: Severity,
    rule: &'static str,
    span: Option<Span>,
    message: String,
    /// Telemetry span id of the job the finding was produced under (see the
    /// `telemetry` crate); lets a server metrics consumer correlate a
    /// `verify_errors` count back to the exact traced request.
    trace_span: Option<u64>,
}

impl Diagnostic {
    /// A new finding with the given severity.
    pub fn new(severity: Severity, rule: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity,
            rule,
            span: None,
            message: message.into(),
            trace_span: None,
        }
    }

    /// An [`Severity::Error`]-level finding.
    pub fn error(rule: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Error, rule, message)
    }

    /// A [`Severity::Warning`]-level finding.
    pub fn warning(rule: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Warning, rule, message)
    }

    /// An [`Severity::Info`]-level finding.
    pub fn info(rule: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Severity::Info, rule, message)
    }

    /// Attaches an op-index span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches a single-operation span.
    pub fn at_op(self, index: usize) -> Diagnostic {
        self.with_span(Span::op(index))
    }

    /// Attaches the telemetry span id of the job this finding belongs to,
    /// correlating it to a traced request (id 0 — "no span" — is treated as
    /// absent and not rendered).
    pub fn with_trace_span(mut self, span_id: u64) -> Diagnostic {
        self.trace_span = (span_id != 0).then_some(span_id);
        self
    }

    /// The finding's severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The id of the rule that produced the finding (e.g. `"route/coupling"`).
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// The op-index span, if the finding points at specific operations.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The correlated telemetry span id, when one was attached.
    pub fn trace_span(&self) -> Option<u64> {
        self.trace_span
    }

    /// Renders the finding as a flat JSON object matching the server codec:
    /// a single-level object with string and unsigned-integer values and no
    /// escape sequences (characters the codec cannot carry are replaced by
    /// `'`). Span-less findings omit the `start`/`end` fields.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "severity", self.severity.as_str());
        push_str_field(&mut out, "rule", self.rule);
        if let Some(span) = self.span {
            push_num_field(&mut out, "start", span.start as u64);
            push_num_field(&mut out, "end", span.end as u64);
        }
        if let Some(trace_span) = self.trace_span {
            push_num_field(&mut out, "trace_span", trace_span);
        }
        push_str_field(&mut out, "message", &self.message);
        out.pop(); // trailing comma
        out.push('}');
        out
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(span) = self.span {
            if span.end == span.start + 1 {
                write!(f, " op {}", span.start)?;
            } else {
                write!(f, " ops {}..{}", span.start, span.end)?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// The findings of one verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// An empty report.
    pub fn new() -> VerifyReport {
        VerifyReport::default()
    }

    /// Wraps a list of findings.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> VerifyReport {
        VerifyReport { diagnostics }
    }

    /// Adds one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: VerifyReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in the order the rules produced them.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Consumes the report, yielding its findings.
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Number of findings with the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// Number of [`Severity::Error`] findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of [`Severity::Warning`] findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// True when the report contains at least one error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// True when the report contains no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as a JSON array of flat diagnostic objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push(']');
        out
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return f.write_str("clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Appends `"key":"value",` — the flat-JSON string form of the server codec.
/// The codec carries no escape sequences, so `"`, `\` and control characters
/// in the value are replaced by `'`.
fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' | '\\' => out.push('\''),
            c if c.is_control() => out.push(' '),
            c => out.push(c),
        }
    }
    out.push_str("\",");
}

/// Appends `"key":value,` for an unsigned integer value.
fn push_num_field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn json_omits_missing_span() {
        let d = Diagnostic::error("rule/x", "broken");
        assert_eq!(
            d.to_json(),
            r#"{"severity":"error","rule":"rule/x","message":"broken"}"#
        );
    }

    #[test]
    fn json_includes_span_fields() {
        let d = Diagnostic::warning("rule/y", "odd").at_op(7);
        assert_eq!(
            d.to_json(),
            r#"{"severity":"warning","rule":"rule/y","start":7,"end":8,"message":"odd"}"#
        );
    }

    #[test]
    fn json_carries_trace_span_only_when_attached() {
        let d = Diagnostic::error("rule/x", "broken").with_trace_span(42);
        assert_eq!(d.trace_span(), Some(42));
        assert_eq!(
            d.to_json(),
            r#"{"severity":"error","rule":"rule/x","trace_span":42,"message":"broken"}"#
        );
        // Id 0 means "no span" and renders nothing.
        let none = Diagnostic::error("rule/x", "broken").with_trace_span(0);
        assert_eq!(none.trace_span(), None);
        assert!(!none.to_json().contains("trace_span"));
    }

    #[test]
    fn json_replaces_unrepresentable_characters() {
        let d = Diagnostic::info("rule/z", "a \"quoted\\\" message\n");
        assert_eq!(
            d.to_json(),
            r#"{"severity":"info","rule":"rule/z","message":"a 'quoted'' message "}"#
        );
    }

    #[test]
    fn report_counts_and_json_array() {
        let mut r = VerifyReport::new();
        r.push(Diagnostic::error("a", "one"));
        r.push(Diagnostic::warning("b", "two").at_op(0));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        let json = r.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("severity").count(), 2);
    }

    #[test]
    fn display_mentions_span() {
        let d = Diagnostic::error("r", "bad").at_op(3);
        assert_eq!(format!("{d}"), "error[r] op 3: bad");
    }
}
