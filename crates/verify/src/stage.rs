//! Per-stage legality rules over compilation-pipeline snapshots.
//!
//! The compiler exposes its intermediate state after every pass as a
//! [`StageSnapshot`]; the structural rules here prove the stage invariants of
//! the paper's pipeline (Fig. 1): qubit indices in bounds, every post-routing
//! two-qubit operation on a coupled pair, only instruction-set gates after
//! decomposition, logical↔physical layouts that are bijections, and a final
//! permutation consistent with the recorded SWAPs.

use circuit::{Circuit, QubitId};
use device::DeviceModel;
use gates::{GateSetKind, InstructionSet};
use qmath::Mat4;

use crate::diagnostic::Diagnostic;
use crate::rule::{Artifact, Context, Rule};

/// The pipeline stage a snapshot was taken after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// After region selection: a connected region has been chosen.
    RegionSelect,
    /// After initial mapping: logical qubits are placed on the region.
    InitialMap,
    /// After routing: the circuit acts on physical qubits, SWAPs inserted.
    SwapRoute,
    /// After NuOp decomposition: only instruction-set gates remain.
    NuOpDecompose,
}

impl Stage {
    /// The pass name the compiler uses for this stage.
    pub fn pass_name(self) -> &'static str {
        match self {
            Stage::RegionSelect => "region-select",
            Stage::InitialMap => "initial-map",
            Stage::SwapRoute => "swap-route",
            Stage::NuOpDecompose => "nuop-decompose",
        }
    }

    /// Maps a compiler pass name back to its stage, if it is one of the four
    /// standard stages.
    pub fn from_pass_name(name: &str) -> Option<Stage> {
        match name {
            "region-select" => Some(Stage::RegionSelect),
            "initial-map" => Some(Stage::InitialMap),
            "swap-route" => Some(Stage::SwapRoute),
            "nuop-decompose" => Some(Stage::NuOpDecompose),
            _ => None,
        }
    }
}

/// A read-only view of the compiler's intermediate state after one pass.
///
/// The compiler constructs these from its IR; rules never see the IR type
/// itself, which keeps this crate below the compiler in the dependency graph.
#[derive(Debug, Clone, Copy)]
pub struct StageSnapshot<'a> {
    /// Which stage the snapshot was taken after.
    pub stage: Stage,
    /// The circuit as it exists at this stage. Before routing it acts on
    /// logical qubits; from [`Stage::SwapRoute`] on it acts on the physical
    /// qubits of the selected subdevice.
    pub circuit: &'a Circuit,
    /// The selected region as device-global qubit ids (empty before
    /// region selection has run).
    pub region: &'a [QubitId],
    /// The region's subdevice (region-local indexing), once selected.
    pub subdevice: Option<&'a DeviceModel>,
    /// `initial_layout[logical] = physical` placement before the first op.
    pub initial_layout: &'a [QubitId],
    /// Placement after the last operation (SWAPs permute the layout).
    pub final_layout: &'a [QubitId],
    /// Number of SWAP operations routing inserted.
    pub swap_count: usize,
    /// Number of SWAP operations the pre-routing program already contained.
    /// Program-level SWAPs are data-moving gates, not layout bookkeeping:
    /// routing keeps them in the stream without touching the layout, so the
    /// swap-consistency rule must not replay them.
    pub program_swap_count: usize,
    /// The instruction set the pipeline decomposes into, when known.
    pub instruction_set: Option<&'a InstructionSet>,
}

/// `circuit/qubit-bounds`: every operation's qubit indices are in range and
/// two-qubit operations act on distinct qubits. Applies at every stage.
#[derive(Debug, Default)]
pub struct QubitBounds;

impl Rule for QubitBounds {
    fn id(&self) -> &'static str {
        "circuit/qubit-bounds"
    }

    fn description(&self) -> &'static str {
        "qubit indices are in range and two-qubit operations act on distinct qubits"
    }

    fn check(&self, artifact: &Artifact<'_>, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Stage(snap) = artifact else {
            return;
        };
        let n = snap.circuit.num_qubits();
        for (i, op) in snap.circuit.iter().enumerate() {
            for &q in op.qubits() {
                if q >= n {
                    out.push(
                        Diagnostic::error(
                            self.id(),
                            format!("op {i} ({}) targets qubit {q} of {n}", op.label()),
                        )
                        .at_op(i),
                    );
                }
            }
            if op.is_two_qubit_unitary() && op.qubits()[0] == op.qubits()[1] {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        format!(
                            "op {i} ({}) targets qubit {} twice",
                            op.label(),
                            op.qubits()[0]
                        ),
                    )
                    .at_op(i),
                );
            }
        }
    }
}

/// `route/coupling`: after routing, every two-qubit operation acts on a
/// coupled pair of the selected subdevice.
#[derive(Debug, Default)]
pub struct CouplingLegality;

impl Rule for CouplingLegality {
    fn id(&self) -> &'static str {
        "route/coupling"
    }

    fn description(&self) -> &'static str {
        "post-routing two-qubit operations act on coupled pairs of the selected region"
    }

    fn check(&self, artifact: &Artifact<'_>, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Stage(snap) = artifact else {
            return;
        };
        if snap.stage < Stage::SwapRoute {
            return;
        }
        let Some(subdevice) = snap.subdevice else {
            return;
        };
        let topology = subdevice.topology();
        for (i, op) in snap.circuit.iter().enumerate() {
            if !op.is_two_qubit_unitary() {
                continue;
            }
            let (q0, q1) = (op.qubits()[0], op.qubits()[1]);
            if q0 < topology.num_qubits()
                && q1 < topology.num_qubits()
                && !topology.has_edge(q0, q1)
            {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        format!(
                            "op {i} ({}) acts on uncoupled pair ({q0}, {q1}) of {}",
                            op.label(),
                            subdevice.name(),
                        ),
                    )
                    .at_op(i),
                );
            }
        }
    }
}

/// `isa/gate-set`: after decomposition, every two-qubit unitary is a gate of
/// the target instruction set — by label *and* by matrix. For discrete sets
/// the matrix must equal the named gate type's unitary; for continuous
/// families the matrix must be a member of the family (its parameters are
/// recovered and the gate rebuilt).
#[derive(Debug, Default)]
pub struct InstructionSetConformance;

impl Rule for InstructionSetConformance {
    fn id(&self) -> &'static str {
        "isa/gate-set"
    }

    fn description(&self) -> &'static str {
        "post-decomposition two-qubit gates belong to the target instruction set"
    }

    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Stage(snap) = artifact else {
            return;
        };
        if snap.stage != Stage::NuOpDecompose {
            return;
        }
        let Some(set) = snap.instruction_set else {
            return;
        };
        for (i, op) in snap.circuit.iter().enumerate() {
            if !op.is_two_qubit_unitary() {
                continue;
            }
            let matrix = op.matrix().and_then(|m| Mat4::try_from(m).ok());
            let Some(matrix) = matrix else {
                out.push(
                    Diagnostic::error(
                        self.id(),
                        format!("op {i} ({}) does not carry a 4x4 matrix", op.label()),
                    )
                    .at_op(i),
                );
                continue;
            };
            match set.kind() {
                GateSetKind::Discrete(types) => {
                    match types.iter().find(|t| t.name() == op.label()) {
                        None => out.push(
                            Diagnostic::error(
                                self.id(),
                                format!(
                                    "op {i} ({}) is not a gate of instruction set {}",
                                    op.label(),
                                    set.name()
                                ),
                            )
                            .at_op(i),
                        ),
                        Some(gate) => {
                            if matrix.max_abs_diff(gate.unitary()) > ctx.tolerance {
                                out.push(
                                    Diagnostic::error(
                                        self.id(),
                                        format!(
                                            "op {i} is labelled {} but its matrix differs from \
                                             the {} gate of set {}",
                                            op.label(),
                                            gate.name(),
                                            set.name()
                                        ),
                                    )
                                    .at_op(i),
                                );
                            }
                        }
                    }
                }
                GateSetKind::Continuous(family) => {
                    if op.label() != family.name() {
                        out.push(
                            Diagnostic::error(
                                self.id(),
                                format!("op {i} ({}) is not a {} gate", op.label(), family.name()),
                            )
                            .at_op(i),
                        );
                        continue;
                    }
                    // Recover the family parameters from the matrix entries
                    // and rebuild; a member reproduces itself exactly.
                    let params = recover_family_params(*family, &matrix);
                    let rebuilt = family.unitary(&params);
                    if matrix.max_abs_diff(&rebuilt) > ctx.tolerance {
                        out.push(
                            Diagnostic::error(
                                self.id(),
                                format!(
                                    "op {i} is labelled {} but its matrix is not a member of \
                                     the family",
                                    family.name()
                                ),
                            )
                            .at_op(i),
                        );
                    }
                }
            }
        }
    }
}

/// Recovers the parameters of a continuous-family member from its matrix.
/// For non-members the rebuilt gate simply fails the comparison.
fn recover_family_params(family: gates::fsim::ContinuousFamily, m: &Mat4) -> Vec<f64> {
    use gates::fsim::ContinuousFamily;
    match family {
        // FullXY members are emitted in the fSim coordinate system,
        // `fSim(θ/2, 0)`: centre block [[cos θ/2, -i sin θ/2], [-i sin θ/2,
        // cos θ/2]].
        ContinuousFamily::FullXy => {
            let theta = 2.0 * f64::atan2(-m[(1, 2)].im, m[(1, 1)].re);
            vec![theta]
        }
        // fSim(θ, φ): centre block [[cos θ, -i sin θ], [-i sin θ, cos θ]],
        // corner e^{-iφ}.
        ContinuousFamily::FullFsim => {
            let theta = f64::atan2(-m[(1, 2)].im, m[(1, 1)].re);
            let phi = -m[(3, 3)].arg();
            vec![theta, phi]
        }
    }
}

/// `layout/bijection`: the logical→physical layouts are injective, in range,
/// and (once routing has run) the initial and final layouts agree in length.
#[derive(Debug, Default)]
pub struct LayoutBijection;

impl Rule for LayoutBijection {
    fn id(&self) -> &'static str {
        "layout/bijection"
    }

    fn description(&self) -> &'static str {
        "logical-to-physical layouts are injective and in range"
    }

    fn check(&self, artifact: &Artifact<'_>, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Stage(snap) = artifact else {
            return;
        };
        if snap.stage < Stage::InitialMap {
            return;
        }
        let physical = snap
            .subdevice
            .map_or(snap.circuit.num_qubits(), DeviceModel::num_qubits);
        for (name, layout) in [
            ("initial", snap.initial_layout),
            ("final", snap.final_layout),
        ] {
            let mut seen = vec![false; physical];
            for (logical, &p) in layout.iter().enumerate() {
                if p >= physical {
                    out.push(Diagnostic::error(
                        self.id(),
                        format!(
                            "{name} layout places logical qubit {logical} on physical qubit {p} \
                             of {physical}"
                        ),
                    ));
                } else if seen[p] {
                    out.push(Diagnostic::error(
                        self.id(),
                        format!("{name} layout places two logical qubits on physical qubit {p}"),
                    ));
                } else {
                    seen[p] = true;
                }
            }
        }
        if snap.stage >= Stage::SwapRoute && snap.initial_layout.len() != snap.final_layout.len() {
            out.push(Diagnostic::error(
                self.id(),
                format!(
                    "initial layout covers {} logical qubits but final layout covers {}",
                    snap.initial_layout.len(),
                    snap.final_layout.len()
                ),
            ));
        }
    }
}

/// `layout/swap-consistency`: replaying the routed circuit's `SWAP`
/// operations over the initial layout reproduces the recorded final layout
/// and swap count. Only meaningful right after routing, while SWAPs are still
/// labelled (decomposition rewrites them into native gates).
#[derive(Debug, Default)]
pub struct SwapConsistency;

impl Rule for SwapConsistency {
    fn id(&self) -> &'static str {
        "layout/swap-consistency"
    }

    fn description(&self) -> &'static str {
        "the final layout and swap count match the SWAPs present in the routed circuit"
    }

    fn check(&self, artifact: &Artifact<'_>, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Stage(snap) = artifact else {
            return;
        };
        if snap.stage != Stage::SwapRoute {
            return;
        }
        let mut layout = snap.initial_layout.to_vec();
        let mut swaps = 0usize;
        for op in snap.circuit.iter() {
            if !(op.is_two_qubit_unitary() && op.label() == "SWAP") {
                continue;
            }
            swaps += 1;
            let (p0, p1) = (op.qubits()[0], op.qubits()[1]);
            for p in &mut layout {
                if *p == p0 {
                    *p = p1;
                } else if *p == p1 {
                    *p = p0;
                }
            }
        }
        let expected = snap.swap_count + snap.program_swap_count;
        if swaps != expected {
            out.push(Diagnostic::error(
                self.id(),
                format!(
                    "circuit contains {swaps} SWAP operations but the report records \
                     {} inserted + {} program-level",
                    snap.swap_count, snap.program_swap_count
                ),
            ));
        }
        if snap.program_swap_count > 0 {
            // Program-level SWAPs move data without updating the layout, and
            // the stream records no per-op provenance, so the replay below
            // would mix bookkeeping and data movement. Count consistency
            // (above) is still checked.
            out.push(Diagnostic::info(
                self.id(),
                format!(
                    "layout replay skipped: program contains {} SWAP gate(s) \
                     indistinguishable from routing SWAPs",
                    snap.program_swap_count
                ),
            ));
        } else if layout != snap.final_layout {
            out.push(Diagnostic::error(
                self.id(),
                format!(
                    "replaying {swaps} SWAPs over the initial layout yields {layout:?}, \
                     but the recorded final layout is {:?}",
                    snap.final_layout
                ),
            ));
        }
    }
}

/// All structural stage rules, in evaluation order.
pub fn structural_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(QubitBounds),
        Box::new(CouplingLegality),
        Box::new(InstructionSetConformance),
        Box::new(LayoutBijection),
        Box::new(SwapConsistency),
    ]
}
