//! The composable rule machinery: [`Rule`], [`Artifact`], [`Context`] and
//! the [`Verifier`] that runs a rule set over an artifact.

use crate::diagnostic::{Diagnostic, VerifyReport};
use crate::distribution::DistributionArtifact;
use crate::kernel::KernelArtifact;
use crate::stage::StageSnapshot;

/// Something the verifier can analyse. Rules receive every artifact and
/// silently skip the variants they do not apply to, so one rule set can be
/// run over a whole pipeline.
#[derive(Debug, Clone, Copy)]
pub enum Artifact<'a> {
    /// A compilation-pipeline snapshot (see [`StageSnapshot`]).
    Stage(&'a StageSnapshot<'a>),
    /// A lowered simulation kernel stream (see [`KernelArtifact`]).
    Kernels(&'a KernelArtifact<'a>),
    /// Two empirical count distributions that should agree (see
    /// [`DistributionArtifact`]).
    Distributions(&'a DistributionArtifact<'a>),
}

/// How much static verification an integration point should run.
///
/// The compiler and execution engine accept this knob; `Off` skips
/// verification entirely, `Final` checks only the finished artifact, and
/// `PerStage` checks after every pipeline stage (the strictest setting,
/// catching a pass that breaks an invariant even when a later pass happens
/// to repair it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum VerifyLevel {
    /// No verification.
    #[default]
    Off,
    /// Verify the final artifact only.
    Final,
    /// Verify after every pipeline stage.
    PerStage,
}

impl VerifyLevel {
    /// True unless the level is [`VerifyLevel::Off`].
    pub fn is_enabled(self) -> bool {
        self != VerifyLevel::Off
    }
}

/// Numerical thresholds shared by all rules.
#[derive(Debug, Clone, Copy)]
pub struct Context {
    /// Largest acceptable deviation for matrix comparisons, unitarity and
    /// Kraus completeness.
    pub tolerance: f64,
    /// Widest register (in qubits) the fused-vs-unfused equivalence spot
    /// check will propagate a probe state through; wider registers are
    /// skipped with an info finding.
    pub equivalence_max_qubits: usize,
    /// Tight completeness tolerance for *composed* channels (the
    /// `channel/composition` rule): conjugation and composition preserve
    /// trace preservation exactly in exact arithmetic, so drift beyond
    /// rounding noise indicates broken carry math.
    pub composed_tolerance: f64,
    /// Confidence level `1 − δ` for the statistical `fusion/tvd-bound` rule's
    /// analytic bound (probability that two same-distribution samples stay
    /// within the bound).
    pub tvd_confidence: f64,
}

impl Default for Context {
    fn default() -> Context {
        Context {
            tolerance: 1e-6,
            equivalence_max_qubits: 16,
            composed_tolerance: 1e-9,
            tvd_confidence: 0.999_999,
        }
    }
}

/// One legality or semantic check. Implementations inspect the artifact and
/// append [`Diagnostic`]s for every violation they find; a rule that does not
/// apply to the artifact appends nothing.
pub trait Rule: Send + Sync {
    /// Stable rule id, e.g. `"route/coupling"`; findings carry it.
    fn id(&self) -> &'static str;

    /// One-line human description of the invariant the rule proves.
    fn description(&self) -> &'static str;

    /// Checks `artifact`, appending findings to `out`.
    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>);
}

/// A configured set of rules.
///
/// ```
/// use circuit::{Circuit, Operation};
/// use verify::{Artifact, Stage, StageSnapshot, Verifier};
///
/// let mut c = Circuit::new(2);
/// c.push(Operation::cz(0, 1));
/// let snapshot = StageSnapshot {
///     stage: Stage::RegionSelect,
///     circuit: &c,
///     region: &[],
///     subdevice: None,
///     initial_layout: &[],
///     final_layout: &[],
///     swap_count: 0,
///     program_swap_count: 0,
///     instruction_set: None,
/// };
/// let report = Verifier::with_default_rules().run(&Artifact::Stage(&snapshot));
/// assert!(!report.has_errors());
/// ```
pub struct Verifier {
    rules: Vec<Box<dyn Rule>>,
    context: Context,
}

impl Verifier {
    /// An empty verifier; add rules with [`Verifier::rule`].
    pub fn new() -> Verifier {
        Verifier {
            rules: Vec::new(),
            context: Context::default(),
        }
    }

    /// A verifier loaded with every built-in rule (structural and semantic).
    pub fn with_default_rules() -> Verifier {
        let mut v = Verifier::new();
        v.rules.extend(crate::stage::structural_rules());
        v.rules.extend(crate::kernel::semantic_rules());
        v
    }

    /// A verifier with only the structural (pipeline-stage) rules.
    pub fn structural() -> Verifier {
        let mut v = Verifier::new();
        v.rules.extend(crate::stage::structural_rules());
        v
    }

    /// A verifier with only the semantic (kernel-stream) rules.
    pub fn semantic() -> Verifier {
        let mut v = Verifier::new();
        v.rules.extend(crate::kernel::semantic_rules());
        v
    }

    /// A verifier with only the statistical (count-distribution) rules.
    pub fn statistical() -> Verifier {
        let mut v = Verifier::new();
        v.rules.extend(crate::distribution::statistical_rules());
        v
    }

    /// Adds a rule.
    pub fn rule(mut self, rule: Box<dyn Rule>) -> Verifier {
        self.rules.push(rule);
        self
    }

    /// Replaces the numerical context.
    pub fn context(mut self, context: Context) -> Verifier {
        self.context = context;
        self
    }

    /// The ids of the loaded rules, in evaluation order.
    pub fn rule_ids(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.id()).collect()
    }

    /// Runs every rule over the artifact and collects the findings.
    pub fn run(&self, artifact: &Artifact<'_>) -> VerifyReport {
        let mut out = Vec::new();
        for rule in &self.rules {
            rule.check(artifact, &self.context, &mut out);
        }
        VerifyReport::from_diagnostics(out)
    }
}

impl Default for Verifier {
    fn default() -> Verifier {
        Verifier::with_default_rules()
    }
}
