//! Static analysis over circuits and compiled/precompiled artifacts.
//!
//! This crate proves compiled artifacts legal *before they run a single
//! shot*. It sits below the compiler and the simulator in the dependency
//! graph: both hand it neutral views of their intermediate state
//! ([`StageSnapshot`] for pipeline stages, [`KernelArtifact`] for lowered
//! kernel streams) and get back a [`VerifyReport`] of [`Diagnostic`]s.
//!
//! * [`diagnostic`] — severities, op-index spans, findings, and the flat-JSON
//!   rendering shared with the server wire codec.
//! * [`rule`] — the composable [`Rule`] trait, the [`Artifact`] the rules
//!   inspect, and the [`Verifier`] driver.
//! * [`stage`] — structural legality rules for the compilation pipeline
//!   (bounds, post-routing coupling, post-decomposition instruction-set
//!   conformance, layout bijections, swap/permutation consistency).
//! * [`kernel`] — semantic rules for lowered simulation kernels (unitarity,
//!   Kraus completeness, fused-vs-unfused equivalence, RNG draw-order audit,
//!   composed-channel sanity for aggressive fusion).
//! * [`distribution`] — statistical rules over measurement-count histograms
//!   (the TVD-bound harness validating `FusionPolicy::Aggressive` against
//!   `Safe`, where bit-identity no longer holds).
//!
//! # Example
//!
//! ```
//! use circuit::{Circuit, Operation};
//! use device::DeviceModel;
//! use qmath::RngSeed;
//! use verify::{Artifact, Stage, StageSnapshot, Verifier};
//!
//! // A "routed" circuit with a two-qubit gate on an uncoupled pair.
//! let device = DeviceModel::sycamore(RngSeed(1)).subdevice(&[0, 1, 2]);
//! let mut c = Circuit::new(3);
//! c.push(Operation::cz(0, 2)); // 0 and 2 are not adjacent on the line
//! let layout = [0, 1, 2];
//! let snapshot = StageSnapshot {
//!     stage: Stage::SwapRoute,
//!     circuit: &c,
//!     region: &[0, 1, 2],
//!     subdevice: Some(&device),
//!     initial_layout: &layout,
//!     final_layout: &layout,
//!     swap_count: 0,
//!     program_swap_count: 0,
//!     instruction_set: None,
//! };
//! let report = Verifier::structural().run(&Artifact::Stage(&snapshot));
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics()[0].rule(), "route/coupling");
//! assert_eq!(report.diagnostics()[0].span().unwrap().start, 0);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod diagnostic;
pub mod distribution;
pub mod kernel;
pub mod rule;
pub mod stage;

pub use diagnostic::{Diagnostic, Severity, Span, VerifyReport};
pub use distribution::{marginal_probabilities, tvd_bound, two_sample_tvd, DistributionArtifact};
pub use kernel::{ChannelKraus, ChannelView, KernelArtifact, KernelKind, KernelOp};
pub use rule::{Artifact, Context, Rule, Verifier, VerifyLevel};
pub use stage::{Stage, StageSnapshot};
