//! Statistical validation of empirical count distributions.
//!
//! `FusionPolicy::Aggressive` changes the RNG stream, so its counts cannot be
//! compared bit-for-bit against a `Safe` run — the two lowerings are equal *in
//! distribution*, not per shot. This module provides the statistical
//! replacement for the bit-identity check: a neutral two-sample view
//! ([`DistributionArtifact`]) and the [`TvdBound`] rule, which tests the
//! empirical total-variation distance between the two count histograms
//! against an analytic concentration bound.
//!
//! # The bound
//!
//! For `N` iid samples of a distribution over `d` outcomes, the empirical
//! distribution `p̂` satisfies `E‖p̂ − p‖₁ ≤ √(d/N)` (Cauchy–Schwarz over the
//! per-outcome variances), and `‖p̂ − p‖₁` concentrates around its mean with
//! sub-Gaussian tail `exp(−N ε²/2)` (McDiarmid; each sample moves the norm by
//! at most `2/N`). With probability at least `1 − δ` a two-sample TVD
//! therefore obeys
//!
//! ```text
//! TVD(p̂, q̂) ≤ ½·[ √(d/Nₐ) + √(d/N_b)
//!               + √(2·ln(2/δ)/Nₐ) + √(2·ln(2/δ)/N_b) ]
//! ```
//!
//! when `p = q`. The full-dimension bound is only sharp with `N ≳ d` samples,
//! so the rule always checks every per-qubit *marginal* (`d = 2`, with a
//! union bound over qubits) and adds the full-distribution check only when
//! enough samples are available.

use crate::diagnostic::Diagnostic;
use crate::rule::{Artifact, Context, Rule};

/// Two empirical count histograms over the same register that are claimed to
/// be drawn from the same distribution.
///
/// Counts are `(basis_index, count)` pairs (any order, indices need not be
/// exhaustive); `num_qubits` fixes the outcome space at `2^num_qubits`.
#[derive(Debug, Clone, Copy)]
pub struct DistributionArtifact<'a> {
    /// Register width in qubits; outcomes live in `0..2^num_qubits`.
    pub num_qubits: usize,
    /// Human-readable origin of the first sample (e.g. `"safe"`).
    pub label_a: &'a str,
    /// Human-readable origin of the second sample (e.g. `"aggressive"`).
    pub label_b: &'a str,
    /// First sample's `(basis_index, count)` histogram.
    pub counts_a: &'a [(usize, usize)],
    /// Second sample's `(basis_index, count)` histogram.
    pub counts_b: &'a [(usize, usize)],
}

/// Total shots in a histogram.
fn total(counts: &[(usize, usize)]) -> usize {
    counts.iter().map(|(_, c)| c).sum()
}

/// Empirical total-variation distance between two count histograms:
/// `½ Σ_x |p̂(x) − q̂(x)|`, over the union of observed outcomes.
///
/// Returns 0.0 when either histogram is empty (no evidence of divergence).
pub fn two_sample_tvd(counts_a: &[(usize, usize)], counts_b: &[(usize, usize)]) -> f64 {
    let (na, nb) = (total(counts_a), total(counts_b));
    if na == 0 || nb == 0 {
        return 0.0;
    }
    let mut diff = std::collections::BTreeMap::new();
    for &(idx, c) in counts_a {
        *diff.entry(idx).or_insert(0.0) += c as f64 / na as f64;
    }
    for &(idx, c) in counts_b {
        *diff.entry(idx).or_insert(0.0) -= c as f64 / nb as f64;
    }
    diff.values().map(|d| d.abs()).sum::<f64>() / 2.0
}

/// The analytic high-probability bound on the two-sample TVD of two empirical
/// distributions over `dim` outcomes drawn from the *same* source: with
/// probability at least `1 − delta`,
/// `TVD ≤ ½[√(dim/nₐ) + √(dim/n_b) + √(2 ln(2/δ)/nₐ) + √(2 ln(2/δ)/n_b)]`.
pub fn tvd_bound(dim: usize, samples_a: usize, samples_b: usize, delta: f64) -> f64 {
    let (na, nb) = (samples_a.max(1) as f64, samples_b.max(1) as f64);
    let d = dim as f64;
    let tail = (2.0 * (2.0 / delta).ln()).max(0.0);
    0.5 * ((d / na).sqrt() + (d / nb).sqrt() + (tail / na).sqrt() + (tail / nb).sqrt())
}

/// Per-qubit marginal probabilities of measuring `1`, big-endian (qubit 0 is
/// the most significant bit of the basis index).
pub fn marginal_probabilities(num_qubits: usize, counts: &[(usize, usize)]) -> Vec<f64> {
    let shots = total(counts);
    let mut ones = vec![0usize; num_qubits];
    for &(idx, c) in counts {
        for (q, slot) in ones.iter_mut().enumerate() {
            if (idx >> (num_qubits - 1 - q)) & 1 == 1 {
                *slot += c;
            }
        }
    }
    ones.into_iter()
        .map(|c| {
            if shots == 0 {
                0.0
            } else {
                c as f64 / shots as f64
            }
        })
        .collect()
}

/// Sample budget ratio required before the full-dimension TVD check is sharp
/// enough to be meaningful: `min(Nₐ, N_b) ≥ FULL_CHECK_SAMPLE_FACTOR · 2^n`.
const FULL_CHECK_SAMPLE_FACTOR: usize = 4;

/// `fusion/tvd-bound`: two count histograms that are claimed to share a
/// distribution stay within the analytic TVD bound.
///
/// Always checks every per-qubit marginal (`d = 2`, union bound over qubits);
/// additionally checks the full `2^n`-outcome distribution when both samples
/// have at least `FULL_CHECK_SAMPLE_FACTOR·2^n` shots. When every check
/// passes, an info finding reports the measured distances so harnesses can
/// log distance-vs-bound.
#[derive(Debug, Default)]
pub struct TvdBound;

impl Rule for TvdBound {
    fn id(&self) -> &'static str {
        "fusion/tvd-bound"
    }

    fn description(&self) -> &'static str {
        "two same-distribution count samples stay within the analytic TVD bound"
    }

    fn check(&self, artifact: &Artifact<'_>, ctx: &Context, out: &mut Vec<Diagnostic>) {
        let Artifact::Distributions(art) = artifact else {
            return;
        };
        let (na, nb) = (total(art.counts_a), total(art.counts_b));
        if na == 0 || nb == 0 || art.num_qubits == 0 {
            out.push(Diagnostic::info(
                self.id(),
                format!(
                    "TVD check skipped: empty sample ({} has {na} shots, {} has {nb})",
                    art.label_a, art.label_b
                ),
            ));
            return;
        }
        let delta = (1.0 - ctx.tvd_confidence).max(f64::MIN_POSITIVE);
        let mut failed = false;

        // Per-qubit marginals: d = 2, δ split across qubits (union bound).
        let marginal_delta = delta / art.num_qubits as f64;
        let marginal_limit = tvd_bound(2, na, nb, marginal_delta);
        let ma = marginal_probabilities(art.num_qubits, art.counts_a);
        let mb = marginal_probabilities(art.num_qubits, art.counts_b);
        let mut worst_marginal = 0.0f64;
        for (q, (pa, pb)) in ma.iter().zip(&mb).enumerate() {
            let dist = (pa - pb).abs();
            worst_marginal = worst_marginal.max(dist);
            if dist > marginal_limit {
                failed = true;
                out.push(Diagnostic::error(
                    self.id(),
                    format!(
                        "qubit {q} marginal diverges: |{pa:.4} − {pb:.4}| = {dist:.4} exceeds \
                         the {marginal_limit:.4} bound ({} {na} shots vs {} {nb} shots)",
                        art.label_a, art.label_b
                    ),
                ));
            }
        }

        // Full-distribution check only when the samples can resolve it.
        let dim = 1usize
            .checked_shl(art.num_qubits as u32)
            .unwrap_or(usize::MAX);
        let full = if dim
            .checked_mul(FULL_CHECK_SAMPLE_FACTOR)
            .is_some_and(|needed| na.min(nb) >= needed)
        {
            let measured = two_sample_tvd(art.counts_a, art.counts_b);
            let limit = tvd_bound(dim, na, nb, delta);
            if measured > limit {
                failed = true;
                out.push(Diagnostic::error(
                    self.id(),
                    format!(
                        "full-distribution TVD {measured:.4} exceeds the {limit:.4} bound \
                         ({} {na} shots vs {} {nb} shots over {dim} outcomes)",
                        art.label_a, art.label_b
                    ),
                ));
            }
            Some((measured, limit))
        } else {
            None
        };

        if !failed {
            let full_part = match full {
                Some((measured, limit)) => {
                    format!("; full TVD {measured:.4} within {limit:.4}")
                }
                None => format!(
                    "; full-distribution check skipped ({} shots < {FULL_CHECK_SAMPLE_FACTOR}×{dim})",
                    na.min(nb)
                ),
            };
            out.push(Diagnostic::info(
                self.id(),
                format!(
                    "{} and {} agree: worst marginal distance {worst_marginal:.4} within \
                     {marginal_limit:.4}{full_part}",
                    art.label_a, art.label_b
                ),
            ));
        }
    }
}

/// All statistical distribution rules, in evaluation order.
pub fn statistical_rules() -> Vec<Box<dyn Rule>> {
    vec![Box::new(TvdBound)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Verifier;
    use crate::Severity;

    fn run(art: &DistributionArtifact<'_>) -> crate::VerifyReport {
        Verifier::statistical().run(&Artifact::Distributions(art))
    }

    #[test]
    fn identical_histograms_pass_with_an_info_summary() {
        let counts = [(0usize, 500usize), (3, 500)];
        let art = DistributionArtifact {
            num_qubits: 2,
            label_a: "safe",
            label_b: "aggressive",
            counts_a: &counts,
            counts_b: &counts,
        };
        let report = run(&art);
        assert!(!report.has_errors(), "{report:?}");
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.severity() == Severity::Info && d.message().contains("agree")));
    }

    #[test]
    fn small_sampling_noise_stays_within_the_bound() {
        // Two samples of the same Bell distribution with realistic noise.
        let a = [(0usize, 1020usize), (3, 980)];
        let b = [(0usize, 968usize), (3, 1032)];
        let art = DistributionArtifact {
            num_qubits: 2,
            label_a: "safe",
            label_b: "aggressive",
            counts_a: &a,
            counts_b: &b,
        };
        assert!(!run(&art).has_errors());
    }

    #[test]
    fn grossly_different_distributions_fail() {
        let a = [(0usize, 2000usize)];
        let b = [(3usize, 2000usize)];
        let art = DistributionArtifact {
            num_qubits: 2,
            label_a: "safe",
            label_b: "aggressive",
            counts_a: &a,
            counts_b: &b,
        };
        let report = run(&art);
        assert!(report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.rule() == "fusion/tvd-bound" && d.severity() == Severity::Error));
    }

    #[test]
    fn empty_samples_are_an_info_skip() {
        let a: [(usize, usize); 0] = [];
        let b = [(0usize, 10usize)];
        let art = DistributionArtifact {
            num_qubits: 2,
            label_a: "safe",
            label_b: "aggressive",
            counts_a: &a,
            counts_b: &b,
        };
        let report = run(&art);
        assert!(!report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.message().contains("skipped")));
    }

    #[test]
    fn tvd_helpers_are_consistent() {
        let a = [(0usize, 50usize), (1, 50)];
        let b = [(0usize, 100usize)];
        // p = (.5, .5), q = (1, 0) → TVD = .5
        assert!((two_sample_tvd(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(two_sample_tvd(&a, &a), 0.0);
        // The bound shrinks with more samples and grows with dimension.
        assert!(tvd_bound(2, 10_000, 10_000, 1e-6) < tvd_bound(2, 100, 100, 1e-6));
        assert!(tvd_bound(2, 1000, 1000, 1e-6) < tvd_bound(1024, 1000, 1000, 1e-6));
        // Marginals: indices are big-endian.
        let m = marginal_probabilities(2, &[(0b10, 3), (0b00, 1)]);
        assert!((m[0] - 0.75).abs() < 1e-12);
        assert_eq!(m[1], 0.0);
    }
}
