//! Property-based tests for the qmath crate.

use proptest::prelude::*;
use qmath::{
    average_gate_fidelity, haar_random_unitary, hilbert_schmidt_fidelity, hilbert_schmidt_inner,
    process_infidelity, CMatrix, Complex, Mat2, Mat4, RngSeed,
};

fn arb_complex() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
}

proptest! {
    // Seed-pinned tier-1 suite: case count fixed here, RNG stream fixed by
    // PROPTEST_RNG_SEED (see vendor/proptest) so CI runs are reproducible.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_addition_commutes(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a + b) - (b + a)).norm() < 1e-9);
    }

    #[test]
    fn complex_multiplication_commutes(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a * b) - (b * a)).norm() < 1e-9);
    }

    #[test]
    fn complex_distributivity(a in arb_complex(), b in arb_complex(), c in arb_complex()) {
        prop_assert!(((a * (b + c)) - (a * b + a * c)).norm() < 1e-7);
    }

    #[test]
    fn conjugation_is_involutive(a in arb_complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn norm_is_multiplicative(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-7);
    }

    #[test]
    fn polar_roundtrip(r in 0.01f64..100.0, theta in -std::f64::consts::PI..std::f64::consts::PI) {
        let z = Complex::from_polar(r, theta);
        prop_assert!((z.norm() - r).abs() < 1e-8);
        prop_assert!((z.arg() - theta).abs() < 1e-8);
    }

    #[test]
    fn haar_unitaries_stay_unitary_under_products(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let prod = &a * &b;
        prop_assert!(prod.is_unitary(1e-8));
    }

    #[test]
    fn dagger_reverses_products(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn kron_of_unitaries_is_unitary(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(2, &mut rng);
        let b = haar_random_unitary(2, &mut rng);
        prop_assert!(a.kron(&b).is_unitary(1e-9));
    }

    #[test]
    fn fidelity_invariant_under_common_rotation(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let w = haar_random_unitary(4, &mut rng);
        let f1 = hilbert_schmidt_fidelity(&a, &b);
        let f2 = hilbert_schmidt_fidelity(&(&w * &a), &(&w * &b));
        prop_assert!((f1 - f2).abs() < 1e-8);
    }

    #[test]
    fn trace_cyclicity(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let t1 = (&a * &b).trace();
        let t2 = (&b * &a).trace();
        prop_assert!((t1 - t2).norm() < 1e-8);
    }

    // ----- SmallMat vs CMatrix agreement (PR 4 hot-path kernel) -----

    #[test]
    fn small_mat_products_match_cmatrix(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let sa = Mat4::try_from(&a).unwrap();
        let sb = Mat4::try_from(&b).unwrap();
        let heap = &a * &b;
        let stack = sa * sb;
        prop_assert!(stack.approx_eq(&heap, 1e-12));
    }

    #[test]
    fn small_mat_adjoint_trace_and_norm_match_cmatrix(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let sa = Mat4::try_from(&a).unwrap();
        prop_assert!(sa.dagger().approx_eq(&a.dagger(), 1e-12));
        prop_assert!(sa.transpose().approx_eq(&a.transpose(), 1e-12));
        prop_assert!(sa.conj().approx_eq(&a.conj(), 1e-12));
        prop_assert!((sa.trace() - a.trace()).norm() < 1e-12);
        prop_assert!((sa.frobenius_norm() - a.frobenius_norm()).abs() < 1e-12);
        prop_assert!((sa.determinant() - a.determinant()).norm() < 1e-10);
        prop_assert!(sa.is_unitary(1e-9));
    }

    #[test]
    fn small_mat_kron_matches_cmatrix(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(2, &mut rng);
        let b = haar_random_unitary(2, &mut rng);
        let sa = Mat2::try_from(&a).unwrap();
        let sb = Mat2::try_from(&b).unwrap();
        prop_assert!(sa.kron(&sb).approx_eq(&a.kron(&b), 1e-12));
    }

    #[test]
    fn small_mat_fidelities_match_cmatrix(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let sa = Mat4::try_from(&a).unwrap();
        let sb = Mat4::try_from(&b).unwrap();
        prop_assert!((hilbert_schmidt_inner(&sa, &sb) - hilbert_schmidt_inner(&a, &b)).norm() < 1e-12);
        prop_assert!((hilbert_schmidt_fidelity(&sa, &sb) - hilbert_schmidt_fidelity(&a, &b)).abs() < 1e-12);
        prop_assert!((average_gate_fidelity(&sa, &sb) - average_gate_fidelity(&a, &b)).abs() < 1e-12);
        prop_assert!((process_infidelity(&sa, &sb) - process_infidelity(&a, &b)).abs() < 1e-12);
        // Mixed heap/stack arguments agree too.
        prop_assert!((hilbert_schmidt_fidelity(&sa, &b) - hilbert_schmidt_fidelity(&a, &sb)).abs() < 1e-12);
    }

    #[test]
    fn small_mat_round_trips_through_conversions(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let small = Mat4::try_from(&a).unwrap();
        let back: CMatrix = small.into();
        prop_assert!(back.approx_eq(&a, 0.0));
        prop_assert_eq!(Mat4::try_from(&back).unwrap(), small);

        let b = haar_random_unitary(2, &mut rng);
        let small2 = Mat2::try_from(&b).unwrap();
        let back2 = CMatrix::from(&small2);
        prop_assert!(back2.approx_eq(&b, 0.0));
    }

    #[test]
    fn determinant_multiplicative(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(3, &mut rng);
        let b = haar_random_unitary(3, &mut rng);
        let lhs = (&a * &b).determinant();
        let rhs = a.determinant() * b.determinant();
        prop_assert!((lhs - rhs).norm() < 1e-7);
    }
}

#[test]
fn identity_block_structure() {
    let id = CMatrix::identity(4);
    let block = id.block(0, 0, 2, 2);
    assert!(block.approx_eq(&CMatrix::identity(2), 1e-12));
}
