//! Property-based tests for the qmath crate.

use proptest::prelude::*;
use qmath::{haar_random_unitary, hilbert_schmidt_fidelity, CMatrix, Complex, RngSeed};

fn arb_complex() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
}

proptest! {
    // Seed-pinned tier-1 suite: case count fixed here, RNG stream fixed by
    // PROPTEST_RNG_SEED (see vendor/proptest) so CI runs are reproducible.
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_addition_commutes(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a + b) - (b + a)).norm() < 1e-9);
    }

    #[test]
    fn complex_multiplication_commutes(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a * b) - (b * a)).norm() < 1e-9);
    }

    #[test]
    fn complex_distributivity(a in arb_complex(), b in arb_complex(), c in arb_complex()) {
        prop_assert!(((a * (b + c)) - (a * b + a * c)).norm() < 1e-7);
    }

    #[test]
    fn conjugation_is_involutive(a in arb_complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn norm_is_multiplicative(a in arb_complex(), b in arb_complex()) {
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-7);
    }

    #[test]
    fn polar_roundtrip(r in 0.01f64..100.0, theta in -std::f64::consts::PI..std::f64::consts::PI) {
        let z = Complex::from_polar(r, theta);
        prop_assert!((z.norm() - r).abs() < 1e-8);
        prop_assert!((z.arg() - theta).abs() < 1e-8);
    }

    #[test]
    fn haar_unitaries_stay_unitary_under_products(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let prod = &a * &b;
        prop_assert!(prod.is_unitary(1e-8));
    }

    #[test]
    fn dagger_reverses_products(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let lhs = (&a * &b).dagger();
        let rhs = &b.dagger() * &a.dagger();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn kron_of_unitaries_is_unitary(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(2, &mut rng);
        let b = haar_random_unitary(2, &mut rng);
        prop_assert!(a.kron(&b).is_unitary(1e-9));
    }

    #[test]
    fn fidelity_invariant_under_common_rotation(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let w = haar_random_unitary(4, &mut rng);
        let f1 = hilbert_schmidt_fidelity(&a, &b);
        let f2 = hilbert_schmidt_fidelity(&(&w * &a), &(&w * &b));
        prop_assert!((f1 - f2).abs() < 1e-8);
    }

    #[test]
    fn trace_cyclicity(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        let t1 = (&a * &b).trace();
        let t2 = (&b * &a).trace();
        prop_assert!((t1 - t2).norm() < 1e-8);
    }

    #[test]
    fn determinant_multiplicative(seed in 0u64..1000) {
        let mut rng = RngSeed(seed).rng();
        let a = haar_random_unitary(3, &mut rng);
        let b = haar_random_unitary(3, &mut rng);
        let lhs = (&a * &b).determinant();
        let rhs = a.determinant() * b.determinant();
        prop_assert!((lhs - rhs).norm() < 1e-7);
    }
}

#[test]
fn identity_block_structure() {
    let id = CMatrix::identity(4);
    let block = id.block(0, 0, 2, 2);
    assert!(block.approx_eq(&CMatrix::identity(2), 1e-12));
}
