//! Complex linear algebra primitives for quantum-gate synthesis and simulation.
//!
//! This crate is the numerical foundation of the workspace. It provides:
//!
//! * [`Complex`] — a `f64`-based complex scalar (the workspace does not depend on
//!   external numerics crates).
//! * [`SmallMat`] — a `Copy`, const-generic, **stack-allocated** N×N complex
//!   matrix ([`Mat2`] / [`Mat4`] aliases) with multiplication, adjoint,
//!   Kronecker product (`Mat2 ⊗ Mat2 → Mat4`), trace, norms and unitarity
//!   checks. This is the synthesis hot-path kernel: the NuOp objective
//!   evaluates templates with zero heap allocations per call.
//! * [`CMatrix`] — a dense, heap-allocated complex matrix for general N×N
//!   work: QR decomposition, Haar sampling, eigen-solves and the `2^n`-sized
//!   register operators built by circuit embedding.
//! * The [`MatRef`] read-only view both types implement, so fidelity measures
//!   and entry-wise comparisons accept either representation.
//! * Haar-random unitary sampling (used by Quantum Volume workloads).
//! * Fidelity measures between unitaries (Hilbert–Schmidt overlap, average gate
//!   fidelity) used by the NuOp objective function.
//!
//! # Which matrix type should I use?
//!
//! Use [`Mat2`] / [`Mat4`] for fixed-size gate algebra (gate constructors,
//! decomposition objectives, Weyl invariants, state-vector gate application):
//! they are `Copy` and never allocate. Use [`CMatrix`] when the dimension is
//! dynamic (`2^n` register operators, QR/eigen routines, Haar sampling).
//! Convert losslessly at boundaries with `CMatrix::from(small)` /
//! `Mat4::try_from(&cmatrix)`.
//!
//! # Example
//!
//! ```
//! use qmath::{CMatrix, Complex, Mat2};
//!
//! // Stack-allocated 2×2 algebra…
//! let x = Mat2::from_real(&[0.0, 1.0, 1.0, 0.0]);
//! let id = x * x;
//! assert!(id.approx_eq(&Mat2::identity(), 1e-12));
//! assert!((id.trace() - Complex::new(2.0, 0.0)).norm() < 1e-12);
//!
//! // …converts losslessly to the heap representation and back.
//! let big: CMatrix = x.into();
//! assert_eq!(Mat2::try_from(&big).unwrap(), x);
//! ```

#![warn(missing_docs)]

pub mod complex;
pub mod fidelity;
pub mod matrix;
pub mod random;
pub mod small;

pub use complex::Complex;
pub use fidelity::{
    average_gate_fidelity, hilbert_schmidt_fidelity, hilbert_schmidt_inner, process_infidelity,
};
pub use matrix::CMatrix;
pub use random::{haar_random_su4, haar_random_unitary, random_special_unitary, RngSeed};
pub use small::{Mat2, Mat4, MatRef, ShapeMismatch, SmallMat};

/// Machine-precision-ish tolerance used across the workspace for unitary checks.
pub const DEFAULT_TOL: f64 = 1e-9;

/// The imaginary unit as a [`Complex`] constant.
pub const I: Complex = Complex { re: 0.0, im: 1.0 };

/// Complex one.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

/// Complex zero.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
