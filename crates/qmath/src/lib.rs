//! Complex linear algebra primitives for quantum-gate synthesis and simulation.
//!
//! This crate is the numerical foundation of the workspace. It provides:
//!
//! * [`Complex`] — a `f64`-based complex scalar (the workspace does not depend on
//!   external numerics crates).
//! * [`CMatrix`] — a dense, heap-allocated complex matrix with the operations the
//!   rest of the toolkit needs: multiplication, adjoint, Kronecker product, trace,
//!   QR decomposition, matrix norms and unitarity checks.
//! * Fixed-size convenience constructors for the ubiquitous 2×2 and 4×4 unitaries.
//! * Haar-random unitary sampling (used by Quantum Volume workloads).
//! * Fidelity measures between unitaries (Hilbert–Schmidt overlap, average gate
//!   fidelity) used by the NuOp objective function.
//!
//! # Example
//!
//! ```
//! use qmath::{CMatrix, Complex};
//!
//! let x = CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]);
//! let id = &x * &x;
//! assert!(id.approx_eq(&CMatrix::identity(2), 1e-12));
//! let tr = id.trace();
//! assert!((tr - Complex::new(2.0, 0.0)).norm() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod complex;
pub mod fidelity;
pub mod matrix;
pub mod random;

pub use complex::Complex;
pub use fidelity::{
    average_gate_fidelity, hilbert_schmidt_fidelity, hilbert_schmidt_inner, process_infidelity,
};
pub use matrix::CMatrix;
pub use random::{haar_random_su4, haar_random_unitary, random_special_unitary, RngSeed};

/// Machine-precision-ish tolerance used across the workspace for unitary checks.
pub const DEFAULT_TOL: f64 = 1e-9;

/// The imaginary unit as a [`Complex`] constant.
pub const I: Complex = Complex { re: 0.0, im: 1.0 };

/// Complex one.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

/// Complex zero.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
