//! A minimal `f64` complex scalar.
//!
//! The workspace intentionally avoids external numerics dependencies; this module
//! implements the subset of complex arithmetic required by gate synthesis,
//! numerical optimization and state-vector simulation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use qmath::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    ///
    /// ```
    /// use qmath::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{i theta}` — a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Modulus (absolute value).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus. Cheaper than [`Complex::norm`] when only comparisons are needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns a non-finite value when `self` is zero, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on both components.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self - other).norm() <= tol
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division by a complex number IS multiplication by its inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE, Complex::new(1.0, 0.0));
        assert_eq!(Complex::I, Complex::new(0.0, 1.0));
        assert_eq!(Complex::from_real(3.5), Complex::new(3.5, 0.0));
        assert_eq!(Complex::from(2.0), Complex::new(2.0, 0.0));
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.2, -0.7);
        let b = Complex::new(-2.5, 0.3);
        assert!((a + b - (b + a)).norm() < 1e-15);
        assert!((a * b - (b * a)).norm() < 1e-15);
        assert!(((a * b) / b - a).norm() < 1e-12);
        assert!((a - a).norm() < 1e-15);
        assert!((a + (-a)).norm() < 1e-15);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((Complex::I * Complex::I + Complex::ONE).norm() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(3.0, 0.8);
        assert!((z.norm() - 3.0).abs() < 1e-12);
        assert!((z.arg() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cis_and_exp_agree() {
        for k in 0..8 {
            let theta = k as f64 * PI / 4.0;
            let a = Complex::cis(theta);
            let b = Complex::new(0.0, theta).exp();
            assert!(a.approx_eq(b, 1e-12));
        }
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!((z.norm() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        assert!(((z * z.conj()).re - 25.0).abs() < 1e-12);
    }

    #[test]
    fn inverse() {
        let z = Complex::new(0.5, -1.5);
        assert!((z * z.inv() - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-2.0, 3.0);
        let s = z.sqrt();
        assert!((s * s - z).norm() < 1e-12);
    }

    #[test]
    fn exp_of_i_pi_over_2() {
        let z = Complex::new(0.0, FRAC_PI_2).exp();
        assert!(z.approx_eq(Complex::I, 1e-12));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::ONE;
        z -= Complex::I;
        z *= Complex::new(2.0, 0.0);
        z /= Complex::new(2.0, 0.0);
        assert!(z.approx_eq(Complex::new(2.0, 0.0), 1e-12));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex::ONE, Complex::I, Complex::new(1.0, 1.0)];
        let s: Complex = v.iter().sum();
        assert!(s.approx_eq(Complex::new(2.0, 2.0), 1e-12));
        let s2: Complex = v.into_iter().sum();
        assert!(s2.approx_eq(Complex::new(2.0, 2.0), 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        let z = Complex::new(1.0, -2.0);
        let s = format!("{z}");
        assert!(s.contains('-'));
        let z2 = Complex::new(1.0, 2.0);
        assert!(format!("{z2}").contains('+'));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -1.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -2.0));
        assert_eq!(2.0 * z, Complex::new(2.0, -2.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -0.5));
    }

    #[test]
    fn finiteness() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
