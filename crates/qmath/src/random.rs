//! Random unitary sampling.
//!
//! Quantum Volume circuits sample two-qubit gates Haar-uniformly from SU(4)
//! (Cross et al., "Validating quantum computers using randomized model
//! circuits"). The sampler here uses the standard Ginibre + QR construction:
//! draw an n×n matrix of i.i.d. complex Gaussians, QR-factorize it and fix the
//! phases of R's diagonal, which yields a Haar-distributed unitary.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::complex::Complex;
use crate::matrix::CMatrix;
use crate::small::Mat4;

/// A seed wrapper for reproducible experiment streams.
///
/// All workloads in the workspace derive their randomness from a `RngSeed` so
/// that every figure and table is exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngSeed(pub u64);

impl RngSeed {
    /// Builds a deterministic ChaCha RNG from this seed.
    pub fn rng(self) -> ChaCha8Rng {
        use rand::SeedableRng;
        ChaCha8Rng::seed_from_u64(self.0)
    }

    /// Derives a child seed for an independent stream, e.g. per circuit index.
    pub fn child(self, index: u64) -> RngSeed {
        // SplitMix64-style mixing keeps child streams decorrelated.
        let mut z = self
            .0
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        RngSeed(z ^ (z >> 31))
    }
}

impl Default for RngSeed {
    fn default() -> Self {
        RngSeed(0xC0FFEE)
    }
}

/// Samples a standard complex Gaussian (mean 0, unit variance per component).
fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R) -> Complex {
    // Box–Muller transform.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    Complex::new(r * theta.cos(), r * theta.sin())
}

/// Samples an `n`×`n` Haar-random unitary matrix.
///
/// ```
/// use qmath::{haar_random_unitary, RngSeed};
/// let mut rng = RngSeed(42).rng();
/// let u = haar_random_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-9));
/// ```
pub fn haar_random_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMatrix {
    assert!(n > 0, "dimension must be positive");
    let mut g = CMatrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            g[(r, c)] = complex_gaussian(rng);
        }
    }
    let (q, r) = g.qr();
    // Fix phases: multiply column j of Q by phase(R_jj)/|R_jj| so the
    // distribution is exactly Haar (Mezzadri 2007).
    let mut u = q;
    for j in 0..n {
        let d = r[(j, j)];
        let phase = if d.norm() > 0.0 {
            d / d.norm()
        } else {
            Complex::ONE
        };
        for row in 0..n {
            u[(row, j)] *= phase;
        }
    }
    u
}

/// Samples a Haar-random element of SU(4): a 4×4 unitary with determinant one.
///
/// Quantum-Volume layers apply such matrices to random qubit pairs. The
/// result is the stack-allocated [`Mat4`] because these matrices feed the
/// synthesis hot path directly (decomposition targets, two-qubit operations);
/// convert with `CMatrix::from` where a heap matrix is needed.
pub fn haar_random_su4<R: Rng + ?Sized>(rng: &mut R) -> Mat4 {
    Mat4::try_from(&random_special_unitary(4, rng)).expect("sampler produces a 4x4 matrix")
}

/// Samples a Haar-random special unitary (determinant 1) of dimension `n`.
pub fn random_special_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> CMatrix {
    let u = haar_random_unitary(n, rng);
    let det = u.determinant();
    // Divide by the n-th root of the determinant phase so that det == 1.
    let phase = Complex::cis(-det.arg() / n as f64);
    u.scale_complex(phase)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haar_unitary_is_unitary_for_several_dims() {
        let mut rng = RngSeed(1).rng();
        for n in [2usize, 3, 4, 8, 16] {
            let u = haar_random_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-8), "not unitary for n={n}");
        }
    }

    #[test]
    fn su4_has_unit_determinant() {
        let mut rng = RngSeed(2).rng();
        for _ in 0..10 {
            let u = haar_random_su4(&mut rng);
            assert!(u.is_unitary(1e-8));
            let det = u.determinant();
            assert!((det - Complex::ONE).norm() < 1e-7, "det = {det}");
        }
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = RngSeed(99).rng();
        let mut b = RngSeed(99).rng();
        let ua = haar_random_unitary(4, &mut a);
        let ub = haar_random_unitary(4, &mut b);
        assert!(ua.approx_eq(&ub, 0.0));
    }

    #[test]
    fn different_seeds_give_different_unitaries() {
        let mut a = RngSeed(1).rng();
        let mut b = RngSeed(2).rng();
        let ua = haar_random_unitary(4, &mut a);
        let ub = haar_random_unitary(4, &mut b);
        assert!(ua.max_abs_diff(&ub) > 1e-3);
    }

    #[test]
    fn child_seeds_are_decorrelated() {
        let root = RngSeed(7);
        let c0 = root.child(0);
        let c1 = root.child(1);
        assert_ne!(c0.0, c1.0);
        assert_ne!(c0.0, root.0);
    }

    #[test]
    fn haar_moments_roughly_correct() {
        // E[|U_ij|^2] = 1/n for a Haar unitary. Check the empirical mean over a
        // handful of samples is within loose bounds.
        let mut rng = RngSeed(11).rng();
        let n = 4;
        let samples = 200;
        let mut acc = 0.0;
        for _ in 0..samples {
            let u = haar_random_unitary(n, &mut rng);
            acc += u[(0, 0)].norm_sqr();
        }
        let mean = acc / samples as f64;
        assert!((mean - 1.0 / n as f64).abs() < 0.05, "mean = {mean}");
    }
}
