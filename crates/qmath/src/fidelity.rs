//! Fidelity measures between unitaries.
//!
//! NuOp's objective (paper Eq. 1) is the Hilbert–Schmidt overlap between the
//! unitary realised by a template circuit and the target application unitary.
//! This module provides that overlap plus the standard average-gate-fidelity
//! conversion used when mixing decomposition error with hardware error
//! (paper Eq. 2).

use crate::complex::Complex;
#[cfg(test)]
use crate::matrix::CMatrix;
use crate::small::MatRef;

/// Hilbert–Schmidt inner product `Tr(A† B)`.
///
/// Generic over [`MatRef`], so heap-allocated [`CMatrix`](crate::CMatrix) and
/// stack-allocated [`SmallMat`](crate::SmallMat) arguments mix freely; the
/// `SmallMat` instantiations are the allocation-free kernel of the NuOp
/// objective.
///
/// # Panics
/// Panics if the two matrices have different shapes or are not square.
pub fn hilbert_schmidt_inner<A, B>(a: &A, b: &B) -> Complex
where
    A: MatRef + ?Sized,
    B: MatRef + ?Sized,
{
    assert!(
        a.nrows() == a.ncols() && b.nrows() == b.ncols(),
        "HS inner product needs square matrices"
    );
    assert_eq!(a.nrows(), b.nrows(), "dimension mismatch");
    let n = a.nrows();
    let mut acc = Complex::ZERO;
    for r in 0..n {
        for c in 0..n {
            acc += a.at(r, c).conj() * b.at(r, c);
        }
    }
    acc
}

/// Phase-insensitive Hilbert–Schmidt fidelity `|Tr(A† B)| / dim`.
///
/// Equals 1 exactly when `A` and `B` implement the same operation up to a global
/// phase, and decays towards 0 as they diverge. This is the decomposition
/// fidelity `F_d` of paper Eq. 1 (made phase-insensitive, which is standard
/// because global phase is unobservable).
///
/// ```
/// use qmath::{hilbert_schmidt_fidelity, CMatrix};
/// let id = CMatrix::identity(4);
/// assert!((hilbert_schmidt_fidelity(&id, &id) - 1.0).abs() < 1e-12);
/// ```
pub fn hilbert_schmidt_fidelity<A, B>(a: &A, b: &B) -> f64
where
    A: MatRef + ?Sized,
    B: MatRef + ?Sized,
{
    let dim = a.nrows() as f64;
    hilbert_schmidt_inner(a, b).norm() / dim
}

/// Average gate fidelity between two unitaries of dimension `d`:
/// `F_avg = (|Tr(A† B)|^2 + d) / (d^2 + d)`.
///
/// This is the quantity a randomized-benchmarking experiment estimates and is
/// the natural scale on which to combine decomposition and hardware error.
pub fn average_gate_fidelity<A, B>(a: &A, b: &B) -> f64
where
    A: MatRef + ?Sized,
    B: MatRef + ?Sized,
{
    let d = a.nrows() as f64;
    let overlap = hilbert_schmidt_inner(a, b).norm();
    (overlap * overlap + d) / (d * d + d)
}

/// Process infidelity `1 - F_avg` between two unitaries.
pub fn process_infidelity<A, B>(a: &A, b: &B) -> f64
where
    A: MatRef + ?Sized,
    B: MatRef + ?Sized,
{
    1.0 - average_gate_fidelity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{haar_random_unitary, RngSeed};

    fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0])
    }

    #[test]
    fn identical_unitaries_have_unit_fidelity() {
        let mut rng = RngSeed(5).rng();
        for n in [2usize, 4] {
            let u = haar_random_unitary(n, &mut rng);
            assert!((hilbert_schmidt_fidelity(&u, &u) - 1.0).abs() < 1e-10);
            assert!((average_gate_fidelity(&u, &u) - 1.0).abs() < 1e-10);
            assert!(process_infidelity(&u, &u) < 1e-10);
        }
    }

    #[test]
    fn global_phase_does_not_change_fidelity() {
        let mut rng = RngSeed(6).rng();
        let u = haar_random_unitary(4, &mut rng);
        let phased = u.scale_complex(Complex::cis(1.234));
        assert!((hilbert_schmidt_fidelity(&u, &phased) - 1.0).abs() < 1e-10);
        assert!((average_gate_fidelity(&u, &phased) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn orthogonal_unitaries_have_low_fidelity() {
        let id = CMatrix::identity(2);
        let x = pauli_x();
        // Tr(I† X) = 0.
        assert!(hilbert_schmidt_fidelity(&id, &x) < 1e-12);
        // Average gate fidelity floor is d/(d^2+d) = 1/(d+1).
        assert!((average_gate_fidelity(&id, &x) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_is_symmetric() {
        let mut rng = RngSeed(8).rng();
        let a = haar_random_unitary(4, &mut rng);
        let b = haar_random_unitary(4, &mut rng);
        assert!(
            (hilbert_schmidt_fidelity(&a, &b) - hilbert_schmidt_fidelity(&b, &a)).abs() < 1e-12
        );
    }

    #[test]
    fn fidelity_bounded_in_unit_interval() {
        let mut rng = RngSeed(9).rng();
        for _ in 0..20 {
            let a = haar_random_unitary(4, &mut rng);
            let b = haar_random_unitary(4, &mut rng);
            let f = hilbert_schmidt_fidelity(&a, &b);
            assert!((0.0..=1.0 + 1e-12).contains(&f));
            let g = average_gate_fidelity(&a, &b);
            assert!((0.0..=1.0 + 1e-12).contains(&g));
        }
    }

    #[test]
    fn hs_inner_of_identity_is_dimension() {
        let id = CMatrix::identity(4);
        let inner = hilbert_schmidt_inner(&id, &id);
        assert!((inner - Complex::from_real(4.0)).norm() < 1e-12);
    }
}
