//! Dense complex matrices.
//!
//! [`CMatrix`] is a row-major, heap-allocated complex matrix. Quantum gate
//! synthesis only ever needs small matrices (2×2 up to 2^n×2^n for small `n`), so
//! the implementation favours clarity and numerical robustness over blocking or
//! SIMD tricks.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::Complex;

/// A dense complex matrix stored in row-major order.
///
/// ```
/// use qmath::CMatrix;
/// let h = CMatrix::from_real(2, &[1.0, 1.0, 1.0, -1.0]).scale(1.0 / 2f64.sqrt());
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a square matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: &[Complex]) -> Self {
        assert_eq!(data.len(), n * n, "expected {} entries", n * n);
        CMatrix {
            rows: n,
            cols: n,
            data: data.to_vec(),
        }
    }

    /// Creates a rectangular matrix from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_shape(rows: usize, cols: usize, data: &[Complex]) -> Self {
        assert_eq!(data.len(), rows * cols, "expected {} entries", rows * cols);
        CMatrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a square matrix from a row-major slice of real entries.
    pub fn from_real(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "expected {} entries", n * n);
        CMatrix {
            rows: n,
            cols: n,
            data: data.iter().map(|&x| Complex::from_real(x)).collect(),
        }
    }

    /// Creates a square matrix from interleaved `(re, im)` pairs in row-major order.
    pub fn from_re_im(n: usize, pairs: &[(f64, f64)]) -> Self {
        assert_eq!(pairs.len(), n * n, "expected {} entries", n * n);
        CMatrix {
            rows: n,
            cols: n,
            data: pairs.iter().map(|&(re, im)| Complex::new(re, im)).collect(),
        }
    }

    /// Creates a diagonal square matrix from its diagonal entries.
    pub fn diagonal(diag: &[Complex]) -> Self {
        let n = diag.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Element access returning `None` when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> Option<Complex> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Conjugate transpose (Hermitian adjoint), `U†`.
    pub fn dagger(&self) -> CMatrix {
        self.conj().transpose()
    }

    /// Multiplies every entry by a real scalar.
    pub fn scale(&self, s: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(s)).collect(),
        }
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale_complex(&self, s: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Matrix trace.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    ///
    /// ```
    /// use qmath::CMatrix;
    /// let id = CMatrix::identity(2);
    /// let x = CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0]);
    /// let ix = id.kron(&x);
    /// assert_eq!(ix.rows(), 4);
    /// assert_eq!(ix[(0, 1)], x[(0, 1)]);
    /// ```
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        let mut out = CMatrix::zeros(rows, cols);
        for ar in 0..self.rows {
            for ac in 0..self.cols {
                let a = self[(ar, ac)];
                if a == Complex::ZERO {
                    continue;
                }
                for br in 0..other.rows {
                    for bc in 0..other.cols {
                        out[(ar * other.rows + br, ac * other.cols + bc)] = a * other[(br, bc)];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference with another matrix (of either
    /// representation — see [`MatRef`](crate::MatRef)).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff<M: crate::MatRef + ?Sized>(&self, other: &M) -> f64 {
        crate::small::max_abs_diff_impl(self, other)
    }

    /// Entry-wise approximate equality with absolute tolerance `tol`.
    pub fn approx_eq<M: crate::MatRef + ?Sized>(&self, other: &M, tol: f64) -> bool {
        self.rows == other.nrows() && self.cols == other.ncols() && self.max_abs_diff(other) <= tol
    }

    /// Approximate equality up to a global phase factor.
    ///
    /// Two unitaries that differ only by `e^{i phi}` implement the same quantum
    /// operation; this comparison is the physically meaningful one.
    pub fn approx_eq_up_to_phase<M: crate::MatRef + ?Sized>(&self, other: &M, tol: f64) -> bool {
        crate::small::approx_eq_up_to_phase_impl(self, other, tol)
    }

    /// True when `U† U = I` within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.dagger() * self;
        prod.approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// True when the matrix equals its own adjoint within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        self.data
            .chunks_exact(self.cols)
            .map(|row| {
                row.iter()
                    .zip(v.iter())
                    .fold(Complex::ZERO, |acc, (a, x)| acc + *a * *x)
            })
            .collect()
    }

    /// Determinant via LU decomposition with partial pivoting.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn determinant(&self) -> Complex {
        assert!(self.is_square(), "determinant requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = Complex::ONE;
        for k in 0..n {
            // Partial pivot.
            let mut piv = k;
            let mut piv_norm = a[(k, k)].norm();
            for r in (k + 1)..n {
                if a[(r, k)].norm() > piv_norm {
                    piv = r;
                    piv_norm = a[(r, k)].norm();
                }
            }
            if piv_norm == 0.0 {
                return Complex::ZERO;
            }
            if piv != k {
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(piv, c)];
                    a[(piv, c)] = tmp;
                }
                det = -det;
            }
            det *= a[(k, k)];
            for r in (k + 1)..n {
                let factor = a[(r, k)] / a[(k, k)];
                for c in k..n {
                    let sub = factor * a[(k, c)];
                    a[(r, c)] -= sub;
                }
            }
        }
        det
    }

    /// QR decomposition via modified Gram–Schmidt. Returns `(Q, R)` with `Q`
    /// having orthonormal columns and `R` upper triangular such that `A = Q R`.
    ///
    /// # Panics
    /// Panics if the matrix is not square (general rectangular QR is not needed
    /// by the workspace).
    pub fn qr(&self) -> (CMatrix, CMatrix) {
        assert!(self.is_square(), "qr implemented for square matrices");
        let n = self.rows;
        let mut q = CMatrix::zeros(n, n);
        let mut r = CMatrix::zeros(n, n);
        // Work column by column.
        let mut cols: Vec<Vec<Complex>> = (0..n)
            .map(|c| (0..n).map(|row| self[(row, c)]).collect())
            .collect();
        for j in 0..n {
            // Two projection passes ("twice is enough") keep Q orthonormal even
            // for ill-conditioned inputs, which plain modified Gram–Schmidt
            // does not guarantee.
            for _pass in 0..2 {
                for i in 0..j {
                    // r_ij += q_i† a_j
                    let mut dot = Complex::ZERO;
                    for row in 0..n {
                        dot += q[(row, i)].conj() * cols[j][row];
                    }
                    r[(i, j)] += dot;
                    for row in 0..n {
                        let sub = dot * q[(row, i)];
                        cols[j][row] -= sub;
                    }
                }
            }
            let norm = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            r[(j, j)] = Complex::from_real(norm);
            if norm > 0.0 {
                for row in 0..n {
                    q[(row, j)] = cols[j][row] / norm;
                }
            } else {
                // Degenerate column: pick a unit vector orthogonal handling is not
                // required for our use (random Ginibre matrices are full rank
                // almost surely), but keep Q well formed.
                q[(j, j)] = Complex::ONE;
            }
        }
        (q, r)
    }

    /// Inverse of a unitary matrix (its adjoint).
    ///
    /// This is *not* a general matrix inverse: it asserts the matrix is unitary.
    ///
    /// # Panics
    /// Panics if the matrix is not unitary within `1e-8`.
    pub fn unitary_inverse(&self) -> CMatrix {
        assert!(
            self.is_unitary(1e-8),
            "unitary_inverse on a non-unitary matrix"
        );
        self.dagger()
    }

    /// Eigenvalues and eigenvectors of a *real symmetric* matrix via the cyclic
    /// Jacobi method. The imaginary parts of the input are ignored after an
    /// assertion that they are negligible.
    ///
    /// Returns `(eigenvalues, eigenvectors)` where column `k` of the returned
    /// matrix is the eigenvector for `eigenvalues[k]`. Eigen-pairs are sorted in
    /// ascending order of eigenvalue.
    ///
    /// # Panics
    /// Panics if the matrix is not square or has non-negligible imaginary parts
    /// or asymmetry.
    // Jacobi rotations couple columns p and q across every row k; index-based
    // loops mirror the textbook update and stay readable.
    #[allow(clippy::needless_range_loop)]
    pub fn symmetric_eigen(&self, tol: f64) -> (Vec<f64>, CMatrix) {
        assert!(self.is_square(), "eigen requires a square matrix");
        let n = self.rows;
        for r in 0..n {
            for c in 0..n {
                assert!(
                    self[(r, c)].im.abs() < 1e-7,
                    "symmetric_eigen requires a real matrix"
                );
                assert!(
                    (self[(r, c)].re - self[(c, r)].re).abs() < 1e-7,
                    "symmetric_eigen requires a symmetric matrix"
                );
            }
        }
        let mut a: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..n).map(|c| self[(r, c)].re).collect())
            .collect();
        let mut v: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..n).map(|c| if r == c { 1.0 } else { 0.0 }).collect())
            .collect();
        for _sweep in 0..100 {
            let mut off = 0.0;
            for r in 0..n {
                for c in (r + 1)..n {
                    off += a[r][c] * a[r][c];
                }
            }
            if off.sqrt() < tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    if a[p][q].abs() < 1e-300 {
                        continue;
                    }
                    let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[k][p];
                        let akq = a[k][q];
                        a[k][p] = c * akp - s * akq;
                        a[k][q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[p][k];
                        let aqk = a[q][k];
                        a[p][k] = c * apk - s * aqk;
                        a[q][k] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[k][p];
                        let vkq = v[k][q];
                        v[k][p] = c * vkp - s * vkq;
                        v[k][q] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[i][i], i)).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("non-NaN eigenvalues"));
        let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mut vectors = CMatrix::zeros(n, n);
        for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
            for r in 0..n {
                vectors[(r, new_col)] = Complex::from_real(v[r][old_col]);
            }
        }
        (eigenvalues, vectors)
    }

    /// Raises the matrix to the `k`-th non-negative integer power.
    pub fn pow(&self, k: usize) -> CMatrix {
        assert!(self.is_square(), "pow requires a square matrix");
        let mut result = CMatrix::identity(self.rows);
        for _ in 0..k {
            result = &result * self;
        }
        result
    }

    /// Extracts a contiguous sub-block.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn block(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> CMatrix {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "block out of bounds"
        );
        let mut out = CMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                out[(r, c)] = self[(row0 + r, col0 + c)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &CMatrix {
    type Output = CMatrix;
    fn neg(self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| -*z).collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl Mul<Complex> for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: Complex) -> CMatrix {
        self.scale_complex(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::haar_random_unitary;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_re_im(2, &[(0.0, 0.0), (0.0, -1.0), (0.0, 1.0), (0.0, 0.0)])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_real(2, &[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn identity_multiplication() {
        let id = CMatrix::identity(4);
        let x = pauli_x().kron(&pauli_z());
        assert!((&id * &x).approx_eq(&x, 1e-15));
        assert!((&x * &id).approx_eq(&x, 1e-15));
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        let xy = &x * &y;
        let iz = z.scale_complex(Complex::I);
        assert!(xy.approx_eq(&iz, 1e-12));
        // X^2 = Y^2 = Z^2 = I
        for p in [&x, &y, &z] {
            assert!((p * p).approx_eq(&CMatrix::identity(2), 1e-12));
        }
        // Traceless
        for p in [&x, &y, &z] {
            assert!(p.trace().norm() < 1e-12);
        }
    }

    #[test]
    fn dagger_and_unitarity() {
        let x = pauli_x();
        assert!(x.is_unitary(1e-12));
        assert!(x.is_hermitian(1e-12));
        let y = pauli_y();
        assert!(y.is_unitary(1e-12));
        assert!(y.dagger().approx_eq(&y, 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz.cols(), 4);
        // (X ⊗ Z)(X ⊗ Z) = I4
        assert!((&xz * &xz).approx_eq(&CMatrix::identity(4), 1e-12));
        // Mixed-product property: (A⊗B)(C⊗D) = AC ⊗ BD
        let a = pauli_y();
        let b = pauli_z();
        let lhs = &x.kron(&z) * &a.kron(&b);
        let rhs = (&x * &a).kron(&(&z * &b));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn trace_linear() {
        let x = pauli_x();
        let z = pauli_z();
        let sum = &x + &z;
        assert!((sum.trace() - (x.trace() + z.trace())).norm() < 1e-12);
    }

    #[test]
    fn determinant_of_paulis() {
        assert!((pauli_x().determinant() + Complex::ONE).norm() < 1e-12);
        assert!((pauli_z().determinant() + Complex::ONE).norm() < 1e-12);
        assert!((CMatrix::identity(4).determinant() - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn determinant_of_singular_matrix_is_zero() {
        let m = CMatrix::from_real(2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(m.determinant().norm() < 1e-12);
    }

    #[test]
    fn qr_reconstructs_and_q_is_unitary() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [2usize, 3, 4, 8] {
            let u = haar_random_unitary(n, &mut rng);
            let a = &u
                * &CMatrix::from_real(
                    n,
                    &(0..n * n)
                        .map(|i| (i as f64 * 0.37).sin() + 1.5)
                        .collect::<Vec<_>>(),
                );
            let (q, r) = a.qr();
            assert!(q.is_unitary(1e-9), "Q not unitary for n={n}");
            assert!((&q * &r).approx_eq(&a, 1e-9), "QR != A for n={n}");
            // R upper triangular
            for row in 0..n {
                for col in 0..row {
                    assert!(r[(row, col)].norm() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn symmetric_eigen_recovers_diagonal() {
        let m = CMatrix::from_real(3, &[2.0, 1.0, 0.0, 1.0, 2.0, 0.0, 0.0, 0.0, 5.0]);
        let (vals, vecs) = m.symmetric_eigen(1e-12);
        assert!((vals[0] - 1.0).abs() < 1e-9);
        assert!((vals[1] - 3.0).abs() < 1e-9);
        assert!((vals[2] - 5.0).abs() < 1e-9);
        // Check A v = lambda v for each column.
        for k in 0..3 {
            let v: Vec<Complex> = (0..3).map(|r| vecs[(r, k)]).collect();
            let av = m.mul_vec(&v);
            for r in 0..3 {
                assert!((av[r] - v[r].scale(vals[k])).norm() < 1e-8);
            }
        }
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let x = pauli_x();
        let v = vec![Complex::ONE, Complex::ZERO];
        let out = x.mul_vec(&v);
        assert!(out[0].norm() < 1e-12);
        assert!((out[1] - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn approx_eq_up_to_phase() {
        let x = pauli_x();
        let phased = x.scale_complex(Complex::cis(0.7));
        assert!(x.approx_eq_up_to_phase(&phased, 1e-12));
        assert!(!x.approx_eq_up_to_phase(&pauli_z(), 1e-12));
    }

    #[test]
    fn block_extraction() {
        let m = CMatrix::from_real(4, &(0..16).map(|i| i as f64).collect::<Vec<_>>());
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b[(0, 0)].re, 5.0);
        assert_eq!(b[(1, 1)].re, 10.0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = pauli_x();
        assert!(x.pow(0).approx_eq(&CMatrix::identity(2), 1e-12));
        assert!(x.pow(2).approx_eq(&CMatrix::identity(2), 1e-12));
        assert!(x.pow(3).approx_eq(&x, 1e-12));
    }

    #[test]
    fn frobenius_norm_of_unitary_is_sqrt_dim() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let u = haar_random_unitary(4, &mut rng);
        assert!((u.frobenius_norm() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_multiplication_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    #[should_panic(expected = "trace requires a square matrix")]
    fn trace_of_rectangular_panics() {
        let a = CMatrix::zeros(2, 3);
        let _ = a.trace();
    }
}
