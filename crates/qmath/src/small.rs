//! Stack-allocated small complex matrices for the synthesis hot path.
//!
//! The NuOp objective function evaluates the unitary of a template circuit
//! thousands of times per decomposition; with the heap-allocated [`CMatrix`]
//! every multiply pays an allocation. [`SmallMat`] is the fixed-size
//! alternative: a `Copy`, const-generic N×N complex matrix stored inline, so
//! 2×2/4×4 products, adjoints and Kronecker products never touch the
//! allocator. [`Mat2`] and [`Mat4`] are the two instantiations quantum gate
//! synthesis needs.
//!
//! [`CMatrix`] remains the representation for general N×N work (QR, Haar
//! sampling, `2^n`-dimensional embeddings); the two convert losslessly via
//! `From` / `TryFrom` at the boundaries.
//!
//! ```
//! use qmath::{Mat2, Mat4};
//! let x = Mat2::from_real(&[0.0, 1.0, 1.0, 0.0]);
//! let xx: Mat4 = x.kron(&x);
//! assert!((xx * xx).approx_eq(&Mat4::identity(), 1e-12));
//! ```

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::complex::Complex;
use crate::matrix::CMatrix;

/// Read-only view of a complex matrix, implemented by both [`CMatrix`] and
/// [`SmallMat`].
///
/// Generic consumers (fidelity measures, entry-wise comparisons, register
/// embeddings) accept `&impl MatRef` so heap- and stack-allocated matrices
/// mix freely at API boundaries.
pub trait MatRef {
    /// Number of rows.
    fn nrows(&self) -> usize;
    /// Number of columns.
    fn ncols(&self) -> usize;
    /// Entry at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    fn at(&self, r: usize, c: usize) -> Complex;
}

impl MatRef for CMatrix {
    #[inline]
    fn nrows(&self) -> usize {
        self.rows()
    }
    #[inline]
    fn ncols(&self) -> usize {
        self.cols()
    }
    #[inline]
    fn at(&self, r: usize, c: usize) -> Complex {
        self[(r, c)]
    }
}

/// Shared implementation behind `CMatrix::max_abs_diff` and
/// `SmallMat::max_abs_diff`: both representations delegate here so the
/// comparison semantics cannot drift apart.
///
/// # Panics
/// Panics if the shapes differ.
pub(crate) fn max_abs_diff_impl<A, B>(a: &A, b: &B) -> f64
where
    A: MatRef + ?Sized,
    B: MatRef + ?Sized,
{
    assert_eq!(a.nrows(), b.nrows(), "row mismatch");
    assert_eq!(a.ncols(), b.ncols(), "col mismatch");
    let mut worst = 0.0f64;
    for r in 0..a.nrows() {
        for c in 0..a.ncols() {
            worst = worst.max((a.at(r, c) - b.at(r, c)).norm());
        }
    }
    worst
}

/// Shared implementation behind the `approx_eq_up_to_phase` methods of both
/// matrix representations: estimate the global phase from the
/// largest-magnitude entry of `b`, then compare entry-wise.
pub(crate) fn approx_eq_up_to_phase_impl<A, B>(a: &A, b: &B, tol: f64) -> bool
where
    A: MatRef + ?Sized,
    B: MatRef + ?Sized,
{
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return false;
    }
    let (rows, cols) = (a.nrows(), a.ncols());
    let mut best = (0usize, 0usize);
    let mut best_norm = 0.0;
    for r in 0..rows {
        for c in 0..cols {
            let n = b.at(r, c).norm();
            if n > best_norm {
                best_norm = n;
                best = (r, c);
            }
        }
    }
    if best_norm < tol {
        let mut frob = 0.0;
        for r in 0..rows {
            for c in 0..cols {
                frob += a.at(r, c).norm_sqr();
            }
        }
        return frob.sqrt() < tol;
    }
    let phase = a.at(best.0, best.1) / b.at(best.0, best.1);
    if (phase.norm() - 1.0).abs() > 1e-6 {
        return false;
    }
    let mut worst = 0.0f64;
    for r in 0..rows {
        for c in 0..cols {
            worst = worst.max((a.at(r, c) - b.at(r, c) * phase).norm());
        }
    }
    worst <= tol
}

/// A dense, stack-allocated `N`×`N` complex matrix.
///
/// `Copy` and allocation-free: all operations work on inline storage, which is
/// what makes the BFGS objective evaluation of gate decomposition run without
/// heap traffic. See the [module docs](crate::small) for the division of
/// labour with [`CMatrix`].
#[derive(Clone, Copy, PartialEq)]
pub struct SmallMat<const N: usize> {
    data: [[Complex; N]; N],
}

/// A 2×2 stack-allocated matrix: single-qubit operators.
pub type Mat2 = SmallMat<2>;

/// A 4×4 stack-allocated matrix: two-qubit operators.
pub type Mat4 = SmallMat<4>;

impl<const N: usize> SmallMat<N> {
    /// The dimension `N`.
    #[inline]
    pub const fn dim(&self) -> usize {
        N
    }

    /// The all-zeros matrix.
    #[inline]
    pub const fn zeros() -> Self {
        SmallMat {
            data: [[Complex::ZERO; N]; N],
        }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut m = SmallMat::zeros();
        for i in 0..N {
            m.data[i][i] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix entry by entry from `f(row, col)`.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = SmallMat::zeros();
        for (r, row) in m.data.iter_mut().enumerate() {
            for (c, entry) in row.iter_mut().enumerate() {
                *entry = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    /// Panics if `data.len() != N * N`.
    pub fn from_rows(data: &[Complex]) -> Self {
        assert_eq!(data.len(), N * N, "expected {} entries", N * N);
        SmallMat::from_fn(|r, c| data[r * N + c])
    }

    /// Creates a matrix from a row-major slice of real entries.
    ///
    /// # Panics
    /// Panics if `data.len() != N * N`.
    pub fn from_real(data: &[f64]) -> Self {
        assert_eq!(data.len(), N * N, "expected {} entries", N * N);
        SmallMat::from_fn(|r, c| Complex::from_real(data[r * N + c]))
    }

    /// Creates a diagonal matrix from its diagonal entries.
    ///
    /// # Panics
    /// Panics if `diag.len() != N`.
    pub fn diagonal(diag: &[Complex]) -> Self {
        assert_eq!(diag.len(), N, "expected {N} diagonal entries");
        let mut m = SmallMat::zeros();
        for (i, &d) in diag.iter().enumerate() {
            m.data[i][i] = d;
        }
        m
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        SmallMat::from_fn(|r, c| self.data[c][r])
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Self {
        SmallMat::from_fn(|r, c| self.data[r][c].conj())
    }

    /// Conjugate transpose (Hermitian adjoint), `U†`.
    pub fn dagger(&self) -> Self {
        SmallMat::from_fn(|r, c| self.data[c][r].conj())
    }

    /// Multiplies every entry by a real scalar.
    pub fn scale(&self, s: f64) -> Self {
        SmallMat::from_fn(|r, c| self.data[r][c].scale(s))
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale_complex(&self, s: Complex) -> Self {
        SmallMat::from_fn(|r, c| self.data[r][c] * s)
    }

    /// Matrix trace.
    pub fn trace(&self) -> Complex {
        let mut acc = Complex::ZERO;
        for i in 0..N {
            acc += self.data[i][i];
        }
        acc
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        let mut acc = 0.0;
        for row in &self.data {
            for z in row {
                acc += z.norm_sqr();
            }
        }
        acc.sqrt()
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[Complex; N]) -> [Complex; N] {
        let mut out = [Complex::ZERO; N];
        for (row, o) in self.data.iter().zip(out.iter_mut()) {
            let mut acc = Complex::ZERO;
            for (a, x) in row.iter().zip(v.iter()) {
                acc += *a * *x;
            }
            *o = acc;
        }
        out
    }

    /// Maximum absolute entry-wise difference with another matrix.
    ///
    /// # Panics
    /// Panics if `other` is not N×N.
    pub fn max_abs_diff<M: MatRef>(&self, other: &M) -> f64 {
        max_abs_diff_impl(self, other)
    }

    /// Entry-wise approximate equality with absolute tolerance `tol`.
    pub fn approx_eq<M: MatRef>(&self, other: &M, tol: f64) -> bool {
        other.nrows() == N && other.ncols() == N && self.max_abs_diff(other) <= tol
    }

    /// Approximate equality up to a global phase factor (the physically
    /// meaningful comparison between unitaries).
    pub fn approx_eq_up_to_phase<M: MatRef>(&self, other: &M, tol: f64) -> bool {
        approx_eq_up_to_phase_impl(self, other, tol)
    }

    /// True when `U† U = I` within tolerance `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let prod = self.dagger() * *self;
        prod.approx_eq(&SmallMat::<N>::identity(), tol)
    }

    /// True when the matrix equals its own adjoint within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.approx_eq(&self.dagger(), tol)
    }

    /// Raises the matrix to the `k`-th non-negative integer power.
    pub fn pow(&self, k: usize) -> Self {
        let mut result = SmallMat::identity();
        for _ in 0..k {
            result = result * *self;
        }
        result
    }

    /// Determinant via LU decomposition with partial pivoting (allocation
    /// free: the elimination runs on a stack copy).
    pub fn determinant(&self) -> Complex {
        let mut a = self.data;
        let mut det = Complex::ONE;
        for k in 0..N {
            let mut piv = k;
            let mut piv_norm = a[k][k].norm();
            for (r, row) in a.iter().enumerate().skip(k + 1) {
                if row[k].norm() > piv_norm {
                    piv = r;
                    piv_norm = row[k].norm();
                }
            }
            if piv_norm == 0.0 {
                return Complex::ZERO;
            }
            if piv != k {
                a.swap(piv, k);
                det = -det;
            }
            det *= a[k][k];
            let pivot_row = a[k];
            for row in a.iter_mut().skip(k + 1) {
                let factor = row[k] / pivot_row[k];
                for (entry, &p) in row.iter_mut().zip(pivot_row.iter()).skip(k) {
                    *entry -= factor * p;
                }
            }
        }
        det
    }

    /// Converts to a heap-allocated [`CMatrix`] (lossless).
    pub fn to_cmatrix(&self) -> CMatrix {
        let mut out = CMatrix::zeros(N, N);
        for (r, row) in self.data.iter().enumerate() {
            for (c, z) in row.iter().enumerate() {
                out[(r, c)] = *z;
            }
        }
        out
    }
}

impl Mat2 {
    /// Kronecker (tensor) product `self ⊗ other`, producing the 4×4 two-qubit
    /// operator — the hot-path specialisation of [`CMatrix::kron`].
    ///
    /// ```
    /// use qmath::{Mat2, Mat4};
    /// let id = Mat2::identity();
    /// let x = Mat2::from_real(&[0.0, 1.0, 1.0, 0.0]);
    /// let ix: Mat4 = id.kron(&x);
    /// assert_eq!(ix[(0, 1)], x[(0, 1)]);
    /// ```
    pub fn kron(&self, other: &Mat2) -> Mat4 {
        let mut out = Mat4::zeros();
        for ar in 0..2 {
            for ac in 0..2 {
                let a = self.data[ar][ac];
                for br in 0..2 {
                    for bc in 0..2 {
                        out.data[2 * ar + br][2 * ac + bc] = a * other.data[br][bc];
                    }
                }
            }
        }
        out
    }
}

impl<const N: usize> Default for SmallMat<N> {
    fn default() -> Self {
        SmallMat::zeros()
    }
}

impl<const N: usize> MatRef for SmallMat<N> {
    #[inline]
    fn nrows(&self) -> usize {
        N
    }
    #[inline]
    fn ncols(&self) -> usize {
        N
    }
    #[inline]
    fn at(&self, r: usize, c: usize) -> Complex {
        self.data[r][c]
    }
}

impl<const N: usize> Index<(usize, usize)> for SmallMat<N> {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r][c]
    }
}

impl<const N: usize> IndexMut<(usize, usize)> for SmallMat<N> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r][c]
    }
}

impl<const N: usize> Mul for SmallMat<N> {
    type Output = SmallMat<N>;
    fn mul(self, rhs: SmallMat<N>) -> SmallMat<N> {
        let mut out = SmallMat::zeros();
        for r in 0..N {
            for k in 0..N {
                let a = self.data[r][k];
                if a == Complex::ZERO {
                    continue;
                }
                for c in 0..N {
                    out.data[r][c] += a * rhs.data[k][c];
                }
            }
        }
        out
    }
}

impl<const N: usize> Mul for &SmallMat<N> {
    type Output = SmallMat<N>;
    #[inline]
    fn mul(self, rhs: &SmallMat<N>) -> SmallMat<N> {
        *self * *rhs
    }
}

impl<const N: usize> Mul<Complex> for SmallMat<N> {
    type Output = SmallMat<N>;
    #[inline]
    fn mul(self, rhs: Complex) -> SmallMat<N> {
        self.scale_complex(rhs)
    }
}

impl<const N: usize> Add for SmallMat<N> {
    type Output = SmallMat<N>;
    fn add(self, rhs: SmallMat<N>) -> SmallMat<N> {
        SmallMat::from_fn(|r, c| self.data[r][c] + rhs.data[r][c])
    }
}

impl<const N: usize> Add for &SmallMat<N> {
    type Output = SmallMat<N>;
    #[inline]
    fn add(self, rhs: &SmallMat<N>) -> SmallMat<N> {
        *self + *rhs
    }
}

impl<const N: usize> Sub for SmallMat<N> {
    type Output = SmallMat<N>;
    fn sub(self, rhs: SmallMat<N>) -> SmallMat<N> {
        SmallMat::from_fn(|r, c| self.data[r][c] - rhs.data[r][c])
    }
}

impl<const N: usize> Sub for &SmallMat<N> {
    type Output = SmallMat<N>;
    #[inline]
    fn sub(self, rhs: &SmallMat<N>) -> SmallMat<N> {
        *self - *rhs
    }
}

impl<const N: usize> Neg for SmallMat<N> {
    type Output = SmallMat<N>;
    fn neg(self) -> SmallMat<N> {
        SmallMat::from_fn(|r, c| -self.data[r][c])
    }
}

impl<const N: usize> fmt::Debug for SmallMat<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SmallMat {N}x{N} [")?;
        for row in &self.data {
            write!(f, "  ")?;
            for z in row {
                write!(f, "{z} ")?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> fmt::Display for SmallMat<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Error returned when converting a [`CMatrix`] of the wrong shape into a
/// [`SmallMat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// The dimension the target `SmallMat` requires.
    pub expected: usize,
    /// Rows of the offending matrix.
    pub rows: usize,
    /// Columns of the offending matrix.
    pub cols: usize,
}

impl fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected a {0}x{0} matrix, got {1}x{2}",
            self.expected, self.rows, self.cols
        )
    }
}

impl std::error::Error for ShapeMismatch {}

impl<const N: usize> From<SmallMat<N>> for CMatrix {
    fn from(m: SmallMat<N>) -> CMatrix {
        m.to_cmatrix()
    }
}

impl<const N: usize> From<&SmallMat<N>> for CMatrix {
    fn from(m: &SmallMat<N>) -> CMatrix {
        m.to_cmatrix()
    }
}

impl<const N: usize> TryFrom<&CMatrix> for SmallMat<N> {
    type Error = ShapeMismatch;

    fn try_from(m: &CMatrix) -> Result<Self, ShapeMismatch> {
        if m.rows() != N || m.cols() != N {
            return Err(ShapeMismatch {
                expected: N,
                rows: m.rows(),
                cols: m.cols(),
            });
        }
        Ok(SmallMat::from_fn(|r, c| m[(r, c)]))
    }
}

impl<const N: usize> TryFrom<CMatrix> for SmallMat<N> {
    type Error = ShapeMismatch;

    fn try_from(m: CMatrix) -> Result<Self, ShapeMismatch> {
        SmallMat::try_from(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Mat2 {
        Mat2::from_real(&[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_y() -> Mat2 {
        Mat2::from_rows(&[
            Complex::ZERO,
            Complex::new(0.0, -1.0),
            Complex::new(0.0, 1.0),
            Complex::ZERO,
        ])
    }

    fn pauli_z() -> Mat2 {
        Mat2::from_real(&[1.0, 0.0, 0.0, -1.0])
    }

    #[test]
    fn pauli_algebra_on_the_stack() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!((x * y).approx_eq(&z.scale_complex(Complex::I), 1e-12));
        for p in [x, y, z] {
            assert!((p * p).approx_eq(&Mat2::identity(), 1e-12));
            assert!(p.trace().norm() < 1e-12);
            assert!(p.is_unitary(1e-12));
            assert!(p.is_hermitian(1e-12));
        }
    }

    #[test]
    fn kron_matches_cmatrix_kron() {
        let a = pauli_x();
        let b = pauli_z();
        let small = a.kron(&b);
        let big = a.to_cmatrix().kron(&b.to_cmatrix());
        assert!(small.approx_eq(&big, 1e-15));
        // Mixed-product property: (A⊗B)(C⊗D) = AC ⊗ BD
        let c = pauli_y();
        let d = pauli_z();
        let lhs = a.kron(&b) * c.kron(&d);
        let rhs = (a * c).kron(&(b * d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn determinant_of_paulis() {
        assert!((pauli_x().determinant() + Complex::ONE).norm() < 1e-12);
        assert!((pauli_z().determinant() + Complex::ONE).norm() < 1e-12);
        assert!((Mat4::identity().determinant() - Complex::ONE).norm() < 1e-12);
        let singular = Mat2::from_real(&[1.0, 2.0, 2.0, 4.0]);
        assert!(singular.determinant().norm() < 1e-12);
    }

    #[test]
    fn pow_and_scale() {
        let x = pauli_x();
        assert!(x.pow(0).approx_eq(&Mat2::identity(), 1e-12));
        assert!(x.pow(2).approx_eq(&Mat2::identity(), 1e-12));
        assert!(x.pow(3).approx_eq(&x, 1e-12));
        assert!((x.scale(2.0).frobenius_norm() - 2.0 * x.frobenius_norm()).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_up_to_phase_mixed_types() {
        let x = pauli_x();
        let phased = x.scale_complex(Complex::cis(0.7));
        assert!(x.approx_eq_up_to_phase(&phased, 1e-12));
        assert!(x.approx_eq_up_to_phase(&phased.to_cmatrix(), 1e-12));
        assert!(!x.approx_eq_up_to_phase(&pauli_z(), 1e-12));
    }

    #[test]
    fn conversions_round_trip() {
        let m = Mat4::from_fn(|r, c| Complex::new(r as f64, c as f64));
        let big: CMatrix = m.into();
        let back = Mat4::try_from(&big).unwrap();
        assert_eq!(back, m);
        // Wrong shape is a typed error, not a panic.
        let err = Mat2::try_from(&big).unwrap_err();
        assert_eq!(err.expected, 2);
        assert!(err.to_string().contains("2x2"));
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let x = pauli_x();
        let out = x.mul_vec(&[Complex::ONE, Complex::ZERO]);
        assert!(out[0].norm() < 1e-12);
        assert!((out[1] - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn add_sub_neg() {
        let x = pauli_x();
        let z = pauli_z();
        assert!((x + z - z).approx_eq(&x, 1e-15));
        assert!((-x + x).approx_eq(&Mat2::zeros(), 1e-15));
        let (xr, zr) = (&x, &z);
        assert!((xr + zr).approx_eq(&(x + z), 1e-15));
        assert!((xr - zr).approx_eq(&(x - z), 1e-15));
    }

    #[test]
    fn diagonal_and_indexing() {
        let d = Mat4::diagonal(&[Complex::ONE, Complex::I, -Complex::ONE, -Complex::I]);
        assert_eq!(d[(1, 1)], Complex::I);
        assert_eq!(d[(1, 2)], Complex::ZERO);
        let mut m = Mat2::zeros();
        m[(0, 1)] = Complex::ONE;
        assert_eq!(m.at(0, 1), Complex::ONE);
        assert_eq!(m.dim(), 2);
    }
}
