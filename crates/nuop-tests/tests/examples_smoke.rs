//! Smoke coverage for the repo-root examples.
//!
//! All four examples are registered targets of this crate, so `cargo test`
//! (and `cargo build --examples` in CI) already compiles them. This test
//! additionally runs `quickstart` to completion, proving the happy-path
//! decomposition walkthrough executes, not merely compiles.

use std::path::Path;
use std::process::Command;

#[test]
fn quickstart_example_runs_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    // CARGO_MANIFEST_DIR = crates/nuop-tests; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let output = Command::new(cargo)
        .args([
            "run",
            "--quiet",
            "-p",
            "nuop-tests",
            "--example",
            "quickstart",
        ])
        .current_dir(&root)
        .output()
        .expect("failed to spawn cargo run --example quickstart");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        !output.stdout.is_empty(),
        "quickstart printed nothing on stdout"
    );
}
