//! Carrier crate for the workspace-level integration tests and examples.
//!
//! The repository keeps its cross-crate integration tests in the root
//! `tests/` directory and its runnable walkthroughs in the root `examples/`
//! directory. A virtual workspace manifest cannot own targets, so this thin
//! crate registers them (see `Cargo.toml`); it exports no items of its own.
//!
//! Run the tests with `cargo test -p nuop-tests` and the examples with e.g.
//! `cargo run -p nuop-tests --example quickstart`.

#![warn(missing_docs)]
