//! Device connectivity graphs.

use std::collections::{BTreeSet, VecDeque};

use circuit::QubitId;
use serde::{Deserialize, Serialize};

/// An undirected connectivity graph over physical qubits.
///
/// ```
/// use device::Topology;
/// let ring = Topology::ring(8);
/// assert_eq!(ring.num_qubits(), 8);
/// assert!(ring.has_edge(0, 7));
/// assert_eq!(ring.shortest_path(0, 4).unwrap().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    num_qubits: usize,
    edges: BTreeSet<(QubitId, QubitId)>,
}

impl Topology {
    /// Creates a topology with `num_qubits` qubits and no edges.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "a topology needs at least one qubit");
        Topology {
            num_qubits,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge between two distinct qubits.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or the endpoints are equal.
    pub fn add_edge(&mut self, a: QubitId, b: QubitId) {
        assert!(
            a < self.num_qubits && b < self.num_qubits,
            "edge endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        self.edges.insert((a.min(b), a.max(b)));
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// All edges, with endpoints ordered `(low, high)`.
    pub fn edges(&self) -> impl Iterator<Item = (QubitId, QubitId)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when qubits `a` and `b` are connected by an edge.
    pub fn has_edge(&self, a: QubitId, b: QubitId) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Neighbors of a qubit.
    pub fn neighbors(&self, q: QubitId) -> Vec<QubitId> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Breadth-first shortest path between two qubits (inclusive of both
    /// endpoints), or `None` if they are disconnected.
    pub fn shortest_path(&self, from: QubitId, to: QubitId) -> Option<Vec<QubitId>> {
        assert!(
            from < self.num_qubits && to < self.num_qubits,
            "qubit out of range"
        );
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut queue = VecDeque::new();
        queue.push_back(from);
        prev[from] = from;
        while let Some(q) = queue.pop_front() {
            for n in self.neighbors(q) {
                if prev[n] == usize::MAX {
                    prev[n] = q;
                    if n == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// Hop distance between two qubits (0 for identical qubits), or `None` if
    /// disconnected.
    pub fn distance(&self, from: QubitId, to: QubitId) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }

    /// True when every qubit can reach every other qubit.
    pub fn is_connected(&self) -> bool {
        (1..self.num_qubits).all(|q| self.distance(0, q).is_some())
    }

    /// A line of `n` qubits (`0–1–2–…`).
    pub fn line(n: usize) -> Self {
        let mut t = Topology::new(n);
        for i in 0..n.saturating_sub(1) {
            t.add_edge(i, i + 1);
        }
        t
    }

    /// A ring of `n` qubits.
    pub fn ring(n: usize) -> Self {
        let mut t = Topology::line(n);
        if n > 2 {
            t.add_edge(n - 1, 0);
        }
        t
    }

    /// A `rows × cols` rectangular grid with nearest-neighbor edges.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut t = Topology::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    t.add_edge(q, q + 1);
                }
                if r + 1 < rows {
                    t.add_edge(q, q + cols);
                }
            }
        }
        t
    }

    /// Rigetti Aspen-8 connectivity: four octagonal rings of 8 qubits, with
    /// adjacent rings joined by two bridge edges (qubits 1–2 and 6–5 of the
    /// neighboring octagons), 32 sites in total. The real chip has two
    /// non-functional qubits; we keep all 32 sites and let the calibration
    /// table assign them very low fidelity instead, which has the same effect
    /// on mapping.
    pub fn aspen8() -> Self {
        let rings = 4;
        let per_ring = 8;
        let mut t = Topology::new(rings * per_ring);
        for r in 0..rings {
            let base = r * per_ring;
            for i in 0..per_ring {
                t.add_edge(base + i, base + (i + 1) % per_ring);
            }
        }
        // Bridges between consecutive octagons (Aspen chips connect rings via
        // two parallel edges).
        for r in 0..rings - 1 {
            let a = r * per_ring;
            let b = (r + 1) * per_ring;
            t.add_edge(a + 1, b + 6);
            t.add_edge(a + 2, b + 5);
        }
        t
    }

    /// Google Sycamore connectivity, modelled as a 6×9 nearest-neighbor grid
    /// (54 qubits). The physical chip uses a diagonal square lattice with the
    /// same degree-≤4 connectivity; a rectangular grid preserves the routing
    /// distances that matter for the study.
    pub fn sycamore() -> Self {
        Topology::grid(6, 9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_ring_shapes() {
        let line = Topology::line(5);
        assert_eq!(line.num_edges(), 4);
        assert!(!line.has_edge(0, 4));
        let ring = Topology::ring(5);
        assert_eq!(ring.num_edges(), 5);
        assert!(ring.has_edge(0, 4));
        assert!(ring.is_connected());
    }

    #[test]
    fn grid_shape_and_distances() {
        let g = Topology::grid(3, 4);
        assert_eq!(g.num_qubits(), 12);
        // Edges: 3*(4-1) horizontal + 4*(3-1) vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.distance(0, 11), Some(5));
        assert!(g.is_connected());
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let g = Topology::grid(3, 3);
        let p = g.shortest_path(0, 8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn disconnected_graph_reports_none() {
        let mut t = Topology::new(4);
        t.add_edge(0, 1);
        t.add_edge(2, 3);
        assert!(t.shortest_path(0, 3).is_none());
        assert!(!t.is_connected());
        assert_eq!(t.distance(0, 1), Some(1));
    }

    #[test]
    fn aspen8_structure() {
        let a = Topology::aspen8();
        assert_eq!(a.num_qubits(), 32);
        // 4 rings x 8 edges + 3 x 2 bridges = 38 edges.
        assert_eq!(a.num_edges(), 38);
        assert!(a.is_connected());
        assert!(a.has_edge(0, 7));
        assert!(a.has_edge(1, 14));
        // Degree never exceeds 3 on Aspen.
        for q in 0..32 {
            assert!(
                a.neighbors(q).len() <= 3,
                "qubit {q} has too many neighbors"
            );
        }
    }

    #[test]
    fn sycamore_structure() {
        let s = Topology::sycamore();
        assert_eq!(s.num_qubits(), 54);
        assert!(s.is_connected());
        for q in 0..54 {
            assert!(s.neighbors(q).len() <= 4);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = Topology::grid(3, 3);
        for q in 0..9 {
            for n in g.neighbors(q) {
                assert!(g.neighbors(n).contains(&q));
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut t = Topology::new(2);
        t.add_edge(1, 1);
    }

    #[test]
    fn single_qubit_path() {
        let t = Topology::line(3);
        assert_eq!(t.shortest_path(1, 1).unwrap(), vec![1]);
        assert_eq!(t.distance(1, 1), Some(0));
    }
}
