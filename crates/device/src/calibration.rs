//! Calibration records: per-edge gate fidelities, per-qubit coherence and
//! readout, and gate durations.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Calibration data for one qubit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QubitCalibration {
    /// Energy-relaxation time T1 in microseconds.
    pub t1_us: f64,
    /// Dephasing time T2 in microseconds.
    pub t2_us: f64,
    /// Readout (measurement) error probability.
    pub readout_error: f64,
    /// Average single-qubit gate fidelity.
    pub one_qubit_fidelity: f64,
}

impl QubitCalibration {
    /// Creates a record, validating that probabilities and times are sane.
    ///
    /// # Panics
    /// Panics if fidelity/readout error are outside `[0, 1]` or times are
    /// non-positive.
    pub fn new(t1_us: f64, t2_us: f64, readout_error: f64, one_qubit_fidelity: f64) -> Self {
        assert!(
            t1_us > 0.0 && t2_us > 0.0,
            "coherence times must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&readout_error),
            "readout error out of range"
        );
        assert!(
            (0.0..=1.0).contains(&one_qubit_fidelity),
            "fidelity out of range"
        );
        QubitCalibration {
            t1_us,
            t2_us,
            readout_error,
            one_qubit_fidelity,
        }
    }
}

impl Default for QubitCalibration {
    fn default() -> Self {
        // Representative superconducting-qubit values.
        QubitCalibration::new(20.0, 15.0, 0.03, 0.999)
    }
}

/// Calibration data for one edge (qubit pair): fidelity per calibrated
/// two-qubit gate type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EdgeCalibration {
    fidelity_by_gate: BTreeMap<String, f64>,
    default_fidelity: f64,
}

impl EdgeCalibration {
    /// Creates an edge record with a fallback fidelity for gate types that
    /// have no explicit entry.
    pub fn new(default_fidelity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&default_fidelity),
            "fidelity out of range"
        );
        EdgeCalibration {
            fidelity_by_gate: BTreeMap::new(),
            default_fidelity,
        }
    }

    /// Records the fidelity of `gate_name` on this edge.
    pub fn set(&mut self, gate_name: impl Into<String>, fidelity: f64) {
        assert!((0.0..=1.0).contains(&fidelity), "fidelity out of range");
        self.fidelity_by_gate.insert(gate_name.into(), fidelity);
    }

    /// Fidelity of `gate_name` on this edge, falling back to the edge default.
    pub fn fidelity(&self, gate_name: &str) -> f64 {
        *self
            .fidelity_by_gate
            .get(gate_name)
            .unwrap_or(&self.default_fidelity)
    }

    /// The fallback fidelity.
    pub fn default_fidelity(&self) -> f64 {
        self.default_fidelity
    }

    /// Gate names with explicit calibration entries.
    pub fn calibrated_gates(&self) -> impl Iterator<Item = (&str, f64)> {
        self.fidelity_by_gate.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Applies `f` to every stored fidelity (and the default), clamping the
    /// result into `[0, 1]`. Used to inflate/deflate error rates for the
    /// noise-level sweeps of Fig. 10f.
    pub fn map_fidelities(&self, f: impl Fn(f64) -> f64) -> EdgeCalibration {
        let mut out = EdgeCalibration::new(f(self.default_fidelity).clamp(0.0, 1.0));
        for (name, fid) in &self.fidelity_by_gate {
            out.set(name.clone(), f(*fid).clamp(0.0, 1.0));
        }
        out
    }
}

/// Gate durations in nanoseconds, used by the decoherence model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateDurations {
    /// Single-qubit gate duration.
    pub one_qubit_ns: f64,
    /// Two-qubit gate duration.
    pub two_qubit_ns: f64,
    /// Measurement duration.
    pub measurement_ns: f64,
}

impl Default for GateDurations {
    fn default() -> Self {
        GateDurations {
            one_qubit_ns: 25.0,
            two_qubit_ns: 32.0,
            measurement_ns: 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_calibration_validation() {
        let q = QubitCalibration::new(20.0, 25.0, 0.02, 0.9995);
        assert!((q.t1_us - 20.0).abs() < 1e-12);
        assert!((q.one_qubit_fidelity - 0.9995).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "coherence times")]
    fn negative_t1_panics() {
        let _ = QubitCalibration::new(-1.0, 10.0, 0.0, 1.0);
    }

    #[test]
    fn edge_lookup_and_fallback() {
        let mut e = EdgeCalibration::new(0.99);
        e.set("CZ", 0.94);
        e.set("XY(pi)", 0.97);
        assert!((e.fidelity("CZ") - 0.94).abs() < 1e-12);
        assert!((e.fidelity("XY(pi)") - 0.97).abs() < 1e-12);
        assert!((e.fidelity("SYC") - 0.99).abs() < 1e-12);
        assert_eq!(e.calibrated_gates().count(), 2);
    }

    #[test]
    fn map_fidelities_scales_errors() {
        let mut e = EdgeCalibration::new(0.99);
        e.set("CZ", 0.98);
        // Double the error rate.
        let scaled = e.map_fidelities(|f| 1.0 - 2.0 * (1.0 - f));
        assert!((scaled.fidelity("CZ") - 0.96).abs() < 1e-12);
        assert!((scaled.default_fidelity() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn map_fidelities_clamps() {
        let e = EdgeCalibration::new(0.5);
        let worse = e.map_fidelities(|f| f - 0.9);
        assert_eq!(worse.default_fidelity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fidelity out of range")]
    fn out_of_range_fidelity_panics() {
        let mut e = EdgeCalibration::new(0.9);
        e.set("CZ", 1.2);
    }

    #[test]
    fn default_durations_are_positive() {
        let d = GateDurations::default();
        assert!(d.one_qubit_ns > 0.0 && d.two_qubit_ns > 0.0 && d.measurement_ns > 0.0);
    }
}
