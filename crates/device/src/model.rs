//! The [`DeviceModel`]: topology + calibration, with constructors for the two
//! machines studied in the paper.

use std::collections::BTreeMap;

use circuit::QubitId;
use nuop_core::HardwareFidelityProvider;
use qmath::RngSeed;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calibration::{EdgeCalibration, GateDurations, QubitCalibration};
use crate::topology::Topology;

/// A complete device model: connectivity, per-edge gate fidelities, per-qubit
/// coherence/readout data and gate durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    name: String,
    topology: Topology,
    edges: BTreeMap<(QubitId, QubitId), EdgeCalibration>,
    qubits: Vec<QubitCalibration>,
    durations: GateDurations,
}

impl DeviceModel {
    /// Builds a device model from parts.
    ///
    /// # Panics
    /// Panics if the number of qubit-calibration records does not match the
    /// topology, or an edge record refers to a non-edge.
    pub fn new(
        name: impl Into<String>,
        topology: Topology,
        edges: BTreeMap<(QubitId, QubitId), EdgeCalibration>,
        qubits: Vec<QubitCalibration>,
        durations: GateDurations,
    ) -> Self {
        assert_eq!(
            qubits.len(),
            topology.num_qubits(),
            "one calibration record per qubit required"
        );
        for &(a, b) in edges.keys() {
            assert!(
                topology.has_edge(a, b),
                "calibration for non-edge ({a},{b})"
            );
        }
        DeviceModel {
            name: name.into(),
            topology,
            edges,
            qubits,
            durations,
        }
    }

    /// Device name (`"Aspen-8"`, `"Sycamore"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Connectivity graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// Gate durations.
    pub fn durations(&self) -> GateDurations {
        self.durations
    }

    /// Per-qubit calibration record.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn qubit(&self, q: QubitId) -> &QubitCalibration {
        &self.qubits[q]
    }

    /// Per-edge calibration record, if the pair is an edge.
    pub fn edge(&self, a: QubitId, b: QubitId) -> Option<&EdgeCalibration> {
        self.edges.get(&(a.min(b), a.max(b)))
    }

    /// Mean two-qubit gate fidelity across all edges (using each edge's
    /// default entry).
    pub fn mean_two_qubit_fidelity(&self) -> f64 {
        let sum: f64 = self.edges.values().map(|e| e.default_fidelity()).sum();
        sum / self.edges.len().max(1) as f64
    }

    /// Mean single-qubit gate fidelity across qubits.
    pub fn mean_one_qubit_fidelity(&self) -> f64 {
        let sum: f64 = self.qubits.iter().map(|q| q.one_qubit_fidelity).sum();
        sum / self.qubits.len().max(1) as f64
    }

    /// Returns a copy of the model with every two-qubit error rate scaled by
    /// `factor` (e.g. `0.5` halves error rates, `2.0` doubles them). Used for
    /// the error-rate sweeps of Fig. 7, Fig. 10 (1.5X/2X/…) and Fig. 10f.
    pub fn with_error_scale(&self, factor: f64) -> DeviceModel {
        assert!(factor >= 0.0, "error scale must be non-negative");
        let mut out = self.clone();
        for e in out.edges.values_mut() {
            *e = e.map_fidelities(|f| 1.0 - factor * (1.0 - f));
        }
        out.name = format!("{} (2q errors x{factor})", self.name);
        out
    }

    /// Returns a copy in which every gate type on every edge has the same
    /// fidelity (the device's mean), removing noise variation across gate
    /// types and qubit pairs — the ablation of Fig. 10e.
    pub fn without_noise_variation(&self) -> DeviceModel {
        let mean = self.mean_two_qubit_fidelity();
        let mut out = self.clone();
        for e in out.edges.values_mut() {
            let mut flat = EdgeCalibration::new(mean);
            for (name, _) in e.calibrated_gates() {
                flat.set(name.to_string(), mean);
            }
            *e = flat;
        }
        out.name = format!("{} (no noise variation)", self.name);
        out
    }

    /// Rigetti Aspen-8 model. The first octagon's CZ / XY(π) fidelities are the
    /// measured values of paper Fig. 3; the remaining rings are sampled from
    /// the same spread. Arbitrary `XY(θ)` types (and the S2/S5/S6 types built
    /// from them) get fidelities uniform in 95–99% as reported in §VI, and the
    /// SWAP type is priced like the weakest calibrated type on the edge.
    pub fn aspen8(seed: RngSeed) -> DeviceModel {
        let topology = Topology::aspen8();
        let mut rng = seed.rng();
        // Fig. 3 ring-0 values: (XY(pi), CZ) per edge (0-1, 1-2, ..., 7-0).
        // An XY fidelity of 0 means the XY gate is not calibrated on that edge.
        let fig3: [(f64, f64); 8] = [
            (0.0, 0.86),
            (0.0, 0.81),
            (0.97, 0.94),
            (0.95, 0.97),
            (0.84, 0.94),
            (0.96, 0.93),
            (0.70, 0.94),
            (0.0, 0.96),
        ];
        let mut edges = BTreeMap::new();
        for (a, b) in topology.edges() {
            let (xy_pi, cz) = if a < 8 && b < 8 {
                // Edge within the first octagon: Fig. 3 slot `i` is the edge
                // (i, i+1 mod 8), so slot 7 is the (0, 7) wrap-around edge.
                let idx = if a.min(b) == 0 && a.max(b) == 7 {
                    7
                } else {
                    a.min(b)
                };
                fig3[idx]
            } else {
                // Other rings / bridges: sample from the same spread.
                let cz = rng.gen_range(0.81..0.97);
                let xy = if rng.gen_bool(0.75) {
                    rng.gen_range(0.70..0.97)
                } else {
                    0.0
                };
                (xy, cz)
            };
            let mut cal = EdgeCalibration::new(rng.gen_range(0.95..0.99));
            cal.set("CZ", cz);
            if xy_pi > 0.0 {
                cal.set("XY(pi)", xy_pi);
                cal.set("iSWAP", xy_pi);
            }
            // Arbitrary XY(theta) gate types: uniform 95-99% (paper §VI), used
            // for sqrt_iSWAP / fSim(pi/3,0) / fSim(3pi/8,0) and the XY family.
            for name in ["sqrt_iSWAP", "fSim(pi/3,0)", "fSim(3pi/8,0)", "FullXY"] {
                cal.set(name, rng.gen_range(0.95..0.99));
            }
            // A hardware SWAP would be implemented as an XY-family pulse; price
            // it like the other XY types.
            cal.set("SWAP", rng.gen_range(0.95..0.99));
            edges.insert((a.min(b), a.max(b)), cal);
        }
        let qubits = (0..topology.num_qubits())
            .map(|_| {
                QubitCalibration::new(
                    rng.gen_range(18.0..35.0),
                    rng.gen_range(12.0..25.0),
                    rng.gen_range(0.02..0.08),
                    1.0 - rng.gen_range(0.0005..0.002),
                )
            })
            .collect();
        DeviceModel::new(
            "Aspen-8",
            topology,
            edges,
            qubits,
            GateDurations {
                one_qubit_ns: 40.0,
                two_qubit_ns: 180.0,
                measurement_ns: 2000.0,
            },
        )
    }

    /// Google Sycamore model: 54 qubits, SYC fidelity ≈99.4%, all other
    /// two-qubit gate types drawn from the N(0.62%, 0.24%) error distribution
    /// reported in §VI, coherence and readout from the supremacy experiment.
    pub fn sycamore(seed: RngSeed) -> DeviceModel {
        let topology = Topology::sycamore();
        let mut rng = seed.rng();
        let gate_names = [
            "SYC",
            "sqrt_iSWAP",
            "CZ",
            "iSWAP",
            "fSim(pi/3,0)",
            "fSim(3pi/8,0)",
            "fSim(pi/6,pi)",
            "SWAP",
            "XY(pi)",
            "FullfSim",
            "FullXY",
        ];
        let mut edges = BTreeMap::new();
        for (a, b) in topology.edges() {
            // Mean error 0.62%, sigma 0.24%, truncated to [0.05%, 2%].
            let mut sample_error = || -> f64 {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (0.0062 + 0.0024 * z).clamp(0.0005, 0.02)
            };
            let mut cal = EdgeCalibration::new(1.0 - sample_error());
            for name in gate_names {
                let err = if name == "SYC" {
                    // SYC is the heavily optimized native gate.
                    sample_error().min(0.008) * 0.9
                } else {
                    sample_error()
                };
                cal.set(name, 1.0 - err);
            }
            edges.insert((a.min(b), a.max(b)), cal);
        }
        let qubits = (0..topology.num_qubits())
            .map(|_| {
                QubitCalibration::new(
                    rng.gen_range(12.0..20.0),
                    rng.gen_range(10.0..18.0),
                    rng.gen_range(0.02..0.05),
                    1.0 - rng.gen_range(0.0008..0.0025),
                )
            })
            .collect();
        DeviceModel::new(
            "Sycamore",
            topology,
            edges,
            qubits,
            GateDurations {
                one_qubit_ns: 25.0,
                two_qubit_ns: 12.0,
                measurement_ns: 1000.0,
            },
        )
    }

    /// Extracts the sub-device induced by `physical` qubits, relabelling them
    /// `0..physical.len()` in the given order. Edges between selected qubits
    /// keep their calibration; edges to unselected qubits disappear.
    ///
    /// The compiler uses this to carve an `n`-qubit region out of a 32- or
    /// 54-qubit machine so that the routed circuit stays small enough for
    /// state-vector simulation.
    ///
    /// # Panics
    /// Panics if `physical` is empty, contains duplicates, or references
    /// qubits outside the device.
    pub fn subdevice(&self, physical: &[QubitId]) -> DeviceModel {
        assert!(!physical.is_empty(), "subdevice needs at least one qubit");
        let mut seen = std::collections::BTreeSet::new();
        for &p in physical {
            assert!(p < self.num_qubits(), "physical qubit {p} out of range");
            assert!(seen.insert(p), "duplicate physical qubit {p}");
        }
        let mut topology = Topology::new(physical.len());
        let mut edges = BTreeMap::new();
        for (i, &pi) in physical.iter().enumerate() {
            for (j, &pj) in physical.iter().enumerate().skip(i + 1) {
                if self.topology.has_edge(pi, pj) {
                    topology.add_edge(i, j);
                    if let Some(cal) = self.edge(pi, pj) {
                        edges.insert((i, j), cal.clone());
                    }
                }
            }
        }
        let qubits: Vec<QubitCalibration> =
            physical.iter().map(|&p| self.qubits[p].clone()).collect();
        DeviceModel::new(
            format!("{}[{} qubits]", self.name, physical.len()),
            topology,
            edges,
            qubits,
            self.durations,
        )
    }

    /// An idealized fully-connected device with uniform fidelity, handy for
    /// unit tests and for isolating algorithmic effects from device effects.
    pub fn ideal(num_qubits: usize, two_qubit_fidelity: f64) -> DeviceModel {
        let mut topology = Topology::new(num_qubits);
        for a in 0..num_qubits {
            for b in (a + 1)..num_qubits {
                topology.add_edge(a, b);
            }
        }
        let mut edges = BTreeMap::new();
        for (a, b) in topology.edges() {
            edges.insert((a, b), EdgeCalibration::new(two_qubit_fidelity));
        }
        let qubits = vec![QubitCalibration::new(1e6, 1e6, 0.0, 1.0); num_qubits];
        DeviceModel::new("ideal", topology, edges, qubits, GateDurations::default())
    }
}

impl HardwareFidelityProvider for DeviceModel {
    fn two_qubit_fidelity(&self, q0: QubitId, q1: QubitId, gate_name: &str) -> f64 {
        match self.edge(q0, q1) {
            Some(e) => e.fidelity(gate_name),
            // Non-adjacent pair: should not happen after routing; return the
            // device mean so callers degrade gracefully.
            None => self.mean_two_qubit_fidelity(),
        }
    }

    fn one_qubit_fidelity(&self, q: QubitId) -> f64 {
        self.qubits.get(q).map_or(1.0, |c| c.one_qubit_fidelity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aspen8_reproduces_fig3_ring() {
        let d = DeviceModel::aspen8(RngSeed(1));
        assert_eq!(d.num_qubits(), 32);
        // Fig. 3 values on the first ring.
        assert!((d.two_qubit_fidelity(2, 3, "CZ") - 0.94).abs() < 1e-9);
        assert!((d.two_qubit_fidelity(2, 3, "XY(pi)") - 0.97).abs() < 1e-9);
        assert!((d.two_qubit_fidelity(6, 7, "XY(pi)") - 0.70).abs() < 1e-9);
        assert!((d.two_qubit_fidelity(0, 7, "CZ") - 0.96).abs() < 1e-9);
        // Edge (0,1) has no calibrated XY gate: falls back to the edge default
        // (0.95-0.99), never the Fig. 3 zero.
        let f01 = d.two_qubit_fidelity(0, 1, "XY(pi)");
        assert!(f01 > 0.5);
    }

    #[test]
    fn aspen8_is_deterministic_per_seed() {
        let a = DeviceModel::aspen8(RngSeed(42));
        let b = DeviceModel::aspen8(RngSeed(42));
        let c = DeviceModel::aspen8(RngSeed(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sycamore_error_rates_match_reported_distribution() {
        let d = DeviceModel::sycamore(RngSeed(7));
        assert_eq!(d.num_qubits(), 54);
        let mean_err = 1.0 - d.mean_two_qubit_fidelity();
        assert!(
            mean_err > 0.002 && mean_err < 0.012,
            "mean error = {mean_err}"
        );
        // SYC should be at least as good as the average alternative type.
        let mut syc_sum = 0.0;
        let mut other_sum = 0.0;
        let mut count = 0.0;
        for (a, b) in d.topology().edges() {
            syc_sum += d.two_qubit_fidelity(a, b, "SYC");
            other_sum += d.two_qubit_fidelity(a, b, "CZ");
            count += 1.0;
        }
        assert!(syc_sum / count >= other_sum / count - 1e-3);
    }

    #[test]
    fn error_scaling_changes_mean() {
        let d = DeviceModel::sycamore(RngSeed(3));
        let base_err = 1.0 - d.mean_two_qubit_fidelity();
        let double = d.with_error_scale(2.0);
        let double_err = 1.0 - double.mean_two_qubit_fidelity();
        assert!((double_err - 2.0 * base_err).abs() < 1e-9);
        let half = d.with_error_scale(0.5);
        assert!(((1.0 - half.mean_two_qubit_fidelity()) - 0.5 * base_err).abs() < 1e-9);
    }

    #[test]
    fn no_noise_variation_flattens_fidelities() {
        let d = DeviceModel::sycamore(RngSeed(5)).without_noise_variation();
        let mean = d.mean_two_qubit_fidelity();
        for (a, b) in d.topology().edges() {
            for gate in ["SYC", "CZ", "iSWAP", "SWAP"] {
                assert!((d.two_qubit_fidelity(a, b, gate) - mean).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ideal_device_is_fully_connected_and_perfect() {
        let d = DeviceModel::ideal(5, 1.0);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert!(d.topology().has_edge(a, b));
                    assert_eq!(d.two_qubit_fidelity(a, b, "anything"), 1.0);
                }
            }
            assert_eq!(d.one_qubit_fidelity(a), 1.0);
        }
    }

    #[test]
    fn provider_falls_back_for_non_adjacent_pairs() {
        let d = DeviceModel::aspen8(RngSeed(1));
        // Qubits 0 and 20 are not adjacent.
        assert!(!d.topology().has_edge(0, 20));
        let f = d.two_qubit_fidelity(0, 20, "CZ");
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn mean_fidelities_are_probabilities() {
        for d in [
            DeviceModel::aspen8(RngSeed(2)),
            DeviceModel::sycamore(RngSeed(2)),
        ] {
            let m2 = d.mean_two_qubit_fidelity();
            let m1 = d.mean_one_qubit_fidelity();
            assert!(m2 > 0.7 && m2 <= 1.0);
            assert!(m1 > 0.99 && m1 <= 1.0);
        }
    }
}
