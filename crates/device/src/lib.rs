//! Device models for the instruction-set design study.
//!
//! The paper evaluates instruction sets on two real machines:
//!
//! * **Rigetti Aspen-8** — 30 usable qubits arranged as four connected
//!   octagonal rings, calibrated for CZ and XY(π) gates (Fig. 3 shows the
//!   first ring's measured fidelities, which are reproduced verbatim here).
//! * **Google Sycamore** — 54 qubits on a grid, calibrated for the SYC gate
//!   with ≈0.62% mean two-qubit error.
//!
//! Since the real calibration feeds are not available offline, this crate
//! synthesizes calibration tables from the distributions the paper reports
//! (§VI): Aspen-8 XY(θ) fidelities uniform in 95–99%, Sycamore non-SYC
//! two-qubit error normal with μ=0.62%, σ=0.24%. All sampling is seeded so
//! every experiment is reproducible.
//!
//! [`DeviceModel`] implements [`nuop_core::HardwareFidelityProvider`], so it
//! can be handed directly to the NuOp pass, and exposes the coherence times,
//! durations and readout errors the `sim` crate needs to build its noise
//! model.

#![warn(missing_docs)]

pub mod calibration;
pub mod model;
pub mod topology;

pub use calibration::{EdgeCalibration, GateDurations, QubitCalibration};
pub use model::DeviceModel;
pub use topology::Topology;
