//! Calibration-overhead model (paper §IX, Fig. 11).
//!
//! The paper adopts the fSim calibration procedure of Foxen et al. (where 525
//! gate types were calibrated on two qubits) and models the cost of keeping a
//! multi-type instruction set calibrated:
//!
//! * every gate type on every coupled qubit pair must be calibrated
//!   individually (CPHASE angle sweep, iSWAP-angle sweep, pulse construction,
//!   unitary tomography) and then *characterized* by running a large number of
//!   cross-entropy-benchmarking (XEB) circuits;
//! * the number of calibration circuits therefore grows linearly with both the
//!   number of gate types and the number of coupled pairs (≈ device size);
//! * wall-clock calibration time grows linearly in the number of gate types
//!   (the paper conservatively assumes ≈2 hours per additional two-qubit gate
//!   type on top of the per-device baseline).
//!
//! A continuous gate family corresponds to an effectively unbounded number of
//! types; following Foxen et al. the model prices it as the 525-point grid
//! actually calibrated in that work, which is what makes the discrete 4–8 type
//! sets of the paper two orders of magnitude cheaper.

#![warn(missing_docs)]

use gates::InstructionSet;
use serde::{Deserialize, Serialize};

/// Number of fSim parameter combinations Foxen et al. calibrated to cover the
/// continuous family; used to price `FullXY` / `FullfSim`.
pub const CONTINUOUS_FAMILY_COMBINATIONS: usize = 525;

/// The calibration-cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationModel {
    /// Circuits per calibration stage (angle sweeps, tomography points).
    pub circuits_per_stage: usize,
    /// Number of calibration stages per gate type per pair (CPHASE sweep,
    /// iSWAP sweep, θ tune-up, pulse construction, unitary tomography).
    pub stages: usize,
    /// XEB characterization rounds per gate type per pair.
    pub xeb_rounds: usize,
    /// Circuits per XEB round.
    pub circuits_per_xeb_round: usize,
    /// Wall-clock hours per additional two-qubit gate type (whole device,
    /// calibrated in parallel across pairs).
    pub hours_per_gate_type: f64,
    /// Baseline hours per calibration cycle (electronics, qubit frequencies,
    /// single-qubit gates, readout).
    pub baseline_hours: f64,
}

impl Default for CalibrationModel {
    fn default() -> Self {
        CalibrationModel {
            circuits_per_stage: 200,
            stages: 5,
            xeb_rounds: 1000,
            circuits_per_xeb_round: 10,
            hours_per_gate_type: 2.0,
            baseline_hours: 2.0,
        }
    }
}

impl CalibrationModel {
    /// Calibration + characterization circuits for a single gate type on a
    /// single qubit pair.
    pub fn circuits_per_type_per_pair(&self) -> usize {
        self.circuits_per_stage * self.stages + self.xeb_rounds * self.circuits_per_xeb_round
    }

    /// Estimated number of coupled qubit pairs in a device of `num_qubits`
    /// qubits (grid-like devices have ≈2 edges per qubit).
    pub fn estimated_pairs(num_qubits: usize) -> usize {
        match num_qubits {
            0 | 1 => 0,
            2 => 1,
            n => 2 * n,
        }
    }

    /// Total calibration circuits for `num_gate_types` gate types on a device
    /// with `num_qubits` qubits (Fig. 11a).
    pub fn total_circuits(&self, num_gate_types: usize, num_qubits: usize) -> f64 {
        self.circuits_per_type_per_pair() as f64
            * num_gate_types as f64
            * Self::estimated_pairs(num_qubits) as f64
    }

    /// Wall-clock calibration hours for `num_gate_types` gate types (Fig. 11b).
    pub fn hours(&self, num_gate_types: usize) -> f64 {
        self.baseline_hours + self.hours_per_gate_type * num_gate_types as f64
    }

    /// Number of distinct gate types the model charges for an instruction set:
    /// the set size for discrete sets, [`CONTINUOUS_FAMILY_COMBINATIONS`] for
    /// continuous families.
    pub fn effective_gate_types(&self, set: &InstructionSet) -> usize {
        set.num_gate_types()
            .unwrap_or(CONTINUOUS_FAMILY_COMBINATIONS)
    }

    /// Total calibration circuits for an instruction set on a device.
    pub fn circuits_for_set(&self, set: &InstructionSet, num_qubits: usize) -> f64 {
        self.total_circuits(self.effective_gate_types(set), num_qubits)
    }

    /// Wall-clock hours for an instruction set.
    pub fn hours_for_set(&self, set: &InstructionSet) -> f64 {
        self.hours(self.effective_gate_types(set))
    }

    /// Ratio of the continuous family's calibration cost to a discrete set's
    /// cost — the paper's headline "two orders of magnitude" saving.
    pub fn saving_versus_continuous(&self, set: &InstructionSet) -> f64 {
        assert!(!set.is_continuous(), "saving is defined for discrete sets");
        CONTINUOUS_FAMILY_COMBINATIONS as f64 / self.effective_gate_types(set) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuits_scale_linearly_in_types_and_size() {
        let m = CalibrationModel::default();
        let base = m.total_circuits(1, 54);
        assert!((m.total_circuits(2, 54) - 2.0 * base).abs() < 1e-6);
        assert!((m.total_circuits(1, 108) / base - 2.0).abs() < 0.1);
    }

    #[test]
    fn fig11a_orders_of_magnitude() {
        let m = CalibrationModel::default();
        // 54-qubit device, 10 gate types: ~10^7 circuits (paper Fig. 11a).
        let c54 = m.total_circuits(10, 54);
        assert!(c54 > 1e6 && c54 < 1e8, "c54 = {c54}");
        // 1000-qubit device, a few hundred combinations: approaching 10^9.
        let c1000 = m.total_circuits(100, 1000);
        assert!(c1000 > 1e8, "c1000 = {c1000}");
        // Two qubits, full continuous family (525 types): millions of circuits.
        let c2 = m.total_circuits(CONTINUOUS_FAMILY_COMBINATIONS, 2);
        assert!(c2 > 1e6, "c2 = {c2}");
    }

    #[test]
    fn hours_grow_linearly_and_match_fig11b_range() {
        let m = CalibrationModel::default();
        assert!(m.hours(2) < m.hours(8));
        // 2-8 gate types: single-digit to ~20 hours (Fig. 11b's y-axis).
        assert!(
            m.hours(2) >= 4.0 && m.hours(8) <= 20.0,
            "{} {}",
            m.hours(2),
            m.hours(8)
        );
    }

    #[test]
    fn discrete_sets_save_two_orders_of_magnitude() {
        let m = CalibrationModel::default();
        for set in [
            InstructionSet::r(5),
            InstructionSet::g(7),
            InstructionSet::g(4),
        ] {
            let saving = m.saving_versus_continuous(&set);
            assert!(saving >= 65.0, "{}: saving = {saving}", set.name());
            let circuits_discrete = m.circuits_for_set(&set, 54);
            let circuits_continuous = m.circuits_for_set(&InstructionSet::full_fsim(), 54);
            assert!((circuits_continuous / circuits_discrete - saving).abs() < 1e-6);
        }
    }

    #[test]
    fn continuous_sets_are_priced_as_the_foxen_grid() {
        let m = CalibrationModel::default();
        assert_eq!(
            m.effective_gate_types(&InstructionSet::full_fsim()),
            CONTINUOUS_FAMILY_COMBINATIONS
        );
        assert_eq!(m.effective_gate_types(&InstructionSet::g(7)), 8);
        assert_eq!(m.effective_gate_types(&InstructionSet::s(3)), 1);
    }

    #[test]
    fn hours_for_sets_ordering() {
        let m = CalibrationModel::default();
        assert!(m.hours_for_set(&InstructionSet::s(1)) < m.hours_for_set(&InstructionSet::g(7)));
        assert!(
            m.hours_for_set(&InstructionSet::g(7)) < m.hours_for_set(&InstructionSet::full_fsim())
        );
    }

    #[test]
    fn tiny_devices_have_no_pairs() {
        assert_eq!(CalibrationModel::estimated_pairs(0), 0);
        assert_eq!(CalibrationModel::estimated_pairs(1), 0);
        assert_eq!(CalibrationModel::estimated_pairs(2), 1);
    }

    #[test]
    #[should_panic(expected = "defined for discrete sets")]
    fn saving_for_continuous_set_panics() {
        let m = CalibrationModel::default();
        let _ = m.saving_versus_continuous(&InstructionSet::full_xy());
    }
}
