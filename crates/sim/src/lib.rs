//! Quantum circuit simulation with realistic noise.
//!
//! This crate replaces the paper's use of the Qiskit Aer simulator (§VI):
//!
//! * [`statevector`] — a dense state-vector simulator with efficient in-place
//!   application of 1- and 2-qubit gates and measurement sampling. Amplitude
//!   sweeps visit only the base indices of the touched subspace and split
//!   across scoped worker threads above
//!   [`PARALLEL_SWEEP_MIN_QUBITS`],
//!   bit-identically for any thread count.
//! * [`channels`] — Kraus-operator noise channels: depolarizing (scaled by the
//!   calibrated gate error), amplitude damping and dephasing derived from
//!   T1/T2 and gate duration, and classical readout error.
//! * [`noise_model`] — builds the per-operation noise from a
//!   [`device::DeviceModel`] calibration table.
//! * [`precompiled`] — circuits lowered **once** into simulation-ready ops:
//!   per-op `Mat2`/`Mat4` kernels plus prebuilt, completeness-checked Kraus
//!   channels (instead of rebuilding them every shot), with optional **gate
//!   fusion** ([`FusionPolicy`]) coalescing adjacent ops into single kernels
//!   wherever no RNG-consuming channel separates them.
//! * [`engine`] — the parallel batched-shot [`ExecutionEngine`]: shots are
//!   sharded across scoped worker threads with per-shard ChaCha streams, so
//!   counts are bit-identical regardless of thread count.
//! * [`runner`] — Monte-Carlo trajectory execution: each shot samples one
//!   noise realization, which converges to the density-matrix result while
//!   scaling to 20+ qubits. [`NoisySimulator::run`] and
//!   [`IdealSimulator::sample`] are thin single-job wrappers over the engine.
//! * [`density`] — an exact density-matrix simulator for small registers, used
//!   to validate the trajectory sampler (it consumes the same precompiled ops).
//! * [`audit`] — a bridge to the `verify` crate's static semantic rules:
//!   [`PrecompiledCircuit::verify_artifact`] proves every lowered kernel
//!   unitary, every Kraus channel trace-preserving, and a `Safe`-fused stream
//!   faithful to its unfused baseline without executing a single shot. The
//!   engine runs it automatically under
//!   [`EngineBuilder::validate`](engine::EngineBuilder::validate).
//!
//! # Example
//!
//! ```
//! use circuit::{Circuit, Operation};
//! use sim::{ExecutionEngine, IdealSimulator, NoisySimulator, NoiseModel, SimJob};
//! use qmath::RngSeed;
//!
//! let mut bell = Circuit::new(2);
//! bell.push(Operation::h(0));
//! bell.push(Operation::cnot(0, 1));
//! bell.measure_all();
//!
//! // Ideal probabilities: 50/50 on |00> and |11>.
//! let probs = IdealSimulator::probabilities(&bell);
//! assert!((probs[0] - 0.5).abs() < 1e-10);
//! assert!((probs[3] - 0.5).abs() < 1e-10);
//!
//! // Noisy counts still concentrate on the Bell outcomes.
//! let device = device::DeviceModel::ideal(2, 0.995);
//! let noise = NoiseModel::from_device(&device);
//! let counts = NoisySimulator::new(noise.clone()).run(&bell, 200, RngSeed(5));
//! assert_eq!(counts.total(), 200);
//!
//! // The same job through the batch engine, with timings.
//! let result = ExecutionEngine::new()
//!     .run_batch(&[SimJob::noisy(bell, noise, 200, RngSeed(5))])
//!     .remove(0);
//! assert_eq!(result.counts.total(), 200);
//! assert!(result.report.shots_per_sec() > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod audit;
pub mod channels;
pub mod density;
pub mod engine;
pub mod noise_model;
pub mod precompiled;
pub mod runner;
pub mod statevector;

pub use channels::{
    amplitude_damping_kraus, dephasing_kraus, depolarizing_1q, depolarizing_2q, ArityChannel,
    Kraus1q, Kraus2q, KrausChannel,
};
pub use density::DensityMatrix;
pub use engine::{
    EngineBuilder, EngineConfigError, EngineReport, ExecutionEngine, SeedPolicy, SimJob, SimResult,
    DEFAULT_SHOT_CHUNK,
};
pub use noise_model::{NoiseModel, OperationNoise};
pub use precompiled::{
    AttachedChannel, FusionPolicy, PrecompiledCircuit, PrecompiledKind, PrecompiledOp,
};
pub use runner::{Counts, CountsMismatch, IdealSimulator, NoisySimulator};
pub use statevector::{MeasurementSampler, StateVector, PARALLEL_SWEEP_MIN_QUBITS};
