//! Quantum circuit simulation with realistic noise.
//!
//! This crate replaces the paper's use of the Qiskit Aer simulator (§VI):
//!
//! * [`statevector`] — a dense state-vector simulator with efficient in-place
//!   application of 1- and 2-qubit gates and measurement sampling.
//! * [`channels`] — Kraus-operator noise channels: depolarizing (scaled by the
//!   calibrated gate error), amplitude damping and dephasing derived from
//!   T1/T2 and gate duration, and classical readout error.
//! * [`noise_model`] — builds the per-operation noise from a
//!   [`device::DeviceModel`] calibration table.
//! * [`runner`] — Monte-Carlo trajectory execution: each shot samples one
//!   noise realization, which converges to the density-matrix result while
//!   scaling to 20+ qubits.
//! * [`density`] — an exact density-matrix simulator for small registers, used
//!   to validate the trajectory sampler.
//!
//! # Example
//!
//! ```
//! use circuit::{Circuit, Operation};
//! use sim::{IdealSimulator, NoisySimulator, NoiseModel};
//! use qmath::RngSeed;
//!
//! let mut bell = Circuit::new(2);
//! bell.push(Operation::h(0));
//! bell.push(Operation::cnot(0, 1));
//! bell.measure_all();
//!
//! // Ideal probabilities: 50/50 on |00> and |11>.
//! let probs = IdealSimulator::probabilities(&bell);
//! assert!((probs[0] - 0.5).abs() < 1e-10);
//! assert!((probs[3] - 0.5).abs() < 1e-10);
//!
//! // Noisy counts still concentrate on the Bell outcomes.
//! let device = device::DeviceModel::ideal(2, 0.995);
//! let noise = NoiseModel::from_device(&device);
//! let counts = NoisySimulator::new(noise).run(&bell, 200, RngSeed(5));
//! assert_eq!(counts.total(), 200);
//! ```

#![warn(missing_docs)]

pub mod channels;
pub mod density;
pub mod noise_model;
pub mod runner;
pub mod statevector;

pub use channels::{
    amplitude_damping_kraus, dephasing_kraus, depolarizing_1q, depolarizing_2q, ArityChannel,
    Kraus1q, Kraus2q, KrausChannel,
};
pub use density::DensityMatrix;
pub use noise_model::{NoiseModel, OperationNoise};
pub use runner::{Counts, IdealSimulator, NoisySimulator};
pub use statevector::StateVector;
