//! Ideal and Monte-Carlo (trajectory) circuit execution.

use std::collections::BTreeMap;

use circuit::{Circuit, OpKind};
use qmath::RngSeed;
use qmath::{Mat2, Mat4};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::channels::{ArityChannel, Kraus1q, Kraus2q};
use crate::noise_model::NoiseModel;
use crate::statevector::StateVector;

/// Measurement outcome histogram: basis index → number of shots.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counts {
    counts: BTreeMap<usize, usize>,
    num_qubits: usize,
}

impl Counts {
    /// Creates an empty histogram for an `n`-qubit register.
    pub fn new(num_qubits: usize) -> Self {
        Counts {
            counts: BTreeMap::new(),
            num_qubits,
        }
    }

    /// Records one observation of `basis_index`.
    pub fn record(&mut self, basis_index: usize) {
        *self.counts.entry(basis_index).or_insert(0) += 1;
    }

    /// Number of qubits measured.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total number of shots recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Count for one basis index.
    pub fn count(&self, basis_index: usize) -> usize {
        *self.counts.get(&basis_index).unwrap_or(&0)
    }

    /// Iterates over `(basis_index, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Empirical probability of a basis index.
    pub fn probability(&self, basis_index: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(basis_index) as f64 / total as f64
        }
    }

    /// The big-endian bitstring of a basis index, e.g. `"010"`.
    pub fn bitstring(&self, basis_index: usize) -> String {
        (0..self.num_qubits)
            .map(|q| {
                if basis_index & (1 << (self.num_qubits - 1 - q)) != 0 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

/// Noiseless execution helpers.
pub struct IdealSimulator;

impl IdealSimulator {
    /// Runs the circuit on `|0…0⟩` and returns the final state (measurements
    /// and barriers are ignored).
    pub fn final_state(circuit: &Circuit) -> StateVector {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        for op in circuit.iter() {
            match op.kind() {
                OpKind::Unitary1Q { matrix, .. } => {
                    let m = Mat2::try_from(matrix).expect("1Q operation carries a 2x2 matrix");
                    state.apply_one_qubit(&m, op.qubits()[0]);
                }
                OpKind::Unitary2Q { matrix, .. } => {
                    let m = Mat4::try_from(matrix).expect("2Q operation carries a 4x4 matrix");
                    state.apply_two_qubit(&m, op.qubits()[0], op.qubits()[1]);
                }
                OpKind::Measure | OpKind::Barrier => {}
            }
        }
        state
    }

    /// Ideal output probability distribution of the circuit.
    pub fn probabilities(circuit: &Circuit) -> Vec<f64> {
        IdealSimulator::final_state(circuit).probabilities()
    }

    /// Samples `shots` measurements from the ideal distribution.
    pub fn sample(circuit: &Circuit, shots: usize, seed: RngSeed) -> Counts {
        let state = IdealSimulator::final_state(circuit);
        let mut rng = seed.rng();
        let mut counts = Counts::new(circuit.num_qubits());
        for _ in 0..shots {
            counts.record(state.sample_measurement(&mut rng));
        }
        counts
    }
}

/// Monte-Carlo trajectory simulator with a device noise model.
pub struct NoisySimulator {
    noise: NoiseModel,
}

impl NoisySimulator {
    /// Creates a simulator for the given noise model.
    pub fn new(noise: NoiseModel) -> Self {
        NoisySimulator { noise }
    }

    /// The noise model in use.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Runs `shots` noisy trajectories of `circuit` and returns the measured
    /// counts. Each trajectory applies the circuit's unitaries interleaved with
    /// sampled Kraus operators, then samples one measurement outcome and
    /// applies readout error.
    pub fn run(&self, circuit: &Circuit, shots: usize, seed: RngSeed) -> Counts {
        let mut counts = Counts::new(circuit.num_qubits());
        for shot in 0..shots {
            let mut rng = seed.child(shot as u64).rng();
            let state = self.run_trajectory(circuit, &mut rng);
            let mut outcome = state.sample_measurement(&mut rng);
            outcome = self.apply_readout_error(outcome, circuit.num_qubits(), &mut rng);
            counts.record(outcome);
        }
        counts
    }

    /// Runs a single noisy trajectory and returns the (normalized) final state.
    pub fn run_trajectory<R: Rng + ?Sized>(&self, circuit: &Circuit, rng: &mut R) -> StateVector {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        for op in circuit.iter() {
            match op.kind() {
                OpKind::Unitary1Q { matrix, .. } => {
                    let m = Mat2::try_from(matrix).expect("1Q operation carries a 2x2 matrix");
                    state.apply_one_qubit(&m, op.qubits()[0]);
                }
                OpKind::Unitary2Q { matrix, .. } => {
                    let m = Mat4::try_from(matrix).expect("2Q operation carries a 4x4 matrix");
                    state.apply_two_qubit(&m, op.qubits()[0], op.qubits()[1]);
                }
                OpKind::Measure | OpKind::Barrier => {}
            }
            let noise = self.noise.noise_for(op);
            match (&noise.depolarizing, op.qubits()) {
                (Some(ArityChannel::One(channel)), [q]) => {
                    apply_channel_1q(&mut state, channel, *q, rng)
                }
                (Some(ArityChannel::Two(channel)), [q0, q1]) => {
                    apply_channel_2q(&mut state, channel, *q0, *q1, rng)
                }
                (None, _) => {}
                (Some(_), qubits) => unreachable!(
                    "noise_for returned a channel whose arity disagrees with a {}-qubit op",
                    qubits.len()
                ),
            }
            for (q, channel) in &noise.relaxation {
                apply_channel_1q(&mut state, channel, *q, rng);
            }
        }
        state
    }

    /// Flips each measured bit independently with its readout-error probability.
    fn apply_readout_error<R: Rng + ?Sized>(
        &self,
        outcome: usize,
        num_qubits: usize,
        rng: &mut R,
    ) -> usize {
        let mut noisy = outcome;
        for q in 0..num_qubits {
            let p = self.noise.readout_error(q);
            if p > 0.0 && rng.gen_bool(p) {
                noisy ^= 1 << (num_qubits - 1 - q);
            }
        }
        noisy
    }
}

/// Samples and applies one Kraus operator of a single-qubit channel.
fn apply_channel_1q<R: Rng + ?Sized>(
    state: &mut StateVector,
    channel: &Kraus1q,
    q: usize,
    rng: &mut R,
) {
    if channel.is_identity() {
        return;
    }
    let mut r: f64 = rng.gen_range(0.0..1.0);
    let last = channel.operators().len() - 1;
    for (i, k) in channel.operators().iter().enumerate() {
        let mut probe = state.clone();
        probe.apply_one_qubit(k, q);
        let p = probe.norm_sqr();
        if r < p || i == last {
            if p > 1e-300 {
                probe.normalize();
                *state = probe;
            }
            return;
        }
        r -= p;
    }
}

/// Samples and applies one Kraus operator of a two-qubit channel.
fn apply_channel_2q<R: Rng + ?Sized>(
    state: &mut StateVector,
    channel: &Kraus2q,
    q0: usize,
    q1: usize,
    rng: &mut R,
) {
    if channel.is_identity() {
        return;
    }
    let mut r: f64 = rng.gen_range(0.0..1.0);
    let last = channel.operators().len() - 1;
    for (i, k) in channel.operators().iter().enumerate() {
        let mut probe = state.clone();
        probe.apply_two_qubit(k, q0, q1);
        let p = probe.norm_sqr();
        if r < p || i == last {
            if p > 1e-300 {
                probe.normalize();
                *state = probe;
            }
            return;
        }
        r -= p;
    }
}

/// Total-variation distance between an empirical distribution (counts) and a
/// reference probability vector.
pub fn total_variation_distance(counts: &Counts, reference: &[f64]) -> f64 {
    let mut tv = 0.0;
    for (idx, p) in reference.iter().enumerate() {
        tv += (counts.probability(idx) - p).abs();
    }
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Operation;
    use device::DeviceModel;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        c.measure_all();
        c
    }

    #[test]
    fn ideal_bell_probabilities() {
        let p = IdealSimulator::probabilities(&bell_circuit());
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_sampling_matches_probabilities() {
        let counts = IdealSimulator::sample(&bell_circuit(), 4000, RngSeed(1));
        assert_eq!(counts.total(), 4000);
        assert_eq!(counts.count(1) + counts.count(2), 0);
        assert!((counts.probability(0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn noiseless_noisy_simulator_equals_ideal() {
        let device = DeviceModel::ideal(2, 1.0);
        let noise = NoiseModel::noiseless(&device);
        let counts = NoisySimulator::new(noise).run(&bell_circuit(), 500, RngSeed(2));
        assert_eq!(counts.count(1) + counts.count(2), 0);
    }

    #[test]
    fn noisy_simulation_degrades_gracefully() {
        // A moderately noisy device still mostly produces Bell outcomes, but
        // some leakage into |01>/|10> appears.
        let device = DeviceModel::ideal(2, 0.95);
        let mut noise = NoiseModel::from_device(&device);
        noise.with_readout_error = false;
        noise.with_relaxation = false;
        let counts = NoisySimulator::new(noise).run(&bell_circuit(), 2000, RngSeed(3));
        let good = counts.probability(0) + counts.probability(3);
        assert!(good > 0.85, "good fraction = {good}");
        assert!(good < 1.0);
    }

    #[test]
    fn readout_error_flips_bits() {
        // Empty circuit on a device with readout error: outcome should not
        // always be |00>.
        let device = DeviceModel::aspen8(RngSeed(1));
        let noise = NoiseModel::from_device(&device);
        let mut c = Circuit::new(2);
        c.measure_all();
        let counts = NoisySimulator::new(noise).run(&c, 2000, RngSeed(4));
        assert!(counts.count(0) < 2000);
        assert!(counts.probability(0) > 0.75);
    }

    #[test]
    fn deterministic_given_seed() {
        let device = DeviceModel::ideal(2, 0.97);
        let noise = NoiseModel::from_device(&device);
        let sim = NoisySimulator::new(noise);
        let a = sim.run(&bell_circuit(), 100, RngSeed(9));
        let b = sim.run(&bell_circuit(), 100, RngSeed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn counts_helpers() {
        let mut counts = Counts::new(3);
        counts.record(5);
        counts.record(5);
        counts.record(1);
        assert_eq!(counts.total(), 3);
        assert_eq!(counts.count(5), 2);
        assert_eq!(counts.bitstring(5), "101");
        assert!((counts.probability(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(counts.iter().count(), 2);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        // Prepare |1>, wait through many idle windows (via measurement noise),
        // and check the excited population decays.
        let device = DeviceModel::sycamore(RngSeed(11));
        let noise = NoiseModel::from_device(&device);
        let sim = NoisySimulator::new(noise);
        let mut c = Circuit::new(1);
        c.push(Operation::x(0));
        // Long idle: emulate with repeated measurement-duration relaxation by
        // adding many barriers is noise-free; instead add many X pairs (each
        // contributes gate-duration relaxation).
        for _ in 0..50 {
            c.push(Operation::x(0));
            c.push(Operation::x(0));
        }
        c.measure_all();
        let counts = sim.run(&c, 1000, RngSeed(12));
        let p1 = counts.probability(1);
        assert!(p1 < 0.99, "p1 = {p1}");
        assert!(p1 > 0.5, "p1 = {p1}");
    }

    #[test]
    fn total_variation_distance_bounds() {
        let counts = IdealSimulator::sample(&bell_circuit(), 2000, RngSeed(5));
        let ideal = IdealSimulator::probabilities(&bell_circuit());
        let tv = total_variation_distance(&counts, &ideal);
        assert!(tv < 0.05, "tv = {tv}");
        let uniform = vec![0.25; 4];
        let tv_uniform = total_variation_distance(&counts, &uniform);
        assert!(tv_uniform > 0.4);
    }
}
