//! Ideal and Monte-Carlo (trajectory) circuit execution.
//!
//! [`IdealSimulator::sample`] and [`NoisySimulator::run`] are thin single-job
//! wrappers over the [`ExecutionEngine`]: the circuit
//! is lowered once into a [`PrecompiledCircuit`]
//! and the shot loop is sharded across worker threads. Use the engine
//! directly ([`ExecutionEngine::run_batch`])
//! when executing many circuits or when the per-job
//! [`EngineReport`](crate::EngineReport) timings are wanted.

use std::collections::BTreeMap;

use circuit::{Circuit, OpKind};
use qmath::RngSeed;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::channels::ArityChannel;
use crate::engine::{ExecutionEngine, SeedPolicy};
use crate::noise_model::NoiseModel;
use crate::precompiled::{
    apply_channel_1q, apply_channel_2q, op_mat2, op_mat4, FusionPolicy, PrecompiledCircuit,
};
use crate::statevector::StateVector;

/// Error returned by [`Counts::merge`] when the two histograms cover
/// different register sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountsMismatch {
    /// Qubit count of the histogram being merged into.
    pub left: usize,
    /// Qubit count of the histogram being merged from.
    pub right: usize,
}

impl std::fmt::Display for CountsMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge counts over {} qubits into counts over {} qubits",
            self.right, self.left
        )
    }
}

impl std::error::Error for CountsMismatch {}

/// Measurement outcome histogram: basis index → number of shots.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counts {
    counts: BTreeMap<usize, usize>,
    num_qubits: usize,
}

impl Counts {
    /// Creates an empty histogram for an `n`-qubit register.
    pub fn new(num_qubits: usize) -> Self {
        Counts {
            counts: BTreeMap::new(),
            num_qubits,
        }
    }

    /// Records one observation of `basis_index`.
    pub fn record(&mut self, basis_index: usize) {
        *self.counts.entry(basis_index).or_insert(0) += 1;
    }

    /// Number of qubits measured.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total number of shots recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Count for one basis index.
    pub fn count(&self, basis_index: usize) -> usize {
        *self.counts.get(&basis_index).unwrap_or(&0)
    }

    /// Iterates over `(basis_index, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Adds every observation of `other` into this histogram (the engine uses
    /// this to combine per-worker shard results).
    ///
    /// Merging is commutative and associative, so the order in which partial
    /// histograms arrive cannot be observed in the result.
    pub fn merge(&mut self, other: &Counts) -> Result<(), CountsMismatch> {
        if self.num_qubits != other.num_qubits {
            return Err(CountsMismatch {
                left: self.num_qubits,
                right: other.num_qubits,
            });
        }
        for (basis_index, count) in other.iter() {
            *self.counts.entry(basis_index).or_insert(0) += count;
        }
        Ok(())
    }

    /// True when `basis_index` addresses a state of this register.
    fn in_range(&self, basis_index: usize) -> bool {
        self.num_qubits >= usize::BITS as usize || (basis_index >> self.num_qubits) == 0
    }

    /// Empirical probability of a basis index.
    ///
    /// Out-of-range indices (`≥ 2^num_qubits`) have probability 0.0; the call
    /// never panics.
    pub fn probability(&self, basis_index: usize) -> f64 {
        if !self.in_range(basis_index) {
            return 0.0;
        }
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(basis_index) as f64 / total as f64
        }
    }

    /// The big-endian bitstring of a basis index, e.g. `"010"`, always
    /// zero-padded to exactly `num_qubits` characters.
    ///
    /// The call never panics: bits beyond the register (out-of-range indices)
    /// are truncated, and qubits beyond the index width read as `'0'`.
    pub fn bitstring(&self, basis_index: usize) -> String {
        (0..self.num_qubits)
            .map(|q| {
                let shift = self.num_qubits - 1 - q;
                let bit = if shift < usize::BITS as usize {
                    (basis_index >> shift) & 1
                } else {
                    0
                };
                if bit == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

/// Noiseless execution helpers.
pub struct IdealSimulator;

impl IdealSimulator {
    /// Runs the circuit on `|0…0⟩` and returns the final state (measurements
    /// and barriers are ignored).
    pub fn final_state(circuit: &Circuit) -> StateVector {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        for op in circuit.iter() {
            match op.kind() {
                OpKind::Unitary1Q { matrix, .. } => {
                    state.apply_one_qubit(&op_mat2(matrix), op.qubits()[0]);
                }
                OpKind::Unitary2Q { matrix, .. } => {
                    state.apply_two_qubit(&op_mat4(matrix), op.qubits()[0], op.qubits()[1]);
                }
                OpKind::Measure | OpKind::Barrier => {}
            }
        }
        state
    }

    /// Ideal output probability distribution of the circuit.
    pub fn probabilities(circuit: &Circuit) -> Vec<f64> {
        IdealSimulator::final_state(circuit).probabilities()
    }

    /// Samples `shots` measurements from the ideal distribution.
    ///
    /// This is a single-job wrapper over the
    /// [`ExecutionEngine`]: the circuit is lowered with unrestricted gate
    /// fusion (no channels exist on the ideal path), the final state is
    /// computed once and sampling is sharded across worker threads, with
    /// per-shard seed streams keeping the result independent of the thread
    /// count.
    pub fn sample(circuit: &Circuit, shots: usize, seed: RngSeed) -> Counts {
        let pre = PrecompiledCircuit::ideal_with_fusion(circuit, FusionPolicy::Safe);
        ExecutionEngine::new()
            .run_precompiled(&pre, shots, seed)
            .counts
    }
}

/// Monte-Carlo trajectory simulator with a device noise model.
pub struct NoisySimulator {
    noise: NoiseModel,
}

impl NoisySimulator {
    /// Creates a simulator for the given noise model.
    pub fn new(noise: NoiseModel) -> Self {
        NoisySimulator { noise }
    }

    /// The noise model in use.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Lowers `circuit` under this simulator's noise model once. Reuse the
    /// result with [`ExecutionEngine::run_precompiled`]
    /// when the same circuit is executed repeatedly.
    ///
    /// The lowering is deliberately **unfused** so that
    /// [`NoisySimulator::run`]'s bit-exact match with the historical
    /// single-threaded implementation holds by construction; use
    /// [`PrecompiledCircuit::with_fusion`](crate::PrecompiledCircuit::with_fusion)
    /// (or the engine, whose default is [`FusionPolicy::Safe`]) for the fused
    /// lowering — `Safe` fusion leaves counts bit-identical anyway.
    pub fn precompile(&self, circuit: &Circuit) -> PrecompiledCircuit {
        PrecompiledCircuit::new(circuit, &self.noise)
    }

    /// Runs `shots` noisy trajectories of `circuit` and returns the measured
    /// counts. Each trajectory applies the circuit's unitaries interleaved with
    /// sampled Kraus operators, then samples one measurement outcome and
    /// applies readout error.
    ///
    /// This is a single-job wrapper over the
    /// [`ExecutionEngine`]: the circuit's matrices and
    /// Kraus channels are lowered once (instead of once per shot) and the shot
    /// loop is sharded across worker threads. The
    /// [`SeedPolicy::PerShot`] stream derivation
    /// keeps the counts **bit-identical** to the historical single-threaded
    /// implementation for any `(circuit, shots, seed)`.
    pub fn run(&self, circuit: &Circuit, shots: usize, seed: RngSeed) -> Counts {
        let pre = self.precompile(circuit);
        ExecutionEngine::builder()
            .seed_policy(SeedPolicy::PerShot)
            .build()
            .expect("default engine configuration is valid")
            .run_precompiled(&pre, shots, seed)
            .counts
    }

    /// Runs a single noisy trajectory and returns the (normalized) final state.
    ///
    /// Note: this is the *uncached* reference path — it re-derives each op's
    /// matrices and Kraus channels on every call. It is kept as the naive
    /// baseline for validation and the `sim_engine` benchmark; hot loops
    /// should go through [`NoisySimulator::precompile`] /
    /// [`PrecompiledCircuit::run_trajectory`](crate::PrecompiledCircuit::run_trajectory)
    /// instead.
    pub fn run_trajectory<R: Rng + ?Sized>(&self, circuit: &Circuit, rng: &mut R) -> StateVector {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        for op in circuit.iter() {
            match op.kind() {
                OpKind::Unitary1Q { matrix, .. } => {
                    state.apply_one_qubit(&op_mat2(matrix), op.qubits()[0]);
                }
                OpKind::Unitary2Q { matrix, .. } => {
                    state.apply_two_qubit(&op_mat4(matrix), op.qubits()[0], op.qubits()[1]);
                }
                OpKind::Measure | OpKind::Barrier => {}
            }
            let noise = self.noise.noise_for(op);
            match (&noise.depolarizing, op.qubits()) {
                (Some(ArityChannel::One(channel)), [q]) => {
                    apply_channel_1q(&mut state, channel, *q, rng);
                }
                (Some(ArityChannel::Two(channel)), [q0, q1]) => {
                    apply_channel_2q(&mut state, channel, *q0, *q1, rng);
                }
                (None, _) => {}
                (Some(_), qubits) => unreachable!(
                    "noise_for returned a channel whose arity disagrees with a {}-qubit op",
                    qubits.len()
                ),
            }
            for (q, channel) in &noise.relaxation {
                apply_channel_1q(&mut state, channel, *q, rng);
            }
        }
        state
    }
}

/// Total-variation distance between an empirical distribution (counts) and a
/// reference probability vector.
pub fn total_variation_distance(counts: &Counts, reference: &[f64]) -> f64 {
    let mut tv = 0.0;
    for (idx, p) in reference.iter().enumerate() {
        tv += (counts.probability(idx) - p).abs();
    }
    tv / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Operation;
    use device::DeviceModel;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        c.measure_all();
        c
    }

    #[test]
    fn ideal_bell_probabilities() {
        let p = IdealSimulator::probabilities(&bell_circuit());
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ideal_sampling_matches_probabilities() {
        let counts = IdealSimulator::sample(&bell_circuit(), 4000, RngSeed(1));
        assert_eq!(counts.total(), 4000);
        assert_eq!(counts.count(1) + counts.count(2), 0);
        assert!((counts.probability(0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn noiseless_noisy_simulator_equals_ideal() {
        let device = DeviceModel::ideal(2, 1.0);
        let noise = NoiseModel::noiseless(&device);
        let counts = NoisySimulator::new(noise).run(&bell_circuit(), 500, RngSeed(2));
        assert_eq!(counts.count(1) + counts.count(2), 0);
    }

    #[test]
    fn noisy_simulation_degrades_gracefully() {
        // A moderately noisy device still mostly produces Bell outcomes, but
        // some leakage into |01>/|10> appears.
        let device = DeviceModel::ideal(2, 0.95);
        let mut noise = NoiseModel::from_device(&device);
        noise.with_readout_error = false;
        noise.with_relaxation = false;
        let counts = NoisySimulator::new(noise).run(&bell_circuit(), 2000, RngSeed(3));
        let good = counts.probability(0) + counts.probability(3);
        assert!(good > 0.85, "good fraction = {good}");
        assert!(good < 1.0);
    }

    #[test]
    fn readout_error_flips_bits() {
        // Empty circuit on a device with readout error: outcome should not
        // always be |00>.
        let device = DeviceModel::aspen8(RngSeed(1));
        let noise = NoiseModel::from_device(&device);
        let mut c = Circuit::new(2);
        c.measure_all();
        let counts = NoisySimulator::new(noise).run(&c, 2000, RngSeed(4));
        assert!(counts.count(0) < 2000);
        assert!(counts.probability(0) > 0.75);
    }

    #[test]
    fn deterministic_given_seed() {
        let device = DeviceModel::ideal(2, 0.97);
        let noise = NoiseModel::from_device(&device);
        let sim = NoisySimulator::new(noise);
        let a = sim.run(&bell_circuit(), 100, RngSeed(9));
        let b = sim.run(&bell_circuit(), 100, RngSeed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn counts_merge_sums_observations() {
        let mut a = Counts::new(2);
        a.record(0);
        a.record(3);
        let mut b = Counts::new(2);
        b.record(3);
        b.record(1);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(3), 2);
        assert_eq!(a.count(1), 1);
        // Merging an empty histogram is a no-op.
        a.merge(&Counts::new(2)).unwrap();
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn counts_merge_rejects_register_mismatch() {
        let mut a = Counts::new(2);
        let b = Counts::new(3);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err, CountsMismatch { left: 2, right: 3 });
        assert!(err.to_string().contains("3 qubits"));
    }

    #[test]
    fn probability_and_bitstring_are_panic_free_out_of_range() {
        let mut counts = Counts::new(2);
        counts.record(1);
        // Out-of-range basis index: probability 0, no panic.
        assert_eq!(counts.probability(4), 0.0);
        assert_eq!(counts.probability(usize::MAX), 0.0);
        // Bitstrings are always exactly num_qubits chars, zero-padded.
        assert_eq!(counts.bitstring(0), "00");
        assert_eq!(counts.bitstring(5), "01"); // high bits truncated
        let wide = Counts::new(70);
        let s = wide.bitstring(3);
        assert_eq!(s.len(), 70);
        assert!(s.starts_with('0'));
        assert!(s.ends_with("11"));
    }

    #[test]
    fn counts_helpers() {
        let mut counts = Counts::new(3);
        counts.record(5);
        counts.record(5);
        counts.record(1);
        assert_eq!(counts.total(), 3);
        assert_eq!(counts.count(5), 2);
        assert_eq!(counts.bitstring(5), "101");
        assert!((counts.probability(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(counts.iter().count(), 2);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        // Prepare |1>, wait through many idle windows (via measurement noise),
        // and check the excited population decays.
        let device = DeviceModel::sycamore(RngSeed(11));
        let noise = NoiseModel::from_device(&device);
        let sim = NoisySimulator::new(noise);
        let mut c = Circuit::new(1);
        c.push(Operation::x(0));
        // Long idle: emulate with repeated measurement-duration relaxation by
        // adding many barriers is noise-free; instead add many X pairs (each
        // contributes gate-duration relaxation).
        for _ in 0..50 {
            c.push(Operation::x(0));
            c.push(Operation::x(0));
        }
        c.measure_all();
        let counts = sim.run(&c, 1000, RngSeed(12));
        let p1 = counts.probability(1);
        assert!(p1 < 0.99, "p1 = {p1}");
        assert!(p1 > 0.5, "p1 = {p1}");
    }

    #[test]
    fn total_variation_distance_bounds() {
        let counts = IdealSimulator::sample(&bell_circuit(), 2000, RngSeed(5));
        let ideal = IdealSimulator::probabilities(&bell_circuit());
        let tv = total_variation_distance(&counts, &ideal);
        assert!(tv < 0.05, "tv = {tv}");
        let uniform = vec![0.25; 4];
        let tv_uniform = total_variation_distance(&counts, &uniform);
        assert!(tv_uniform > 0.4);
    }
}
