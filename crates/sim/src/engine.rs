//! The parallel batched-shot execution engine.
//!
//! Monte-Carlo trajectory sampling is embarrassingly parallel: every shot is
//! an independent random realization of the same noisy circuit. The
//! [`ExecutionEngine`] exploits that in two steps:
//!
//! 1. each job's circuit is lowered **once** into a
//!    [`PrecompiledCircuit`] — per-op `Mat2`/`Mat4` kernels plus prebuilt,
//!    completeness-checked Kraus channels — removing the ~shots× redundant
//!    channel construction of the naive per-shot path; under the default
//!    [`FusionPolicy::Safe`] adjacent ops are additionally **fused** into
//!    single kernels wherever no RNG-consuming channel separates them (see
//!    [`crate::precompiled`]), and
//! 2. the shot loop is split into fixed-size **shards** distributed over
//!    scoped worker threads.
//!
//! # Shot-parallel vs amplitude-parallel regimes
//!
//! For small registers the engine shards *shots* across its worker pool —
//! many cheap independent trajectories. At
//! [`PARALLEL_SWEEP_MIN_QUBITS`]
//! qubits and above, a single state no longer fits comfortably in cache and
//! one trajectory dominates the cost, so the engine flips regime: shots run
//! sequentially and each *amplitude sweep* is split across the same worker
//! budget instead (see
//! [`StateVector::apply_one_qubit_threaded`](crate::statevector::StateVector::apply_one_qubit_threaded)).
//! Both regimes are bit-identical to the serial path, so the switch is purely
//! a scheduling decision.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of thread count**. Shard boundaries
//! depend only on the configured [shot-chunk size](EngineBuilder::shot_chunk_size),
//! never on how many workers happen to run, and every shard derives its own
//! ChaCha stream from `(seed, shard_index)` (the [`SeedPolicy::PerShard`]
//! default) or `(seed, shot_index)` ([`SeedPolicy::PerShot`], which reproduces
//! the historical single-threaded `NoisySimulator::run` bit for bit). Merged
//! histograms are sums, so the merge order cannot be observed either.
//!
//! # Example
//!
//! ```
//! use circuit::{Circuit, Operation};
//! use device::DeviceModel;
//! use qmath::RngSeed;
//! use sim::{ExecutionEngine, NoiseModel, SimJob};
//!
//! let mut bell = Circuit::new(2);
//! bell.push(Operation::h(0));
//! bell.push(Operation::cnot(0, 1));
//! bell.measure_all();
//!
//! let noise = NoiseModel::from_device(&DeviceModel::ideal(2, 0.99));
//! let engine = ExecutionEngine::builder().threads(4).build().unwrap();
//! let jobs = vec![
//!     SimJob::noisy(bell.clone(), noise, 400, RngSeed(7)),
//!     SimJob::ideal(bell, 400, RngSeed(8)),
//! ];
//! let results = engine.run_batch(&jobs);
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].counts.total(), 400);
//! assert!(results[1].report.shots_per_sec() > 0.0);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use circuit::Circuit;
use parking_lot::Mutex;
use qmath::RngSeed;
use serde::{Deserialize, Serialize};
use telemetry::{Collector, Span, SpanGuard, SpanId};

use crate::noise_model::NoiseModel;
use crate::precompiled::{FusionPolicy, PrecompiledCircuit};
use crate::runner::Counts;
use crate::statevector::{MeasurementSampler, PARALLEL_SWEEP_MIN_QUBITS};

/// Default number of shots per shard.
///
/// Small enough that typical figure workloads (hundreds to tens of thousands
/// of shots) split into many more shards than cores, large enough that shard
/// bookkeeping is negligible next to a trajectory.
pub const DEFAULT_SHOT_CHUNK: usize = 64;

/// Why an [`EngineBuilder`] configuration could not produce an engine.
///
/// Misconfiguration surfaces as a typed error at [`EngineBuilder::build`]
/// instead of a panic, so a long-running service can reject one bad
/// engine-configuration request without dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineConfigError {
    /// `shot_chunk_size(0)` was requested; shards must hold at least one shot.
    ZeroShotChunk,
    /// `threads(0)` was requested; the worker pool needs at least one thread.
    ZeroThreads,
    /// `parallel_sweep_min_qubits(0)` was requested; a zero threshold would
    /// claim even a one-qubit register is worth scoped sweep workers.
    ZeroSweepThreshold,
}

impl std::fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineConfigError::ZeroShotChunk => {
                write!(f, "shot chunk size must be positive (got 0)")
            }
            EngineConfigError::ZeroThreads => {
                write!(f, "worker thread count must be positive (got 0)")
            }
            EngineConfigError::ZeroSweepThreshold => {
                write!(f, "parallel-sweep qubit threshold must be positive (got 0)")
            }
        }
    }
}

impl std::error::Error for EngineConfigError {}

/// How per-shot randomness is derived from a job's seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SeedPolicy {
    /// One ChaCha stream per **shard**, derived from `(seed, shard_index)`;
    /// shots within the shard consume it sequentially. The cheapest policy
    /// (one RNG initialization per chunk) and the engine default.
    #[default]
    PerShard,
    /// One ChaCha stream per **shot**, derived from `(seed, shot_index)`.
    /// Reproduces the historical single-threaded `NoisySimulator::run`
    /// bit for bit; use it when comparing against pre-engine pinned results.
    PerShot,
}

/// One unit of simulation work: a circuit, its noise, a shot budget and the
/// seed its randomness derives from.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// The circuit to execute (measurement ops are ignored; the full register
    /// is sampled at the end of each trajectory).
    pub circuit: Circuit,
    /// Noise model, or `None` for ideal execution.
    pub noise: Option<NoiseModel>,
    /// Number of measurement shots.
    pub shots: usize,
    /// Seed of this job's randomness.
    pub seed: RngSeed,
}

impl SimJob {
    /// A noisy trajectory-sampling job.
    pub fn noisy(circuit: Circuit, noise: NoiseModel, shots: usize, seed: RngSeed) -> Self {
        SimJob {
            circuit,
            noise: Some(noise),
            shots,
            seed,
        }
    }

    /// An ideal (noise-free) sampling job.
    pub fn ideal(circuit: Circuit, shots: usize, seed: RngSeed) -> Self {
        SimJob {
            circuit,
            noise: None,
            shots,
            seed,
        }
    }
}

/// What one job cost, mirroring the compiler crate's per-stage
/// `CompileReport`: lowering time, simulation time and the achieved
/// throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    /// Shots executed.
    pub shots: usize,
    /// Shards the shot loop was split into.
    pub shards: usize,
    /// Worker threads that served the job: the shot-loop workers (capped at
    /// the shard count) or, in the amplitude-parallel regime, the per-sweep
    /// worker count.
    pub threads: usize,
    /// Source ops eliminated by gate fusion during lowering (0 under
    /// [`FusionPolicy::Off`]).
    pub fused_ops: usize,
    /// Wall-clock time to lower the circuit into a [`PrecompiledCircuit`].
    pub precompile: Duration,
    /// Wall-clock time of the sharded shot loop.
    pub simulate: Duration,
}

impl EngineReport {
    /// Total wall-clock time for the job.
    pub fn total_duration(&self) -> Duration {
        self.precompile + self.simulate
    }

    /// Achieved throughput in shots per second (0 when nothing ran).
    /// Equivalent to [`EngineReport::simulate_shots_per_sec`].
    pub fn shots_per_sec(&self) -> f64 {
        self.simulate_shots_per_sec()
    }

    /// Throughput of the shot loop alone, in shots per second (0 when
    /// nothing ran). Computed from the simulate span only — precompile time
    /// is deliberately excluded, so a job whose lowering dominates (deep
    /// circuit, few shots) still reports the true sampling rate.
    pub fn simulate_shots_per_sec(&self) -> f64 {
        let secs = self.simulate.as_secs_f64();
        if secs > 0.0 {
            self.shots as f64 / secs
        } else {
            0.0
        }
    }
}

/// Result of one [`SimJob`]: the merged measurement histogram plus the
/// engine's cost report.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Measurement counts, merged across all shards.
    pub counts: Counts,
    /// Timings and throughput for this job.
    pub report: EngineReport,
    /// Findings of the static artifact verifier, when the engine was built
    /// with [`EngineBuilder::validate`] enabled (empty otherwise). Findings
    /// never abort the job — gate on
    /// [`has_verify_errors`](SimResult::has_verify_errors).
    pub diagnostics: Vec<verify::Diagnostic>,
}

impl SimResult {
    /// True when validation reported at least one error-level finding.
    pub fn has_verify_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == verify::Severity::Error)
    }
}

/// Builder for an [`ExecutionEngine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    threads: Option<usize>,
    shot_chunk_size: usize,
    seed_policy: SeedPolicy,
    fusion: FusionPolicy,
    validate: bool,
    parallel_sweep_min_qubits: usize,
    telemetry: Option<Arc<Collector>>,
}

impl EngineBuilder {
    /// Caps the worker-thread pool at `threads`. Defaults to the machine's
    /// available parallelism. Thread count never changes results — only how
    /// fast they arrive. A zero cap is rejected as
    /// [`EngineConfigError::ZeroThreads`] at [`EngineBuilder::build`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the number of shots per shard (default
    /// [`DEFAULT_SHOT_CHUNK`]). Under [`SeedPolicy::PerShard`] this value is
    /// part of the deterministic result: the same seed with a different chunk
    /// size derives different shard streams. A zero size is rejected as
    /// [`EngineConfigError::ZeroShotChunk`] at [`EngineBuilder::build`].
    pub fn shot_chunk_size(mut self, size: usize) -> Self {
        self.shot_chunk_size = size;
        self
    }

    /// Chooses how shot randomness derives from the job seed (default
    /// [`SeedPolicy::PerShard`]).
    pub fn seed_policy(mut self, policy: SeedPolicy) -> Self {
        self.seed_policy = policy;
        self
    }

    /// Chooses the gate-fusion policy jobs are lowered under (default
    /// [`FusionPolicy::Safe`], which never changes counts — see
    /// [`crate::precompiled`]).
    pub fn fusion(mut self, policy: FusionPolicy) -> Self {
        self.fusion = policy;
        self
    }

    /// Enables validate-before-run (default off): every job's lowered circuit
    /// is statically verified before the shot loop — kernel unitarity, Kraus
    /// completeness, and, when fusion is on, equivalence and RNG-draw-order
    /// fidelity against a freshly lowered unfused baseline. Under
    /// [`FusionPolicy::Aggressive`] (whose reordering makes counts
    /// *distributionally* rather than bit-wise equal) an additional
    /// statistical cross-check runs a small seed-derived sample under both
    /// `Safe` and `Aggressive` lowering and holds their histograms to the
    /// `fusion/tvd-bound` rule's analytic distance bound. Findings land in
    /// [`SimResult::diagnostics`]; they never abort the job.
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// Sets the register width (in qubits) at which the engine flips from
    /// shot-parallel to amplitude-parallel scheduling (default
    /// [`PARALLEL_SWEEP_MIN_QUBITS`]). Scheduling only — results are
    /// bit-identical for any threshold. The `bench` crate's calibration sweep
    /// measures the actual crossover on the host so deployments can pin an
    /// empirically sized value. A zero threshold is rejected as
    /// [`EngineConfigError::ZeroSweepThreshold`] at [`EngineBuilder::build`].
    pub fn parallel_sweep_min_qubits(mut self, qubits: usize) -> Self {
        self.parallel_sweep_min_qubits = qubits;
        self
    }

    /// Attaches a telemetry collector: each job records precompile and
    /// simulate spans (with qubit count, fused-op and regime attributes) and
    /// one span per shot shard, plus latency histograms in the collector's
    /// registry. Use [`ExecutionEngine::run_job_in_span`] to parent the
    /// spans under a caller's job span. Default: no collector — the engine
    /// stays telemetry-free at zero cost.
    pub fn telemetry(mut self, collector: Arc<Collector>) -> Self {
        self.telemetry = Some(collector);
        self
    }

    /// Builds the engine, validating the configuration.
    pub fn build(self) -> Result<ExecutionEngine, EngineConfigError> {
        if self.shot_chunk_size == 0 {
            return Err(EngineConfigError::ZeroShotChunk);
        }
        if self.threads == Some(0) {
            return Err(EngineConfigError::ZeroThreads);
        }
        if self.parallel_sweep_min_qubits == 0 {
            return Err(EngineConfigError::ZeroSweepThreshold);
        }
        Ok(ExecutionEngine {
            threads: self.threads.unwrap_or_else(default_threads).max(1),
            shot_chunk_size: self.shot_chunk_size,
            seed_policy: self.seed_policy,
            fusion: self.fusion,
            validate: self.validate,
            parallel_sweep_min_qubits: self.parallel_sweep_min_qubits,
            telemetry: self.telemetry,
        })
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The parallel batched-shot execution engine. See the [module
/// docs](crate::engine) for the determinism guarantee.
///
/// ```
/// use sim::{ExecutionEngine, SeedPolicy};
///
/// // Defaults: all available cores, 64-shot shards, per-shard streams.
/// let engine = ExecutionEngine::new();
/// assert!(engine.threads() >= 1);
///
/// // Fully configured (misuse is a typed error, not a panic):
/// let engine = ExecutionEngine::builder()
///     .threads(8)
///     .shot_chunk_size(128)
///     .seed_policy(SeedPolicy::PerShard)
///     .build()
///     .unwrap();
/// assert_eq!(engine.threads(), 8);
/// assert!(ExecutionEngine::builder().shot_chunk_size(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionEngine {
    threads: usize,
    shot_chunk_size: usize,
    seed_policy: SeedPolicy,
    fusion: FusionPolicy,
    validate: bool,
    parallel_sweep_min_qubits: usize,
    telemetry: Option<Arc<Collector>>,
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        // Built directly: every default is statically valid, so there is no
        // fallible configuration step to unwrap.
        ExecutionEngine {
            threads: default_threads().max(1),
            shot_chunk_size: DEFAULT_SHOT_CHUNK,
            seed_policy: SeedPolicy::default(),
            fusion: FusionPolicy::default(),
            validate: false,
            parallel_sweep_min_qubits: PARALLEL_SWEEP_MIN_QUBITS,
            telemetry: None,
        }
    }
}

impl ExecutionEngine {
    /// An engine with default settings (all cores, [`DEFAULT_SHOT_CHUNK`],
    /// [`SeedPolicy::PerShard`]).
    pub fn new() -> Self {
        ExecutionEngine::default()
    }

    /// Starts building a configured engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            threads: None,
            shot_chunk_size: DEFAULT_SHOT_CHUNK,
            seed_policy: SeedPolicy::default(),
            fusion: FusionPolicy::default(),
            validate: false,
            parallel_sweep_min_qubits: PARALLEL_SWEEP_MIN_QUBITS,
            telemetry: None,
        }
    }

    /// The worker-thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Shots per shard.
    pub fn shot_chunk_size(&self) -> usize {
        self.shot_chunk_size
    }

    /// The seed policy.
    pub fn seed_policy(&self) -> SeedPolicy {
        self.seed_policy
    }

    /// The gate-fusion policy jobs are lowered under.
    pub fn fusion(&self) -> FusionPolicy {
        self.fusion
    }

    /// Whether jobs are statically verified before their shot loop (see
    /// [`EngineBuilder::validate`]).
    pub fn validate(&self) -> bool {
        self.validate
    }

    /// The register width at which scheduling flips from shot-parallel to
    /// amplitude-parallel (see [`EngineBuilder::parallel_sweep_min_qubits`]).
    pub fn parallel_sweep_min_qubits(&self) -> usize {
        self.parallel_sweep_min_qubits
    }

    /// Runs a batch of jobs and returns one [`SimResult`] per job, in order.
    ///
    /// Each job is lowered once and its shot loop sharded across the worker
    /// pool; jobs run back to back so per-job wall-clock timings stay
    /// meaningful. When consecutive jobs lower to the *same* noiseless
    /// precompiled circuit (a common batch shape: one circuit swept over
    /// seeds), the cached final state's measurement table is reused across
    /// jobs — noiseless trajectories consume no randomness, so the table is
    /// seed-independent and the reuse is exact.
    pub fn run_batch(&self, jobs: &[SimJob]) -> Vec<SimResult> {
        let mut cache: Option<NoiselessCache> = None;
        jobs.iter()
            .map(|job| self.run_job_cached(job, &mut cache, SpanId::NONE))
            .collect()
    }

    /// Runs a single job.
    pub fn run_job(&self, job: &SimJob) -> SimResult {
        self.run_job_cached(job, &mut None, SpanId::NONE)
    }

    /// Like [`ExecutionEngine::run_job`], but records the precompile,
    /// simulate and shard telemetry spans as children of `parent` (the
    /// caller's job span). With no collector configured — or a disabled one —
    /// this is exactly `run_job`.
    pub fn run_job_in_span(&self, job: &SimJob, parent: SpanId) -> SimResult {
        self.run_job_cached(job, &mut None, parent)
    }

    fn run_job_cached(
        &self,
        job: &SimJob,
        cache: &mut Option<NoiselessCache>,
        parent: SpanId,
    ) -> SimResult {
        let mut precompile_span = Span::enter_child(self.telemetry.as_ref(), "precompile", parent);
        let pre = match &job.noise {
            Some(noise) => PrecompiledCircuit::with_fusion(&job.circuit, noise, self.fusion),
            None => PrecompiledCircuit::ideal_with_fusion(&job.circuit, self.fusion),
        };
        let diagnostics = if self.validate {
            // The fusion rules need the unfused stream to compare against;
            // under FusionPolicy::Off the lowered stream is its own baseline
            // and only the per-op rules (unitarity, completeness) apply.
            let baseline = match self.fusion {
                FusionPolicy::Safe | FusionPolicy::Aggressive => Some(match &job.noise {
                    Some(noise) => PrecompiledCircuit::new(&job.circuit, noise),
                    None => PrecompiledCircuit::ideal(&job.circuit),
                }),
                FusionPolicy::Off => None,
            };
            let mut out = pre.verify_artifact(baseline.as_ref()).into_diagnostics();
            // Aggressive fusion reorders RNG draws, so counts are only
            // *distributionally* equal to Safe — cross-check a small sample
            // statistically instead of bit-wise.
            if self.fusion == FusionPolicy::Aggressive {
                out.extend(self.tvd_check(job, &pre));
            }
            out
        } else {
            Vec::new()
        };
        precompile_span.set_attr("qubits", pre.num_qubits() as u64);
        precompile_span.set_attr("fused_ops", pre.fused_ops() as u64);
        let precompile = precompile_span.finish();
        let mut result =
            self.run_precompiled_in_span(&pre, job.shots, job.seed, precompile, cache, parent);
        result.diagnostics = diagnostics;
        result
    }

    /// The statistical half of Aggressive-fusion validation: runs a small
    /// sample (at most [`TVD_CHECK_MAX_SHOTS`] shots, seeded off the job seed
    /// so the check never perturbs the job's own stream) under both `Safe`
    /// and `Aggressive` lowering and holds the two histograms to the
    /// `fusion/tvd-bound` rule's analytic bound.
    fn tvd_check(&self, job: &SimJob, aggressive: &PrecompiledCircuit) -> Vec<verify::Diagnostic> {
        let shots = job.shots.min(TVD_CHECK_MAX_SHOTS);
        let safe = match &job.noise {
            Some(noise) => PrecompiledCircuit::with_fusion(&job.circuit, noise, FusionPolicy::Safe),
            None => PrecompiledCircuit::ideal_with_fusion(&job.circuit, FusionPolicy::Safe),
        };
        let seed = job.seed.child(TVD_CHECK_SALT);
        let counts_a: Vec<(usize, usize)> = self
            .run_precompiled(&safe, shots, seed)
            .counts
            .iter()
            .collect();
        let counts_b: Vec<(usize, usize)> = self
            .run_precompiled(aggressive, shots, seed)
            .counts
            .iter()
            .collect();
        let artifact = verify::DistributionArtifact {
            num_qubits: aggressive.num_qubits(),
            label_a: "safe-fusion sample",
            label_b: "aggressive-fusion sample",
            counts_a: &counts_a,
            counts_b: &counts_b,
        };
        verify::Verifier::statistical()
            .run(&verify::Artifact::Distributions(&artifact))
            .into_diagnostics()
    }

    /// Runs `shots` shots of an already-lowered circuit. Use this to amortize
    /// lowering across repeated runs of the same circuit (the single-job
    /// wrappers in [`crate::runner`] and the benches do).
    pub fn run_precompiled(
        &self,
        pre: &PrecompiledCircuit,
        shots: usize,
        seed: RngSeed,
    ) -> SimResult {
        self.run_precompiled_in_span(pre, shots, seed, Duration::ZERO, &mut None, SpanId::NONE)
    }

    fn run_precompiled_in_span(
        &self,
        pre: &PrecompiledCircuit,
        shots: usize,
        seed: RngSeed,
        precompile: Duration,
        cache: &mut Option<NoiselessCache>,
        parent: SpanId,
    ) -> SimResult {
        // The simulate span is the single timing source for the report, so
        // the split stays exact with telemetry disabled.
        let mut span = Span::enter_child(self.telemetry.as_ref(), "simulate", parent);
        span.set_attr("shots", shots as u64);
        span.set_attr("qubits", pre.num_qubits() as u64);
        span.set_attr("fused_ops", pre.fused_ops() as u64);
        let (counts, shards, threads) = self.sample_shots(pre, shots, seed, cache, &mut span);
        let simulate = span.finish();
        if let Some(collector) = self.telemetry.as_ref().filter(|c| c.enabled()) {
            collector
                .histogram("engine.precompile_micros")
                .record(precompile.as_micros() as u64);
            collector
                .histogram("engine.simulate_micros")
                .record(simulate.as_micros() as u64);
            collector.counter("engine.shots").add(shots as u64);
        }
        SimResult {
            counts,
            report: EngineReport {
                shots,
                shards,
                threads,
                fused_ops: pre.fused_ops(),
                precompile,
                simulate,
            },
            diagnostics: Vec::new(),
        }
    }

    /// The sharded shot loop. Returns `(counts, shards, worker threads)`.
    fn sample_shots(
        &self,
        pre: &PrecompiledCircuit,
        shots: usize,
        seed: RngSeed,
        cache: &mut Option<NoiselessCache>,
        span: &mut SpanGuard,
    ) -> (Counts, usize, usize) {
        let mut counts = Counts::new(pre.num_qubits());
        if shots == 0 {
            return (counts, 0, 0);
        }
        let chunk = self.shot_chunk_size;
        let shards = shots.div_ceil(chunk);
        // Regime selection: below the sweep threshold the worker budget goes
        // to sharding shots; at or above it one trajectory dominates, so shots
        // run sequentially and the budget splits each amplitude sweep instead.
        // The flip consults more than the qubit count: a *noisy* wide job on
        // a host without real parallelism pays the per-sweep scoped-thread
        // setup with nothing to run it on (the bench suite measured the
        // "parallel" unfused sweep slower than serial there), and its channel
        // probe work doesn't split across amplitudes at all — so it keeps
        // shot sharding, which pays the spawn cost once per shard instead of
        // once per sweep. Either way the result is bit-identical to the fully
        // serial loop.
        let wide = pre.num_qubits() >= self.parallel_sweep_min_qubits;
        let amp_threads =
            if wide && self.threads > 1 && (pre.is_noiseless() || default_threads() > 1) {
                self.threads
            } else {
                1
            };
        let workers = if amp_threads > 1 {
            1
        } else {
            self.threads.min(shards)
        };
        span.set_tag(
            "regime",
            if amp_threads > 1 {
                "amplitude_parallel"
            } else {
                "shot_parallel"
            },
        );
        // Noiseless trajectories are deterministic and consume no randomness,
        // so the state is evolved once and every shot only samples from it
        // (via a cumulative table + binary search instead of a per-shot
        // linear scan). The per-shot/per-shard RNG draws are unchanged, which
        // keeps this fast path bit-identical to re-running the trajectory
        // every shot. The table is cached across batch jobs that lower to the
        // same circuit (it is seed-independent — no randomness is consumed
        // building it).
        if pre.is_noiseless() {
            let hit = cache.as_ref().is_some_and(|c| c.pre == *pre);
            if !hit {
                let mut rng = seed.rng();
                let state =
                    pre.run_trajectory_with(&mut rng, amp_threads, self.parallel_sweep_min_qubits);
                *cache = Some(NoiselessCache {
                    pre: pre.clone(),
                    sampler: state.measurement_sampler(),
                });
            }
        }
        let cached = if pre.is_noiseless() {
            cache.as_ref().map(|c| &c.sampler)
        } else {
            None
        };
        let policy = self.seed_policy;
        let min_parallel = self.parallel_sweep_min_qubits;
        let collector = self.telemetry.as_ref();
        let simulate_id = span.id();
        let run_shard = |shard: usize, local: &mut Counts| {
            let start = shard * chunk;
            let end = (start + chunk).min(shots);
            // Recorded on drop; shard spans attach to the simulate span by
            // explicit parent id, which is what keeps the nesting correct
            // when this closure runs on a scoped worker thread.
            let mut shard_span = Span::enter_child(collector, "shard", simulate_id);
            shard_span.set_attr("shard", shard as u64);
            shard_span.set_attr("shots", (end - start) as u64);
            match policy {
                SeedPolicy::PerShard => {
                    let mut rng = seed.child(shard as u64).rng();
                    for _ in start..end {
                        local.record(sample_one(pre, cached, amp_threads, min_parallel, &mut rng));
                    }
                }
                SeedPolicy::PerShot => {
                    for shot in start..end {
                        let mut rng = seed.child(shot as u64).rng();
                        local.record(sample_one(pre, cached, amp_threads, min_parallel, &mut rng));
                    }
                }
            }
        };
        if workers <= 1 {
            for shard in 0..shards {
                run_shard(shard, &mut counts);
            }
            return (counts, shards, amp_threads.max(1));
        }
        for local in run_sharded(pre.num_qubits(), shards, workers, &run_shard) {
            counts
                .merge(&local)
                .expect("workers sample the same register");
        }
        (counts, shards, workers)
    }
}

/// Maximum shot count of the Aggressive-validation statistical cross-check
/// (see [`EngineBuilder::validate`]): enough mass for the `fusion/tvd-bound`
/// marginals to be meaningful, small enough that validation stays a fraction
/// of a production shot loop.
const TVD_CHECK_MAX_SHOTS: usize = 512;

/// Seed salt deriving the cross-check's RNG stream from the job seed, so the
/// check never perturbs (or reuses) the job's own shard/shot streams.
const TVD_CHECK_SALT: u64 = 0x7fd_c4ec;

/// Batch-scoped reuse of the noiseless fast path's measurement table (see
/// [`ExecutionEngine::run_batch`]): the lowered circuit the table was built
/// from, and the table itself.
struct NoiselessCache {
    pre: PrecompiledCircuit,
    sampler: MeasurementSampler,
}

/// Runs `shards` calls of `run_shard` over `workers` scoped threads pulling
/// from an atomic shard cursor, and returns the per-worker partial histograms
/// (histogram addition is commutative, so the completion order cannot leak
/// into the merged result).
///
/// Panic isolation: shared state lives behind a non-poisoning
/// [`parking_lot::Mutex`], a panicking shard worker stops the remaining
/// workers from pulling further shards, and the **original** panic payload is
/// re-raised exactly once on the calling thread — not the misleading
/// second-hand "a scoped thread panicked" that a poisoned `std::sync::Mutex`
/// used to surface. A caller that wraps the engine in
/// [`std::panic::catch_unwind`] therefore observes the true failure and no
/// shared state is left poisoned for subsequent jobs.
fn run_sharded<F>(num_qubits: usize, shards: usize, workers: usize, run_shard: &F) -> Vec<Counts>
where
    F: Fn(usize, &mut Counts) + Sync,
{
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let merged: Mutex<Vec<Counts>> = Mutex::new(Vec::with_capacity(workers));
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local = Counts::new(num_qubits);
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let shard = cursor.fetch_add(1, Ordering::Relaxed);
                    if shard >= shards {
                        break;
                    }
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| run_shard(shard, &mut local)))
                    {
                        abort.store(true, Ordering::Relaxed);
                        let mut slot = first_panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        return;
                    }
                }
                merged.lock().push(local);
            });
        }
    });
    if let Some(payload) = first_panic.into_inner() {
        resume_unwind(payload);
    }
    merged.into_inner()
}

/// One shot: either a full noisy trajectory (with amplitude sweeps split over
/// `amp_threads` workers), or a binary-search sample from the cached noiseless
/// final state (identical RNG draws — see the fast-path comment in
/// [`ExecutionEngine`]'s shot loop).
fn sample_one<R: rand::Rng + ?Sized>(
    pre: &PrecompiledCircuit,
    cached: Option<&MeasurementSampler>,
    amp_threads: usize,
    min_parallel_qubits: usize,
    rng: &mut R,
) -> usize {
    match cached {
        Some(sampler) => {
            let outcome = sampler.sample(rng);
            pre.apply_readout_error(outcome, rng)
        }
        None => pre.sample_shot_with(rng, amp_threads, min_parallel_qubits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Operation;
    use device::DeviceModel;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        c.measure_all();
        c
    }

    fn noisy_job(shots: usize, seed: u64) -> SimJob {
        let device = DeviceModel::ideal(2, 0.95);
        SimJob::noisy(
            bell_circuit(),
            NoiseModel::from_device(&device),
            shots,
            RngSeed(seed),
        )
    }

    fn engine_with(threads: usize) -> ExecutionEngine {
        ExecutionEngine::builder().threads(threads).build().unwrap()
    }

    #[test]
    fn counts_are_bit_identical_across_thread_counts() {
        let job = noisy_job(700, 11);
        let reference = engine_with(1).run_job(&job);
        for threads in [2usize, 3, 8] {
            let parallel = engine_with(threads).run_job(&job);
            assert_eq!(parallel.counts, reference.counts, "threads = {threads}");
        }
    }

    #[test]
    fn per_shot_policy_is_also_thread_count_invariant() {
        let job = noisy_job(300, 13);
        let mk = |threads| {
            ExecutionEngine::builder()
                .threads(threads)
                .seed_policy(SeedPolicy::PerShot)
                .build()
                .unwrap()
                .run_job(&job)
        };
        assert_eq!(mk(1).counts, mk(8).counts);
    }

    #[test]
    fn chunk_size_changes_per_shard_streams_but_not_per_shot() {
        let job = noisy_job(256, 17);
        let with_chunk = |chunk, policy| {
            ExecutionEngine::builder()
                .threads(4)
                .shot_chunk_size(chunk)
                .seed_policy(policy)
                .build()
                .unwrap()
                .run_job(&job)
                .counts
        };
        // Per-shot streams depend only on the global shot index.
        assert_eq!(
            with_chunk(32, SeedPolicy::PerShot),
            with_chunk(64, SeedPolicy::PerShot)
        );
        // Both chunkings are valid samples of the same distribution.
        assert_eq!(with_chunk(32, SeedPolicy::PerShard).total(), 256);
    }

    #[test]
    fn run_batch_preserves_job_order_and_totals() {
        let engine = engine_with(4);
        let jobs = vec![noisy_job(100, 1), noisy_job(50, 2), noisy_job(75, 3)];
        let results = engine.run_batch(&jobs);
        let totals: Vec<usize> = results.iter().map(|r| r.counts.total()).collect();
        assert_eq!(totals, vec![100, 50, 75]);
        for r in &results {
            assert_eq!(r.report.shots, r.counts.total());
            assert!(r.report.threads >= 1);
            assert!(r.report.shards >= 1);
        }
    }

    #[test]
    fn zero_shots_yield_an_empty_histogram() {
        let result = engine_with(4).run_job(&noisy_job(0, 5));
        assert_eq!(result.counts.total(), 0);
        assert_eq!(result.report.shards, 0);
        assert_eq!(result.report.shots_per_sec(), 0.0);
    }

    #[test]
    fn ideal_jobs_only_produce_ideal_outcomes() {
        let engine = engine_with(4);
        let result = engine.run_job(&SimJob::ideal(bell_circuit(), 500, RngSeed(9)));
        // A Bell circuit never yields |01> or |10> ideally.
        assert_eq!(result.counts.count(1) + result.counts.count(2), 0);
        assert_eq!(result.counts.total(), 500);
    }

    #[test]
    fn noiseless_fast_path_matches_general_path() {
        // A noiseless *noisy-model* job takes the cached-state fast path;
        // forcing the general path by attaching readout error must leave the
        // underlying trajectory statistics unchanged. Here we check the fast
        // path against the per-shot policy's legacy-compatible stream.
        let device = DeviceModel::ideal(2, 1.0);
        let job = SimJob::noisy(
            bell_circuit(),
            NoiseModel::noiseless(&device),
            400,
            RngSeed(23),
        );
        let fast = ExecutionEngine::builder()
            .threads(2)
            .seed_policy(SeedPolicy::PerShot)
            .build()
            .unwrap()
            .run_job(&job);
        // Reference: run every trajectory explicitly with the same per-shot
        // streams (the historical code path).
        let pre = PrecompiledCircuit::new(&job.circuit, job.noise.as_ref().unwrap());
        let mut reference = Counts::new(2);
        for shot in 0..400u64 {
            let mut rng = RngSeed(23).child(shot).rng();
            reference.record(pre.sample_shot(&mut rng));
        }
        assert_eq!(fast.counts, reference);
    }

    #[test]
    fn simulate_shots_per_sec_excludes_precompile_time() {
        // Satellite fix pin: a job whose lowering dominates wall-clock must
        // still report throughput from the simulate span alone.
        let report = EngineReport {
            shots: 1000,
            shards: 4,
            threads: 2,
            fused_ops: 0,
            precompile: Duration::from_secs(10),
            simulate: Duration::from_secs(1),
        };
        assert_eq!(report.simulate_shots_per_sec(), 1000.0);
        assert_eq!(report.shots_per_sec(), 1000.0);
        // Computing from total wall-clock would have reported ~90.9.
        assert!(report.total_duration().as_secs_f64() > 10.0);
    }

    #[test]
    fn telemetry_records_the_job_span_tree() {
        let collector = Arc::new(Collector::new());
        let engine = ExecutionEngine::builder()
            .threads(2)
            .telemetry(Arc::clone(&collector))
            .build()
            .unwrap();
        let job = noisy_job(200, 37);
        let job_span = Span::enter(Some(&collector), "job");
        let job_id = job_span.id();
        let result = engine.run_job_in_span(&job, job_id);
        job_span.finish();

        let spans = collector.completed_spans();
        let precompile: Vec<_> = spans.iter().filter(|s| s.name == "precompile").collect();
        let simulate: Vec<_> = spans.iter().filter(|s| s.name == "simulate").collect();
        let shard_spans: Vec<_> = spans.iter().filter(|s| s.name == "shard").collect();
        assert_eq!(precompile.len(), 1);
        assert_eq!(simulate.len(), 1);
        assert_eq!(precompile[0].parent, job_id);
        assert_eq!(simulate[0].parent, job_id);
        // Every shard span nests under the simulate span, one per shard.
        assert_eq!(shard_spans.len(), result.report.shards);
        for shard in &shard_spans {
            assert_eq!(shard.parent, simulate[0].id);
        }
        // The report is a thin view over the simulate span's measurement.
        assert_eq!(
            result.report.simulate.as_micros() as u64,
            simulate[0].duration_micros
        );
        assert_eq!(collector.counter("engine.shots").get(), 200);
        assert_eq!(collector.histogram("engine.simulate_micros").count(), 1);
    }

    #[test]
    fn disabled_telemetry_changes_no_counts_and_records_nothing() {
        let collector = Arc::new(Collector::disabled());
        let job = noisy_job(300, 43);
        let plain = engine_with(2).run_job(&job);
        let instrumented = ExecutionEngine::builder()
            .threads(2)
            .telemetry(Arc::clone(&collector))
            .build()
            .unwrap()
            .run_job(&job);
        assert_eq!(instrumented.counts, plain.counts);
        assert!(instrumented.report.simulate.as_nanos() > 0);
        assert!(collector.completed_spans().is_empty());
    }

    #[test]
    fn report_totals_are_consistent() {
        let result = engine_with(2).run_job(&noisy_job(200, 31));
        assert_eq!(
            result.report.total_duration(),
            result.report.precompile + result.report.simulate
        );
        assert!(result.report.shots_per_sec() >= 0.0);
    }

    #[test]
    fn validated_jobs_verify_cleanly_and_count_identically() {
        let job = noisy_job(200, 41);
        let plain = engine_with(2).run_job(&job);
        assert!(plain.diagnostics.is_empty());
        let validated = ExecutionEngine::builder()
            .threads(2)
            .validate(true)
            .build()
            .unwrap()
            .run_job(&job);
        // Validation must neither perturb the counts nor report errors on a
        // legal artifact (Info-level skips are fine).
        assert_eq!(validated.counts, plain.counts);
        assert!(
            !validated.has_verify_errors(),
            "{:?}",
            validated.diagnostics
        );
    }

    #[test]
    fn misconfiguration_is_a_typed_error_not_a_panic() {
        assert_eq!(
            ExecutionEngine::builder().shot_chunk_size(0).build().err(),
            Some(EngineConfigError::ZeroShotChunk)
        );
        assert_eq!(
            ExecutionEngine::builder().threads(0).build().err(),
            Some(EngineConfigError::ZeroThreads)
        );
        assert_eq!(
            ExecutionEngine::builder()
                .parallel_sweep_min_qubits(0)
                .build()
                .err(),
            Some(EngineConfigError::ZeroSweepThreshold)
        );
        assert!(EngineConfigError::ZeroShotChunk.to_string().contains("0"));
        let err: &dyn std::error::Error = &EngineConfigError::ZeroThreads;
        assert!(err.to_string().contains("thread"));
        assert!(EngineConfigError::ZeroSweepThreshold
            .to_string()
            .contains("threshold"));
    }

    #[test]
    fn sweep_threshold_knob_is_scheduling_only() {
        // Forcing the amplitude-parallel regime onto a tiny register (and the
        // shot-parallel regime onto everything) must leave counts
        // bit-identical — the knob only reschedules.
        let job = noisy_job(300, 19);
        let reference = engine_with(1).run_job(&job);
        for threshold in [2usize, 64] {
            let tuned = ExecutionEngine::builder()
                .threads(4)
                .parallel_sweep_min_qubits(threshold)
                .build()
                .unwrap();
            assert_eq!(tuned.parallel_sweep_min_qubits(), threshold);
            assert_eq!(
                tuned.run_job(&job).counts,
                reference.counts,
                "threshold = {threshold}"
            );
        }
    }

    #[test]
    fn batched_noiseless_jobs_reuse_the_sampler_cache_exactly() {
        // A batch repeating the same ideal circuit under different seeds hits
        // the cross-job sampler cache; results must match isolated runs bit
        // for bit (the cached table is seed-independent).
        let engine = engine_with(2);
        let jobs: Vec<SimJob> = (0..4)
            .map(|i| SimJob::ideal(bell_circuit(), 200, RngSeed(100 + i)))
            .collect();
        let batched = engine.run_batch(&jobs);
        for (job, batched) in jobs.iter().zip(&batched) {
            let isolated = engine.run_job(job);
            assert_eq!(batched.counts, isolated.counts);
        }
        // A noisy job interleaved in the batch must not be served stale
        // noiseless samples.
        let mixed = vec![
            SimJob::ideal(bell_circuit(), 150, RngSeed(7)),
            noisy_job(150, 7),
            SimJob::ideal(bell_circuit(), 150, RngSeed(8)),
        ];
        let results = engine.run_batch(&mixed);
        for (job, result) in mixed.iter().zip(&results) {
            assert_eq!(result.counts, engine.run_job(job).counts);
        }
    }

    #[test]
    fn aggressive_validation_reports_tvd_agreement() {
        let device = DeviceModel::ideal(3, 0.98);
        let mut circuit = Circuit::new(3);
        circuit.push(Operation::h(0));
        circuit.push(Operation::cnot(0, 1));
        circuit.push(Operation::rx(2, 0.4));
        circuit.push(Operation::cnot(1, 2));
        circuit.measure_all();
        let job = SimJob::noisy(circuit, NoiseModel::from_device(&device), 400, RngSeed(29));
        let result = ExecutionEngine::builder()
            .threads(2)
            .fusion(FusionPolicy::Aggressive)
            .validate(true)
            .build()
            .unwrap()
            .run_job(&job);
        assert!(!result.has_verify_errors(), "{:?}", result.diagnostics);
        assert!(
            result
                .diagnostics
                .iter()
                .any(|d| d.rule() == "fusion/tvd-bound"),
            "expected a tvd-bound finding: {:?}",
            result.diagnostics
        );
        assert_eq!(result.counts.total(), 400);
    }

    #[test]
    fn shard_worker_panic_propagates_the_original_payload_once() {
        // A shard worker that panics must surface the *original* panic (not a
        // poisoned-lock "worker panicked" follow-up), and must not prevent a
        // subsequent run over the same mechanism from succeeding.
        let boom = |shard: usize, local: &mut Counts| {
            if shard == 3 {
                panic!("shard 3 exploded");
            }
            local.record(0);
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            super::run_sharded(2, 8, 4, &boom);
        }))
        .expect_err("the shard panic must propagate");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(message, "shard 3 exploded");

        // The mechanism is reusable after the panic: nothing is poisoned.
        let fine = super::run_sharded(2, 8, 4, &|_, local: &mut Counts| local.record(1));
        let total: usize = fine.iter().map(Counts::total).sum();
        assert_eq!(total, 8);
    }
}
