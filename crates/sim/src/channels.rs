//! Noise channels in Kraus-operator form.
//!
//! All channels are expressed as a set of Kraus operators `{K_i}` with
//! `Σ K_i† K_i = I`. The trajectory simulator samples one operator per
//! application with probability `‖K_i|ψ⟩‖²` and renormalizes, which reproduces
//! the channel exactly in expectation.

use qmath::{CMatrix, Complex};
use serde::{Deserialize, Serialize};

/// A quantum channel as a list of Kraus operators (all of the same dimension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrausChannel {
    operators: Vec<CMatrix>,
}

impl KrausChannel {
    /// Creates a channel, checking the completeness relation `Σ K† K = I`.
    ///
    /// # Panics
    /// Panics if the operator list is empty, dimensions are inconsistent, or
    /// the completeness relation is violated beyond `1e-6`.
    pub fn new(operators: Vec<CMatrix>) -> Self {
        assert!(
            !operators.is_empty(),
            "a channel needs at least one Kraus operator"
        );
        let dim = operators[0].rows();
        let mut sum = CMatrix::zeros(dim, dim);
        for k in &operators {
            assert_eq!(k.rows(), dim, "inconsistent Kraus operator dimensions");
            sum = &sum + &(&k.dagger() * k);
        }
        assert!(
            sum.approx_eq(&CMatrix::identity(dim), 1e-6),
            "Kraus operators do not satisfy the completeness relation"
        );
        KrausChannel { operators }
    }

    /// The identity channel of the given dimension.
    pub fn identity(dim: usize) -> Self {
        KrausChannel {
            operators: vec![CMatrix::identity(dim)],
        }
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[CMatrix] {
        &self.operators
    }

    /// Operator dimension (2 for single-qubit channels, 4 for two-qubit).
    pub fn dim(&self) -> usize {
        self.operators[0].rows()
    }

    /// True when this is (numerically) the identity channel.
    pub fn is_identity(&self) -> bool {
        self.operators.len() == 1
            && self.operators[0].approx_eq(&CMatrix::identity(self.dim()), 1e-12)
    }

    /// Composes two channels acting on the same space: `other ∘ self`.
    pub fn then(&self, other: &KrausChannel) -> KrausChannel {
        assert_eq!(self.dim(), other.dim(), "channel dimension mismatch");
        let mut ops = Vec::with_capacity(self.operators.len() * other.operators.len());
        for a in &other.operators {
            for b in &self.operators {
                ops.push(a * b);
            }
        }
        KrausChannel::new(ops)
    }
}

/// The single-qubit Pauli operators `{I, X, Y, Z}`.
pub fn pauli_basis_1q() -> [CMatrix; 4] {
    [
        CMatrix::identity(2),
        gates::standard::x(),
        gates::standard::y(),
        gates::standard::z(),
    ]
}

/// Depolarizing channel on `n` qubits (`n` = 1 or 2) with error probability
/// `p`: with probability `p` a uniformly random non-identity Pauli is applied.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]` or `n` is not 1 or 2.
pub fn depolarizing_paulis(n: usize, p: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    assert!(n == 1 || n == 2, "depolarizing supported on 1 or 2 qubits");
    let singles = pauli_basis_1q();
    let paulis: Vec<CMatrix> = if n == 1 {
        singles.to_vec()
    } else {
        let mut v = Vec::with_capacity(16);
        for a in &singles {
            for b in &singles {
                v.push(a.kron(b));
            }
        }
        v
    };
    let num_error_terms = paulis.len() - 1;
    let mut ops = Vec::with_capacity(paulis.len());
    for (i, pauli) in paulis.into_iter().enumerate() {
        let weight = if i == 0 {
            (1.0 - p).sqrt()
        } else {
            (p / num_error_terms as f64).sqrt()
        };
        ops.push(pauli.scale(weight));
    }
    KrausChannel::new(ops)
}

/// Amplitude-damping channel with decay probability
/// `γ = 1 − exp(−t/T1)` for an operation of duration `t`.
pub fn amplitude_damping_kraus(gamma: f64) -> KrausChannel {
    assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
    let k0 = CMatrix::from_rows(
        2,
        &[
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_real((1.0 - gamma).sqrt()),
        ],
    );
    let k1 = CMatrix::from_rows(
        2,
        &[
            Complex::ZERO,
            Complex::from_real(gamma.sqrt()),
            Complex::ZERO,
            Complex::ZERO,
        ],
    );
    KrausChannel::new(vec![k0, k1])
}

/// Pure-dephasing channel with phase-flip probability `p`.
///
/// For an operation of duration `t` on a qubit with times `(T1, T2)`, the pure
/// dephasing rate is `1/Tφ = 1/T2 − 1/(2 T1)` and `p = (1 − exp(−t/Tφ)) / 2`.
pub fn dephasing_kraus(p: f64) -> KrausChannel {
    assert!(
        (0.0..=0.5 + 1e-12).contains(&p),
        "dephasing probability out of range"
    );
    let k0 = CMatrix::identity(2).scale((1.0 - p).sqrt());
    let k1 = gates::standard::z().scale(p.sqrt());
    KrausChannel::new(vec![k0, k1])
}

/// The combined thermal-relaxation channel for an idle/gate window of
/// `duration_ns` on a qubit with `t1_us` / `t2_us`.
pub fn thermal_relaxation(duration_ns: f64, t1_us: f64, t2_us: f64) -> KrausChannel {
    assert!(
        duration_ns >= 0.0 && t1_us > 0.0 && t2_us > 0.0,
        "invalid relaxation parameters"
    );
    let t = duration_ns * 1e-3; // microseconds
    let gamma = 1.0 - (-t / t1_us).exp();
    // Pure dephasing rate; T2 <= 2 T1 physically, clamp otherwise.
    let inv_tphi = (1.0 / t2_us - 1.0 / (2.0 * t1_us)).max(0.0);
    let p_phi = 0.5 * (1.0 - (-t * inv_tphi).exp());
    amplitude_damping_kraus(gamma).then(&dephasing_kraus(p_phi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depolarizing_channel_is_complete() {
        for p in [0.0, 0.01, 0.3, 1.0] {
            let c1 = depolarizing_paulis(1, p);
            assert_eq!(c1.operators().len(), 4);
            let c2 = depolarizing_paulis(2, p);
            assert_eq!(c2.operators().len(), 16);
            assert_eq!(c2.dim(), 4);
        }
    }

    #[test]
    fn zero_error_depolarizing_is_identity_in_effect() {
        let c = depolarizing_paulis(1, 0.0);
        // The non-identity Kraus terms have zero weight.
        for k in &c.operators()[1..] {
            assert!(k.frobenius_norm() < 1e-12);
        }
    }

    #[test]
    fn amplitude_damping_completeness_and_action() {
        for gamma in [0.0, 0.1, 0.5, 1.0] {
            let c = amplitude_damping_kraus(gamma);
            assert_eq!(c.operators().len(), 2);
        }
        // gamma = 1 maps |1> to |0> with certainty: K1|1> = |0>.
        let c = amplitude_damping_kraus(1.0);
        let k1 = &c.operators()[1];
        assert!((k1[(0, 1)] - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn dephasing_completeness() {
        for p in [0.0, 0.2, 0.5] {
            let c = dephasing_kraus(p);
            assert_eq!(c.operators().len(), 2);
        }
    }

    #[test]
    fn thermal_relaxation_composes() {
        let c = thermal_relaxation(100.0, 20.0, 15.0);
        assert_eq!(c.dim(), 2);
        assert!(c.operators().len() >= 2);
        // Zero duration is the identity channel in effect.
        let id = thermal_relaxation(0.0, 20.0, 15.0);
        let mut total_offdiag = 0.0;
        for k in id.operators() {
            total_offdiag += k[(0, 1)].norm() + k[(1, 0)].norm();
        }
        assert!(total_offdiag < 1e-9);
    }

    #[test]
    fn channel_composition_keeps_completeness() {
        let a = depolarizing_paulis(1, 0.05);
        let b = dephasing_kraus(0.1);
        let c = a.then(&b);
        assert_eq!(c.operators().len(), 8);
    }

    #[test]
    fn identity_channel_detection() {
        assert!(KrausChannel::identity(2).is_identity());
        assert!(!depolarizing_paulis(1, 0.1).is_identity());
    }

    #[test]
    #[should_panic(expected = "completeness relation")]
    fn invalid_kraus_set_panics() {
        let _ = KrausChannel::new(vec![gates::standard::x().scale(0.5)]);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let _ = depolarizing_paulis(1, 1.5);
    }
}
