//! Noise channels in Kraus-operator form.
//!
//! All channels are expressed as a set of Kraus operators `{K_i}` with
//! `Σ K_i† K_i = I`. The trajectory simulator samples one operator per
//! application with probability `‖K_i|ψ⟩‖²` and renormalizes, which reproduces
//! the channel exactly in expectation.
//!
//! Operators are stored as stack-allocated [`SmallMat`]s: a channel is generic
//! over its qubit dimension (`KrausChannel<2>` for single-qubit channels,
//! `KrausChannel<4>` for two-qubit ones), so sampling and applying Kraus
//! operators in the trajectory inner loop never allocates per operator.

use qmath::{Complex, Mat2, Mat4, SmallMat};
use serde::{Deserialize, Serialize};

/// One branch of a probabilistic unitary mixture: with probability `weight`,
/// apply `apply` (the identity when `None`).
///
/// Channels whose Kraus operators are all scaled unitaries (`K† K = λ I`) —
/// depolarizing and pure-dephasing channels, and their compositions and
/// unitary conjugations — admit a much cheaper trajectory step: the branch
/// probabilities are state-independent, so one RNG draw picks a branch and a
/// single in-place unitary applies it, with no probe clone or renormalization.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UnitaryMixTerm<const N: usize> {
    /// Probability of this branch; the weights of a mixture sum to 1.
    pub weight: f64,
    /// The unitary applied on this branch, or `None` for the identity.
    pub apply: Option<SmallMat<N>>,
}

/// Detects whether every Kraus operator is a scaled unitary (`K† K = λ I`)
/// and, if so, returns the equivalent probability-weighted unitary mixture.
/// Exactly-zero operators become probability-zero branches and are dropped.
fn detect_unitary_mix<const N: usize>(operators: &[SmallMat<N>]) -> Option<Vec<UnitaryMixTerm<N>>> {
    let mut terms = Vec::with_capacity(operators.len());
    for k in operators {
        let gram = k.dagger() * *k;
        let lambda = gram.trace().re / N as f64;
        if lambda <= 1e-24 {
            continue;
        }
        let scaled_identity = SmallMat::<N>::identity().scale(lambda);
        if gram.max_abs_diff(&scaled_identity) > 1e-12 * lambda.max(1.0) {
            return None;
        }
        let u = k.scale(1.0 / lambda.sqrt());
        let apply = if u.approx_eq(&SmallMat::<N>::identity(), 1e-12) {
            None
        } else {
            Some(u)
        };
        terms.push(UnitaryMixTerm {
            weight: lambda,
            apply,
        });
    }
    if terms.is_empty() {
        None
    } else {
        Some(terms)
    }
}

/// A quantum channel as a list of `N`×`N` Kraus operators.
///
/// `N` is 2 for single-qubit channels and 4 for two-qubit channels; the
/// [`Kraus1q`] / [`Kraus2q`] aliases name those instantiations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrausChannel<const N: usize> {
    operators: Vec<SmallMat<N>>,
    /// Cached scaled-unitary decomposition, recomputed on construction.
    unitary_mix: Option<Vec<UnitaryMixTerm<N>>>,
}

/// A single-qubit (2×2) Kraus channel.
pub type Kraus1q = KrausChannel<2>;

/// A two-qubit (4×4) Kraus channel.
pub type Kraus2q = KrausChannel<4>;

/// A depolarizing channel whose dimension matches the operation's arity.
///
/// [`crate::NoiseModel::noise_for`] produces one of these per noisy unitary;
/// the simulators match on the variant to apply it to the right qubit count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArityChannel {
    /// A channel on one qubit.
    One(Kraus1q),
    /// A channel on a qubit pair.
    Two(Kraus2q),
}

impl<const N: usize> KrausChannel<N> {
    /// Creates a channel, checking the completeness relation `Σ K† K = I`.
    ///
    /// # Panics
    /// Panics if the operator list is empty or the completeness relation is
    /// violated beyond `1e-6`.
    pub fn new(operators: Vec<SmallMat<N>>) -> Self {
        assert!(
            !operators.is_empty(),
            "a channel needs at least one Kraus operator"
        );
        let mut sum = SmallMat::<N>::zeros();
        for k in &operators {
            sum = sum + k.dagger() * *k;
        }
        assert!(
            sum.approx_eq(&SmallMat::<N>::identity(), 1e-6),
            "Kraus operators do not satisfy the completeness relation"
        );
        let unitary_mix = detect_unitary_mix(&operators);
        KrausChannel {
            operators,
            unitary_mix,
        }
    }

    /// The identity channel.
    pub fn identity() -> Self {
        let operators = vec![SmallMat::identity()];
        let unitary_mix = detect_unitary_mix(&operators);
        KrausChannel {
            operators,
            unitary_mix,
        }
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[SmallMat<N>] {
        &self.operators
    }

    /// Operator dimension (2 for single-qubit channels, 4 for two-qubit).
    pub fn dim(&self) -> usize {
        N
    }

    /// True when this is (numerically) the identity channel.
    pub fn is_identity(&self) -> bool {
        self.operators.len() == 1 && self.operators[0].approx_eq(&SmallMat::<N>::identity(), 1e-12)
    }

    /// Composes two channels acting on the same space: `other ∘ self`.
    ///
    /// Exactly-zero operator products (probability-zero branches, common when
    /// one factor came from a zero-strength noise parameter) are pruned, so
    /// composing identity-in-effect channels stays cheap under fusion.
    pub fn then(&self, other: &KrausChannel<N>) -> KrausChannel<N> {
        let mut ops = Vec::with_capacity(self.operators.len() * other.operators.len());
        for a in &other.operators {
            for b in &self.operators {
                let prod = *a * *b;
                if prod.frobenius_norm() == 0.0 {
                    continue;
                }
                ops.push(prod);
            }
        }
        KrausChannel::new(ops)
    }

    /// Conjugates the channel by a unitary, mapping each Kraus operator `K`
    /// to `U K U†`.
    ///
    /// This is the channel obtained by commuting this one past `U`: applying
    /// the channel and then `U` is, in distribution, the same as applying `U`
    /// and then the conjugated channel. Aggressive fusion uses this to carry
    /// noise channels across fused unitary kernels.
    pub fn conjugate_by(&self, u: &SmallMat<N>) -> KrausChannel<N> {
        let ud = u.dagger();
        KrausChannel::new(self.operators.iter().map(|k| *u * *k * ud).collect())
    }

    /// Scaled-unitary mixture view, when every operator satisfies `K†K = λI`.
    pub(crate) fn unitary_mix(&self) -> Option<&[UnitaryMixTerm<N>]> {
        self.unitary_mix.as_deref()
    }
}

impl Kraus1q {
    /// Embeds this single-qubit channel into two-qubit arity, acting on the
    /// most-significant tensor factor (`K ↦ K ⊗ I`).
    pub fn embed_msb(&self) -> Kraus2q {
        KrausChannel::new(
            self.operators
                .iter()
                .map(|k| k.kron(&Mat2::identity()))
                .collect(),
        )
    }

    /// Embeds this single-qubit channel into two-qubit arity, acting on the
    /// least-significant tensor factor (`K ↦ I ⊗ K`).
    pub fn embed_lsb(&self) -> Kraus2q {
        KrausChannel::new(
            self.operators
                .iter()
                .map(|k| Mat2::identity().kron(k))
                .collect(),
        )
    }
}

impl Kraus2q {
    /// Swaps the two tensor factors, re-expressing a channel on qubit pair
    /// `(a, b)` as the same physical channel on `(b, a)`.
    pub fn swap_factors(&self) -> Kraus2q {
        const PERM: [usize; 4] = [0, 2, 1, 3];
        KrausChannel::new(
            self.operators
                .iter()
                .map(|k| Mat4::from_fn(|r, c| k[(PERM[r], PERM[c])]))
                .collect(),
        )
    }
}

/// The single-qubit Pauli operators `{I, X, Y, Z}`.
pub fn pauli_basis_1q() -> [Mat2; 4] {
    [
        Mat2::identity(),
        gates::standard::x(),
        gates::standard::y(),
        gates::standard::z(),
    ]
}

fn depolarizing_ops<const N: usize>(paulis: Vec<SmallMat<N>>, p: f64) -> Vec<SmallMat<N>> {
    let num_error_terms = paulis.len() - 1;
    paulis
        .into_iter()
        .enumerate()
        .map(|(i, pauli)| {
            let weight = if i == 0 {
                (1.0 - p).sqrt()
            } else {
                (p / num_error_terms as f64).sqrt()
            };
            pauli.scale(weight)
        })
        .collect()
}

/// Single-qubit depolarizing channel with error probability `p`: with
/// probability `p` a uniformly random non-identity Pauli is applied.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing_1q(p: f64) -> Kraus1q {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    KrausChannel::new(depolarizing_ops(pauli_basis_1q().to_vec(), p))
}

/// Two-qubit depolarizing channel with error probability `p` over the 15
/// non-identity two-qubit Paulis.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing_2q(p: f64) -> Kraus2q {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let singles = pauli_basis_1q();
    let mut paulis = Vec::with_capacity(16);
    for a in &singles {
        for b in &singles {
            paulis.push(a.kron(b));
        }
    }
    KrausChannel::new(depolarizing_ops(paulis, p))
}

/// Amplitude-damping channel with decay probability
/// `γ = 1 − exp(−t/T1)` for an operation of duration `t`.
pub fn amplitude_damping_kraus(gamma: f64) -> Kraus1q {
    assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
    let k0 = Mat2::from_rows(&[
        Complex::ONE,
        Complex::ZERO,
        Complex::ZERO,
        Complex::from_real((1.0 - gamma).sqrt()),
    ]);
    let k1 = Mat2::from_rows(&[
        Complex::ZERO,
        Complex::from_real(gamma.sqrt()),
        Complex::ZERO,
        Complex::ZERO,
    ]);
    KrausChannel::new(vec![k0, k1])
}

/// Pure-dephasing channel with phase-flip probability `p`.
///
/// For an operation of duration `t` on a qubit with times `(T1, T2)`, the pure
/// dephasing rate is `1/Tφ = 1/T2 − 1/(2 T1)` and `p = (1 − exp(−t/Tφ)) / 2`.
pub fn dephasing_kraus(p: f64) -> Kraus1q {
    assert!(
        (0.0..=0.5 + 1e-12).contains(&p),
        "dephasing probability out of range"
    );
    let k0 = Mat2::identity().scale((1.0 - p).sqrt());
    let k1 = gates::standard::z().scale(p.sqrt());
    KrausChannel::new(vec![k0, k1])
}

/// The combined thermal-relaxation channel for an idle/gate window of
/// `duration_ns` on a qubit with `t1_us` / `t2_us`.
pub fn thermal_relaxation(duration_ns: f64, t1_us: f64, t2_us: f64) -> Kraus1q {
    assert!(
        duration_ns >= 0.0 && t1_us > 0.0 && t2_us > 0.0,
        "invalid relaxation parameters"
    );
    let t = duration_ns * 1e-3; // microseconds
    let gamma = 1.0 - (-t / t1_us).exp();
    // Pure dephasing rate; T2 <= 2 T1 physically, clamp otherwise.
    let inv_tphi = (1.0 / t2_us - 1.0 / (2.0 * t1_us)).max(0.0);
    let p_phi = 0.5 * (1.0 - (-t * inv_tphi).exp());
    amplitude_damping_kraus(gamma).then(&dephasing_kraus(p_phi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depolarizing_channel_is_complete() {
        for p in [0.0, 0.01, 0.3, 1.0] {
            let c1 = depolarizing_1q(p);
            assert_eq!(c1.operators().len(), 4);
            let c2 = depolarizing_2q(p);
            assert_eq!(c2.operators().len(), 16);
            assert_eq!(c2.dim(), 4);
        }
    }

    #[test]
    fn zero_error_depolarizing_is_identity_in_effect() {
        let c = depolarizing_1q(0.0);
        // The non-identity Kraus terms have zero weight.
        for k in &c.operators()[1..] {
            assert!(k.frobenius_norm() < 1e-12);
        }
    }

    #[test]
    fn amplitude_damping_completeness_and_action() {
        for gamma in [0.0, 0.1, 0.5, 1.0] {
            let c = amplitude_damping_kraus(gamma);
            assert_eq!(c.operators().len(), 2);
        }
        // gamma = 1 maps |1> to |0> with certainty: K1|1> = |0>.
        let c = amplitude_damping_kraus(1.0);
        let k1 = &c.operators()[1];
        assert!((k1[(0, 1)] - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn dephasing_completeness() {
        for p in [0.0, 0.2, 0.5] {
            let c = dephasing_kraus(p);
            assert_eq!(c.operators().len(), 2);
        }
    }

    #[test]
    fn thermal_relaxation_composes() {
        let c = thermal_relaxation(100.0, 20.0, 15.0);
        assert_eq!(c.dim(), 2);
        assert!(c.operators().len() >= 2);
        // Zero duration is the identity channel in effect.
        let id = thermal_relaxation(0.0, 20.0, 15.0);
        let mut total_offdiag = 0.0;
        for k in id.operators() {
            total_offdiag += k[(0, 1)].norm() + k[(1, 0)].norm();
        }
        assert!(total_offdiag < 1e-9);
    }

    #[test]
    fn channel_composition_keeps_completeness() {
        let a = depolarizing_1q(0.05);
        let b = dephasing_kraus(0.1);
        let c = a.then(&b);
        assert_eq!(c.operators().len(), 8);
    }

    #[test]
    fn identity_channel_detection() {
        assert!(Kraus1q::identity().is_identity());
        assert!(Kraus2q::identity().is_identity());
        assert!(!depolarizing_1q(0.1).is_identity());
    }

    #[test]
    #[should_panic(expected = "completeness relation")]
    fn invalid_kraus_set_panics() {
        let _ = KrausChannel::new(vec![gates::standard::x().scale(0.5)]);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let _ = depolarizing_1q(1.5);
    }

    #[test]
    fn depolarizing_and_dephasing_detect_as_unitary_mixtures() {
        let mix = depolarizing_1q(0.3);
        let terms = mix.unitary_mix().expect("depolarizing is a Pauli mixture");
        let total: f64 = terms.iter().map(|t| t.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(dephasing_kraus(0.2).unitary_mix().is_some());
        assert!(depolarizing_2q(0.1).unitary_mix().is_some());
        // The identity branch is recognized and stored without a matrix.
        assert!(terms.iter().any(|t| t.apply.is_none()));
    }

    #[test]
    fn amplitude_damping_is_not_a_unitary_mixture() {
        assert!(amplitude_damping_kraus(0.3).unitary_mix().is_none());
        assert!(thermal_relaxation(100.0, 20.0, 15.0)
            .unitary_mix()
            .is_none());
    }

    #[test]
    fn conjugation_preserves_completeness_and_mixture_structure() {
        let h = gates::standard::h();
        let c = depolarizing_1q(0.2).conjugate_by(&h);
        assert_eq!(c.operators().len(), 4);
        assert!(c.unitary_mix().is_some());
        // Conjugating amplitude damping also stays a valid channel.
        let d = amplitude_damping_kraus(0.4).conjugate_by(&h);
        assert_eq!(d.operators().len(), 2);
    }

    #[test]
    fn embedding_into_two_qubit_arity_keeps_completeness() {
        let c = depolarizing_1q(0.1);
        let msb = c.embed_msb();
        let lsb = c.embed_lsb();
        assert_eq!(msb.dim(), 4);
        assert_eq!(lsb.dim(), 4);
        // Embedding a Pauli mixture is still a Pauli mixture.
        assert!(msb.unitary_mix().is_some());
        // X ⊗ I swaps under factor exchange to I ⊗ X.
        let x_on_msb = KrausChannel::new(vec![gates::standard::x().kron(&Mat2::identity())]);
        let swapped = x_on_msb.swap_factors();
        let expected = Mat2::identity().kron(&gates::standard::x());
        assert!(swapped.operators()[0].approx_eq(&expected, 1e-12));
    }

    #[test]
    fn zero_strength_composition_prunes_to_exact_identity() {
        let id = thermal_relaxation(0.0, 20.0, 15.0);
        assert_eq!(id.operators().len(), 1);
        assert!(id.is_identity());
    }
}
