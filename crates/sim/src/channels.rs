//! Noise channels in Kraus-operator form.
//!
//! All channels are expressed as a set of Kraus operators `{K_i}` with
//! `Σ K_i† K_i = I`. The trajectory simulator samples one operator per
//! application with probability `‖K_i|ψ⟩‖²` and renormalizes, which reproduces
//! the channel exactly in expectation.
//!
//! Operators are stored as stack-allocated [`SmallMat`]s: a channel is generic
//! over its qubit dimension (`KrausChannel<2>` for single-qubit channels,
//! `KrausChannel<4>` for two-qubit ones), so sampling and applying Kraus
//! operators in the trajectory inner loop never allocates per operator.

use qmath::{Complex, Mat2, SmallMat};
use serde::{Deserialize, Serialize};

/// A quantum channel as a list of `N`×`N` Kraus operators.
///
/// `N` is 2 for single-qubit channels and 4 for two-qubit channels; the
/// [`Kraus1q`] / [`Kraus2q`] aliases name those instantiations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KrausChannel<const N: usize> {
    operators: Vec<SmallMat<N>>,
}

/// A single-qubit (2×2) Kraus channel.
pub type Kraus1q = KrausChannel<2>;

/// A two-qubit (4×4) Kraus channel.
pub type Kraus2q = KrausChannel<4>;

/// A depolarizing channel whose dimension matches the operation's arity.
///
/// [`crate::NoiseModel::noise_for`] produces one of these per noisy unitary;
/// the simulators match on the variant to apply it to the right qubit count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArityChannel {
    /// A channel on one qubit.
    One(Kraus1q),
    /// A channel on a qubit pair.
    Two(Kraus2q),
}

impl<const N: usize> KrausChannel<N> {
    /// Creates a channel, checking the completeness relation `Σ K† K = I`.
    ///
    /// # Panics
    /// Panics if the operator list is empty or the completeness relation is
    /// violated beyond `1e-6`.
    pub fn new(operators: Vec<SmallMat<N>>) -> Self {
        assert!(
            !operators.is_empty(),
            "a channel needs at least one Kraus operator"
        );
        let mut sum = SmallMat::<N>::zeros();
        for k in &operators {
            sum = sum + k.dagger() * *k;
        }
        assert!(
            sum.approx_eq(&SmallMat::<N>::identity(), 1e-6),
            "Kraus operators do not satisfy the completeness relation"
        );
        KrausChannel { operators }
    }

    /// The identity channel.
    pub fn identity() -> Self {
        KrausChannel {
            operators: vec![SmallMat::identity()],
        }
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[SmallMat<N>] {
        &self.operators
    }

    /// Operator dimension (2 for single-qubit channels, 4 for two-qubit).
    pub fn dim(&self) -> usize {
        N
    }

    /// True when this is (numerically) the identity channel.
    pub fn is_identity(&self) -> bool {
        self.operators.len() == 1 && self.operators[0].approx_eq(&SmallMat::<N>::identity(), 1e-12)
    }

    /// Composes two channels acting on the same space: `other ∘ self`.
    pub fn then(&self, other: &KrausChannel<N>) -> KrausChannel<N> {
        let mut ops = Vec::with_capacity(self.operators.len() * other.operators.len());
        for a in &other.operators {
            for b in &self.operators {
                ops.push(*a * *b);
            }
        }
        KrausChannel::new(ops)
    }
}

/// The single-qubit Pauli operators `{I, X, Y, Z}`.
pub fn pauli_basis_1q() -> [Mat2; 4] {
    [
        Mat2::identity(),
        gates::standard::x(),
        gates::standard::y(),
        gates::standard::z(),
    ]
}

fn depolarizing_ops<const N: usize>(paulis: Vec<SmallMat<N>>, p: f64) -> Vec<SmallMat<N>> {
    let num_error_terms = paulis.len() - 1;
    paulis
        .into_iter()
        .enumerate()
        .map(|(i, pauli)| {
            let weight = if i == 0 {
                (1.0 - p).sqrt()
            } else {
                (p / num_error_terms as f64).sqrt()
            };
            pauli.scale(weight)
        })
        .collect()
}

/// Single-qubit depolarizing channel with error probability `p`: with
/// probability `p` a uniformly random non-identity Pauli is applied.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing_1q(p: f64) -> Kraus1q {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    KrausChannel::new(depolarizing_ops(pauli_basis_1q().to_vec(), p))
}

/// Two-qubit depolarizing channel with error probability `p` over the 15
/// non-identity two-qubit Paulis.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn depolarizing_2q(p: f64) -> Kraus2q {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let singles = pauli_basis_1q();
    let mut paulis = Vec::with_capacity(16);
    for a in &singles {
        for b in &singles {
            paulis.push(a.kron(b));
        }
    }
    KrausChannel::new(depolarizing_ops(paulis, p))
}

/// Amplitude-damping channel with decay probability
/// `γ = 1 − exp(−t/T1)` for an operation of duration `t`.
pub fn amplitude_damping_kraus(gamma: f64) -> Kraus1q {
    assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
    let k0 = Mat2::from_rows(&[
        Complex::ONE,
        Complex::ZERO,
        Complex::ZERO,
        Complex::from_real((1.0 - gamma).sqrt()),
    ]);
    let k1 = Mat2::from_rows(&[
        Complex::ZERO,
        Complex::from_real(gamma.sqrt()),
        Complex::ZERO,
        Complex::ZERO,
    ]);
    KrausChannel::new(vec![k0, k1])
}

/// Pure-dephasing channel with phase-flip probability `p`.
///
/// For an operation of duration `t` on a qubit with times `(T1, T2)`, the pure
/// dephasing rate is `1/Tφ = 1/T2 − 1/(2 T1)` and `p = (1 − exp(−t/Tφ)) / 2`.
pub fn dephasing_kraus(p: f64) -> Kraus1q {
    assert!(
        (0.0..=0.5 + 1e-12).contains(&p),
        "dephasing probability out of range"
    );
    let k0 = Mat2::identity().scale((1.0 - p).sqrt());
    let k1 = gates::standard::z().scale(p.sqrt());
    KrausChannel::new(vec![k0, k1])
}

/// The combined thermal-relaxation channel for an idle/gate window of
/// `duration_ns` on a qubit with `t1_us` / `t2_us`.
pub fn thermal_relaxation(duration_ns: f64, t1_us: f64, t2_us: f64) -> Kraus1q {
    assert!(
        duration_ns >= 0.0 && t1_us > 0.0 && t2_us > 0.0,
        "invalid relaxation parameters"
    );
    let t = duration_ns * 1e-3; // microseconds
    let gamma = 1.0 - (-t / t1_us).exp();
    // Pure dephasing rate; T2 <= 2 T1 physically, clamp otherwise.
    let inv_tphi = (1.0 / t2_us - 1.0 / (2.0 * t1_us)).max(0.0);
    let p_phi = 0.5 * (1.0 - (-t * inv_tphi).exp());
    amplitude_damping_kraus(gamma).then(&dephasing_kraus(p_phi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depolarizing_channel_is_complete() {
        for p in [0.0, 0.01, 0.3, 1.0] {
            let c1 = depolarizing_1q(p);
            assert_eq!(c1.operators().len(), 4);
            let c2 = depolarizing_2q(p);
            assert_eq!(c2.operators().len(), 16);
            assert_eq!(c2.dim(), 4);
        }
    }

    #[test]
    fn zero_error_depolarizing_is_identity_in_effect() {
        let c = depolarizing_1q(0.0);
        // The non-identity Kraus terms have zero weight.
        for k in &c.operators()[1..] {
            assert!(k.frobenius_norm() < 1e-12);
        }
    }

    #[test]
    fn amplitude_damping_completeness_and_action() {
        for gamma in [0.0, 0.1, 0.5, 1.0] {
            let c = amplitude_damping_kraus(gamma);
            assert_eq!(c.operators().len(), 2);
        }
        // gamma = 1 maps |1> to |0> with certainty: K1|1> = |0>.
        let c = amplitude_damping_kraus(1.0);
        let k1 = &c.operators()[1];
        assert!((k1[(0, 1)] - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn dephasing_completeness() {
        for p in [0.0, 0.2, 0.5] {
            let c = dephasing_kraus(p);
            assert_eq!(c.operators().len(), 2);
        }
    }

    #[test]
    fn thermal_relaxation_composes() {
        let c = thermal_relaxation(100.0, 20.0, 15.0);
        assert_eq!(c.dim(), 2);
        assert!(c.operators().len() >= 2);
        // Zero duration is the identity channel in effect.
        let id = thermal_relaxation(0.0, 20.0, 15.0);
        let mut total_offdiag = 0.0;
        for k in id.operators() {
            total_offdiag += k[(0, 1)].norm() + k[(1, 0)].norm();
        }
        assert!(total_offdiag < 1e-9);
    }

    #[test]
    fn channel_composition_keeps_completeness() {
        let a = depolarizing_1q(0.05);
        let b = dephasing_kraus(0.1);
        let c = a.then(&b);
        assert_eq!(c.operators().len(), 8);
    }

    #[test]
    fn identity_channel_detection() {
        assert!(Kraus1q::identity().is_identity());
        assert!(Kraus2q::identity().is_identity());
        assert!(!depolarizing_1q(0.1).is_identity());
    }

    #[test]
    #[should_panic(expected = "completeness relation")]
    fn invalid_kraus_set_panics() {
        let _ = KrausChannel::new(vec![gates::standard::x().scale(0.5)]);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let _ = depolarizing_1q(1.5);
    }
}
