//! Mapping device calibration data to per-operation noise.
//!
//! The model mirrors the paper's Qiskit Aer setup (§VI): "it applies
//! single-qubit and two-qubit depolarizing noises based on single-qubit and
//! two-qubit gate error rates. It implements amplitude damping and dephasing
//! noise based on T1 and T2 times as well as gate duration", plus classical
//! readout error at measurement.

use circuit::{OpKind, Operation, QubitId};
use device::DeviceModel;
use serde::{Deserialize, Serialize};

use crate::channels::{
    depolarizing_1q, depolarizing_2q, thermal_relaxation, ArityChannel, Kraus1q,
};

/// The noise applied around one circuit operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationNoise {
    /// Depolarizing channel matched to the operation arity (dimension 2 or 4),
    /// or `None` for noiseless operations.
    pub depolarizing: Option<ArityChannel>,
    /// Per-qubit thermal relaxation channels `(qubit, channel)` applied for the
    /// operation's duration.
    pub relaxation: Vec<(QubitId, Kraus1q)>,
}

/// A device-derived noise model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    device: DeviceModel,
    /// Globally scales two-qubit error rates (1.0 = calibrated values).
    pub two_qubit_error_scale: f64,
    /// Enables/disables thermal relaxation (decoherence) noise.
    pub with_relaxation: bool,
    /// Enables/disables readout error.
    pub with_readout_error: bool,
}

impl NoiseModel {
    /// Builds a noise model directly from a device's calibration data.
    pub fn from_device(device: &DeviceModel) -> Self {
        NoiseModel {
            device: device.clone(),
            two_qubit_error_scale: 1.0,
            with_relaxation: true,
            with_readout_error: true,
        }
    }

    /// A noiseless model over the same device (useful for ideal baselines).
    pub fn noiseless(device: &DeviceModel) -> Self {
        NoiseModel {
            device: device.clone(),
            two_qubit_error_scale: 0.0,
            with_relaxation: false,
            with_readout_error: false,
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Readout error probability for qubit `q` (0 when readout error is
    /// disabled).
    pub fn readout_error(&self, q: QubitId) -> f64 {
        if self.with_readout_error {
            self.device.qubit(q).readout_error
        } else {
            0.0
        }
    }

    /// Builds the noise to apply after `op`.
    pub fn noise_for(&self, op: &Operation) -> OperationNoise {
        use nuop_core::HardwareFidelityProvider as _;
        let durations = self.device.durations();
        match op.kind() {
            OpKind::Unitary1Q { .. } => {
                let q = op.qubits()[0];
                let err = (1.0 - self.device.one_qubit_fidelity(q)).clamp(0.0, 1.0);
                OperationNoise {
                    depolarizing: if err > 0.0 {
                        Some(ArityChannel::One(depolarizing_1q(err)))
                    } else {
                        None
                    },
                    relaxation: self.relaxation_for(&[q], durations.one_qubit_ns),
                }
            }
            OpKind::Unitary2Q { label, .. } => {
                let (q0, q1) = (op.qubits()[0], op.qubits()[1]);
                let fid = self.device.two_qubit_fidelity(q0, q1, label);
                let err = ((1.0 - fid) * self.two_qubit_error_scale).clamp(0.0, 1.0);
                OperationNoise {
                    depolarizing: if err > 0.0 {
                        Some(ArityChannel::Two(depolarizing_2q(err)))
                    } else {
                        None
                    },
                    relaxation: self.relaxation_for(&[q0, q1], durations.two_qubit_ns),
                }
            }
            OpKind::Measure => OperationNoise {
                depolarizing: None,
                relaxation: self.relaxation_for(op.qubits(), durations.measurement_ns),
            },
            OpKind::Barrier => OperationNoise {
                depolarizing: None,
                relaxation: Vec::new(),
            },
        }
    }

    fn relaxation_for(&self, qubits: &[QubitId], duration_ns: f64) -> Vec<(QubitId, Kraus1q)> {
        if !self.with_relaxation {
            return Vec::new();
        }
        qubits
            .iter()
            .map(|&q| {
                let cal = self.device.qubit(q);
                (q, thermal_relaxation(duration_ns, cal.t1_us, cal.t2_us))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::RngSeed;

    #[test]
    fn two_qubit_noise_uses_gate_specific_fidelity() {
        let device = DeviceModel::aspen8(RngSeed(1));
        let model = NoiseModel::from_device(&device);
        // Edge (2,3): CZ fidelity 0.94, XY(pi) 0.97 (Fig. 3).
        let cz = Operation::unitary2q("CZ", gates::standard::cz(), 2, 3);
        let xy = Operation::unitary2q("XY(pi)", gates::fsim::xy(std::f64::consts::PI), 2, 3);
        let ncz = model.noise_for(&cz);
        let nxy = model.noise_for(&xy);
        // Both are depolarizing channels; CZ's error weight should be larger.
        let weight = |n: &OperationNoise| match &n.depolarizing {
            Some(ArityChannel::Two(c)) => 1.0 - c.operators()[0].frobenius_norm().powi(2) / 4.0,
            _ => 0.0,
        };
        assert!(weight(&ncz) > weight(&nxy));
    }

    #[test]
    fn noiseless_model_has_no_channels() {
        let device = DeviceModel::sycamore(RngSeed(2));
        let model = NoiseModel::noiseless(&device);
        let op = Operation::unitary2q("SYC", *gates::GateType::syc().unitary(), 0, 1);
        let noise = model.noise_for(&op);
        assert!(noise.depolarizing.is_none());
        assert!(noise.relaxation.is_empty());
        assert_eq!(model.readout_error(0), 0.0);
    }

    #[test]
    fn one_qubit_noise_is_much_weaker_than_two_qubit() {
        let device = DeviceModel::sycamore(RngSeed(3));
        let model = NoiseModel::from_device(&device);
        let one = model.noise_for(&Operation::h(0));
        let two = model.noise_for(&Operation::unitary2q(
            "SYC",
            *gates::GateType::syc().unitary(),
            0,
            1,
        ));
        let err_weight = |n: &OperationNoise| match &n.depolarizing {
            Some(ArityChannel::One(c)) => 1.0 - c.operators()[0].frobenius_norm().powi(2) / 2.0,
            Some(ArityChannel::Two(c)) => 1.0 - c.operators()[0].frobenius_norm().powi(2) / 4.0,
            None => 0.0,
        };
        assert!(err_weight(&one) < err_weight(&two));
    }

    #[test]
    fn error_scale_zero_silences_two_qubit_noise() {
        let device = DeviceModel::sycamore(RngSeed(4));
        let mut model = NoiseModel::from_device(&device);
        model.two_qubit_error_scale = 0.0;
        let op = Operation::unitary2q("SYC", *gates::GateType::syc().unitary(), 0, 1);
        assert!(model.noise_for(&op).depolarizing.is_none());
    }

    #[test]
    fn measurement_noise_is_relaxation_plus_readout() {
        let device = DeviceModel::aspen8(RngSeed(5));
        let model = NoiseModel::from_device(&device);
        let m = Operation::measure(vec![0, 1]);
        let noise = model.noise_for(&m);
        assert!(noise.depolarizing.is_none());
        assert_eq!(noise.relaxation.len(), 2);
        assert!(model.readout_error(0) > 0.0);
    }

    #[test]
    fn barrier_is_noise_free() {
        let device = DeviceModel::aspen8(RngSeed(6));
        let model = NoiseModel::from_device(&device);
        let noise = model.noise_for(&Operation::barrier(vec![0, 1, 2]));
        assert!(noise.depolarizing.is_none());
        assert!(noise.relaxation.is_empty());
    }
}
