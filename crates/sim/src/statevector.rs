//! Dense state-vector representation and gate application.
//!
//! # Amplitude sweeps
//!
//! Gate application iterates only the *base indices* of the register — the
//! `2^(n-1)` (one-qubit) or `2^(n-2)` (two-qubit) indices whose target bits
//! are zero — instead of scanning all `2^n` amplitudes and mask-testing each
//! one. Above [`PARALLEL_SWEEP_MIN_QUBITS`] the
//! [`apply_one_qubit_threaded`](StateVector::apply_one_qubit_threaded) /
//! [`apply_two_qubit_threaded`](StateVector::apply_two_qubit_threaded)
//! variants additionally split that base-index space across scoped worker
//! threads. Every base index owns a disjoint set of amplitudes and each
//! amplitude's update is computed from the same inputs with the same
//! arithmetic regardless of the split, so results are **bit-identical for any
//! thread count**.

use std::ops::Range;

use circuit::QubitId;
use qmath::{Complex, Mat2, Mat4};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of qubits at or above which the `apply_*_threaded` sweeps split the
/// amplitude space across worker threads. Below this (≤ 8192 amplitudes) the
/// scoped-thread setup costs more than the sweep itself and the state is
/// updated serially regardless of the requested thread count.
pub const PARALLEL_SWEEP_MIN_QUBITS: usize = 14;

/// Returns `k` with a zero bit inserted at position `shift`: bits below
/// `shift` stay in place, bits at and above it move up by one. Enumerates the
/// base indices of a sweep (`insert_zero_bit(k, s)` for `k = 0..2^(n-1)`
/// visits exactly the indices whose bit `s` is clear, in increasing order).
#[inline(always)]
fn insert_zero_bit(k: usize, shift: usize) -> usize {
    ((k >> shift) << (shift + 1)) | (k & ((1usize << shift) - 1))
}

/// Raw cursor into the amplitude buffer, shared by the scoped sweep workers.
///
/// Safety contract: every worker receives a disjoint base-index range, and
/// distinct base indices address disjoint amplitude pairs/quadruples, so no
/// amplitude is ever aliased across threads during one sweep.
#[derive(Clone, Copy)]
struct AmpCursor(*mut Complex);

impl AmpCursor {
    /// Accessor (rather than direct field use) so closures capture the whole
    /// `Sync` wrapper instead of edition-2021 precise-capturing the raw
    /// pointer field.
    #[inline(always)]
    fn ptr(self) -> *mut Complex {
        self.0
    }
}

// SAFETY: the cursor is only dereferenced inside one sweep, where workers own
// disjoint index sets (see the struct docs).
unsafe impl Send for AmpCursor {}
unsafe impl Sync for AmpCursor {}

/// Runs `kernel` over `0..base_count`, split into contiguous chunks across at
/// most `threads` scoped workers. Serial when the register is below
/// [`PARALLEL_SWEEP_MIN_QUBITS`] or only one worker is requested; the kernel
/// performs identical per-index arithmetic either way.
fn run_sweep(
    base_count: usize,
    num_qubits: usize,
    threads: usize,
    kernel: impl Fn(Range<usize>) + Sync,
) {
    let workers = threads.max(1).min(base_count.max(1));
    if workers <= 1 || num_qubits < PARALLEL_SWEEP_MIN_QUBITS {
        kernel(0..base_count);
        return;
    }
    let chunk = base_count.div_ceil(workers);
    std::thread::scope(|scope| {
        let kernel = &kernel;
        for w in 0..workers {
            let start = w * chunk;
            let end = (start + chunk).min(base_count);
            if start < end {
                scope.spawn(move || kernel(start..end));
            }
        }
    });
}

/// A pure state of an `n`-qubit register, stored as `2^n` amplitudes in
/// big-endian basis ordering (qubit 0 is the most significant bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    /// Panics if `num_qubits` is zero or larger than 26 (the dense
    /// representation would not fit in memory).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "need at least one qubit");
        assert!(num_qubits <= 26, "dense simulation limited to 26 qubits");
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// A specific computational basis state.
    ///
    /// # Panics
    /// Panics if `basis_index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, basis_index: usize) -> Self {
        let mut s = StateVector::zero_state(num_qubits);
        assert!(basis_index < s.amplitudes.len(), "basis index out of range");
        s.amplitudes[0] = Complex::ZERO;
        s.amplitudes[basis_index] = Complex::ONE;
        s
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude of a basis state.
    pub fn amplitude(&self, basis_index: usize) -> Complex {
        self.amplitudes[basis_index]
    }

    /// All amplitudes.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Squared norm (should stay 1 for unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm.
    ///
    /// # Panics
    /// Panics if the state has (numerically) zero norm.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-300, "cannot normalize a zero state");
        for a in &mut self.amplitudes {
            *a = *a / n;
        }
    }

    /// Probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Applies a 2×2 unitary (or Kraus operator) to qubit `q` in place.
    ///
    /// The operator is the stack-allocated [`Mat2`]; per-gate application
    /// reads it straight from registers with no per-call allocation. The sweep
    /// visits only the `2^(n-1)` base indices (bit `q` clear), touching each
    /// amplitude pair exactly once.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn apply_one_qubit(&mut self, m: &Mat2, q: QubitId) {
        self.apply_one_qubit_threaded(m, q, 1);
    }

    /// [`apply_one_qubit`](StateVector::apply_one_qubit) with the base-index
    /// sweep split across up to `threads` scoped worker threads (registers
    /// below [`PARALLEL_SWEEP_MIN_QUBITS`] stay serial). Bit-identical to the
    /// serial sweep for any thread count.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn apply_one_qubit_threaded(&mut self, m: &Mat2, q: QubitId, threads: usize) {
        assert!(q < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - q;
        let mask = 1usize << shift;
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let half = self.amplitudes.len() / 2;
        let cursor = AmpCursor(self.amplitudes.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let amps = cursor.ptr();
            // Walk the range in contiguous runs: base indices whose low bits
            // (below `shift`) increment without carrying map to consecutive
            // amplitude indices, so the inner loop is a straight pointer walk
            // the compiler can unroll and vectorize.
            let mut k = range.start;
            while k < range.end {
                let run = (mask - (k & (mask - 1))).min(range.end - k);
                let i0 = insert_zero_bit(k, shift);
                // SAFETY: distinct base indices map to distinct (i, j) pairs
                // and workers own disjoint base-index ranges (see AmpCursor).
                unsafe {
                    for o in 0..run {
                        let i = i0 + o;
                        let j = i | mask;
                        let a0 = *amps.add(i);
                        let a1 = *amps.add(j);
                        *amps.add(i) = m00 * a0 + m01 * a1;
                        *amps.add(j) = m10 * a0 + m11 * a1;
                    }
                }
                k += run;
            }
        };
        run_sweep(half, self.num_qubits, threads, kernel);
    }

    /// Applies a 4×4 unitary (or Kraus operator) to qubits `(q0, q1)` in place;
    /// `q0` is the most significant qubit of the matrix. The sweep visits only
    /// the `2^(n-2)` base indices (both target bits clear).
    ///
    /// # Panics
    /// Panics if the qubits are out of range or equal.
    pub fn apply_two_qubit(&mut self, m: &Mat4, q0: QubitId, q1: QubitId) {
        self.apply_two_qubit_threaded(m, q0, q1, 1);
    }

    /// [`apply_two_qubit`](StateVector::apply_two_qubit) with the base-index
    /// sweep split across up to `threads` scoped worker threads (registers
    /// below [`PARALLEL_SWEEP_MIN_QUBITS`] stay serial). Bit-identical to the
    /// serial sweep for any thread count.
    ///
    /// # Panics
    /// Panics if the qubits are out of range or equal.
    pub fn apply_two_qubit_threaded(&mut self, m: &Mat4, q0: QubitId, q1: QubitId, threads: usize) {
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(q0, q1, "qubits must be distinct");
        let s0 = self.num_qubits - 1 - q0;
        let s1 = self.num_qubits - 1 - q1;
        let mask0 = 1usize << s0;
        let mask1 = 1usize << s1;
        let (lo, hi) = (s0.min(s1), s0.max(s1));
        let m = *m;
        let quarter = self.amplitudes.len() / 4;
        let cursor = AmpCursor(self.amplitudes.as_mut_ptr());
        let lo_mask = (1usize << lo) - 1;
        let kernel = move |range: Range<usize>| {
            let amps = cursor.ptr();
            // Walk the range in contiguous runs below the lower inserted bit
            // (see the one-qubit kernel): within a run the four amplitude
            // indices advance by one each step.
            let mut k = range.start;
            while k < range.end {
                let run = ((lo_mask + 1) - (k & lo_mask)).min(range.end - k);
                // Insert zeros at the lower shift first, then at the higher
                // one (whose position is unchanged by the first insertion).
                let base = insert_zero_bit(insert_zero_bit(k, lo), hi);
                // SAFETY: distinct base indices map to distinct index
                // quadruples and workers own disjoint base-index ranges (see
                // AmpCursor).
                unsafe {
                    for o in 0..run {
                        let i00 = base + o;
                        let i01 = i00 | mask1;
                        let i10 = i00 | mask0;
                        let i11 = i00 | mask0 | mask1;
                        let a0 = *amps.add(i00);
                        let a1 = *amps.add(i01);
                        let a2 = *amps.add(i10);
                        let a3 = *amps.add(i11);
                        *amps.add(i00) =
                            m[(0, 0)] * a0 + m[(0, 1)] * a1 + m[(0, 2)] * a2 + m[(0, 3)] * a3;
                        *amps.add(i01) =
                            m[(1, 0)] * a0 + m[(1, 1)] * a1 + m[(1, 2)] * a2 + m[(1, 3)] * a3;
                        *amps.add(i10) =
                            m[(2, 0)] * a0 + m[(2, 1)] * a1 + m[(2, 2)] * a2 + m[(2, 3)] * a3;
                        *amps.add(i11) =
                            m[(3, 0)] * a0 + m[(3, 1)] * a1 + m[(3, 2)] * a2 + m[(3, 3)] * a3;
                    }
                }
                k += run;
            }
        };
        run_sweep(quarter, self.num_qubits, threads, kernel);
    }

    /// Probability of measuring qubit `q` in state `|1⟩`.
    ///
    /// Iterates only the `2^(n-1)` indices whose bit `q` is set (in the same
    /// increasing order a full scan would visit them, so the floating-point
    /// sum is unchanged).
    pub fn prob_one(&self, q: QubitId) -> f64 {
        assert!(q < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - q;
        let mask = 1usize << shift;
        let half = self.amplitudes.len() / 2;
        let mut sum = 0.0;
        for k in 0..half {
            sum += self.amplitudes[insert_zero_bit(k, shift) | mask].norm_sqr();
        }
        sum
    }

    /// Samples a complete computational-basis measurement, returning the basis
    /// index. The state is *not* collapsed (trajectory shots re-sample from the
    /// final distribution).
    ///
    /// This linear scan is O(2^n) per shot; when many shots sample the *same*
    /// state (the engine's noiseless fast path), build a
    /// [`MeasurementSampler`] once and binary-search per shot instead.
    pub fn sample_measurement<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut r: f64 = rng.gen_range(0.0..1.0);
        for (i, a) in self.amplitudes.iter().enumerate() {
            let p = a.norm_sqr();
            if r < p {
                return i;
            }
            r -= p;
        }
        self.amplitudes.len() - 1
    }

    /// Builds the precomputed cumulative-distribution sampler for this state.
    ///
    /// One O(2^n) prefix-sum pays for O(n)-per-shot sampling afterwards —
    /// the engine's noiseless fast path uses this to turn its O(shots·2^n)
    /// sampling loop into O(2^n + shots·n). Each
    /// [`MeasurementSampler::sample`] consumes exactly one RNG draw, the same
    /// as [`sample_measurement`](StateVector::sample_measurement).
    pub fn measurement_sampler(&self) -> MeasurementSampler {
        let mut cumulative = Vec::with_capacity(self.amplitudes.len());
        let mut acc = 0.0f64;
        for a in &self.amplitudes {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        MeasurementSampler { cumulative }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits, "dimension mismatch");
        self.amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }
}

/// Precomputed cumulative measurement distribution of one [`StateVector`].
///
/// Built once via [`StateVector::measurement_sampler`]; each
/// [`sample`](MeasurementSampler::sample) is then a single RNG draw plus a
/// binary search over the prefix sums, instead of an O(2^n) rescan of the
/// amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSampler {
    /// `cumulative[i]` is the total probability mass of basis states `0..=i`.
    cumulative: Vec<f64>,
}

impl MeasurementSampler {
    /// Samples one basis index from the precomputed distribution (one RNG
    /// draw, O(n) binary search).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen_range(0.0..1.0);
        // First basis index whose cumulative mass exceeds the draw; clamp to
        // the last index to absorb rounding shortfall in the final prefix sum.
        self.cumulative
            .partition_point(|&c| c <= r)
            .min(self.cumulative.len() - 1)
    }

    /// Number of basis states covered.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True for an empty table (never produced by
    /// [`StateVector::measurement_sampler`]).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::RngSeed;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.amplitude(0) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn x_gate_flips_bit() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::x(), 0);
        // Qubit 0 is the MSB: |10> = index 2.
        assert!((s.amplitude(2) - Complex::ONE).norm() < 1e-12);
        s.apply_one_qubit(&standard::x(), 1);
        assert!((s.amplitude(3) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn bell_state_via_h_and_cnot() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_two_qubit(&standard::cnot(), 0, 1);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1] < 1e-12 && p[2] < 1e-12);
    }

    #[test]
    fn two_qubit_gate_matches_circuit_unitary() {
        // Apply SYC to qubits (2, 0) of a 3-qubit register and compare with the
        // full-matrix embedding.
        let syc = gates::GateType::syc();
        let mut s = StateVector::zero_state(3);
        // Prepare a non-trivial input state.
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_one_qubit(&standard::h(), 1);
        s.apply_one_qubit(&standard::h(), 2);
        let mut reference = s.clone();
        s.apply_two_qubit(syc.unitary(), 2, 0);
        let full = circuit::embed_two_qubit(syc.unitary(), 2, 0, 3);
        let expect = full.mul_vec(reference.amplitudes());
        for (i, e) in expect.iter().enumerate() {
            assert!((s.amplitude(i) - *e).norm() < 1e-12);
        }
        // Norm preserved.
        reference.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_one_tracks_rotations() {
        let mut s = StateVector::zero_state(1);
        assert!(s.prob_one(0) < 1e-12);
        s.apply_one_qubit(&standard::ry(std::f64::consts::FRAC_PI_2), 0);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        s.apply_one_qubit(&standard::x(), 0);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::h(), 0);
        let mut rng = RngSeed(3).rng();
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            counts[s.sample_measurement(&mut rng)] += 1;
        }
        // Only |00> and |10> should appear, roughly half/half.
        assert_eq!(counts[1] + counts[3], 0);
        let frac = counts[0] as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn fidelity_and_inner_product() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 1);
        let c = StateVector::basis_state(2, 2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&c) < 1e-12);
    }

    #[test]
    fn normalize_after_damping_like_operation() {
        let mut s = StateVector::zero_state(1);
        s.apply_one_qubit(&standard::h(), 0);
        // A non-unitary Kraus-like operator.
        let k = Mat2::from_real(&[1.0, 0.0, 0.0, 0.5]);
        s.apply_one_qubit(&k, 0);
        assert!(s.norm_sqr() < 1.0);
        s.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "qubit out of range")]
    fn out_of_range_qubit_panics() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::x(), 2);
    }

    #[test]
    fn insert_zero_bit_enumerates_clear_bit_indices() {
        for shift in 0..4usize {
            let mask = 1usize << shift;
            let expected: Vec<usize> = (0..32).filter(|i| i & mask == 0).collect();
            let actual: Vec<usize> = (0..16).map(|k| insert_zero_bit(k, shift)).collect();
            assert_eq!(actual, expected, "shift = {shift}");
        }
    }

    /// A random-ish dense state for sweep equality tests.
    fn scrambled_state(n: usize) -> StateVector {
        let mut s = StateVector::zero_state(n);
        for q in 0..n {
            s.apply_one_qubit(&standard::ry(0.3 + 0.1 * q as f64), q);
            s.apply_one_qubit(&standard::rz(1.1 * q as f64 + 0.2), q);
        }
        for q in 1..n {
            s.apply_two_qubit(&standard::cnot(), q - 1, q);
        }
        s
    }

    #[test]
    fn threaded_sweeps_are_bit_identical_below_and_above_threshold() {
        // One size below the parallel threshold (serial fallback) and one at
        // it (actual scoped workers when threads > 1).
        for n in [PARALLEL_SWEEP_MIN_QUBITS - 1, PARALLEL_SWEEP_MIN_QUBITS] {
            let base = scrambled_state(n);
            let syc = gates::GateType::syc();
            let mut serial = base.clone();
            serial.apply_one_qubit(&standard::h(), n - 1);
            serial.apply_two_qubit(syc.unitary(), 0, n - 1);
            for threads in [2usize, 3, 8] {
                let mut par = base.clone();
                par.apply_one_qubit_threaded(&standard::h(), n - 1, threads);
                par.apply_two_qubit_threaded(syc.unitary(), 0, n - 1, threads);
                assert_eq!(par, serial, "n = {n}, threads = {threads}");
            }
        }
    }

    #[test]
    fn prob_one_matches_full_scan() {
        let s = scrambled_state(5);
        for q in 0..5 {
            let mask = 1usize << (5 - 1 - q);
            let full: f64 = s
                .amplitudes()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert_eq!(s.prob_one(q), full, "q = {q}");
        }
    }

    #[test]
    fn measurement_sampler_matches_linear_scan() {
        let s = scrambled_state(6);
        let sampler = s.measurement_sampler();
        assert_eq!(sampler.len(), 64);
        assert!(!sampler.is_empty());
        // Same seed stream: the binary search picks the same outcomes as the
        // linear subtraction scan (both consume one draw per shot).
        let mut rng_a = RngSeed(41).rng();
        let mut rng_b = RngSeed(41).rng();
        for _ in 0..500 {
            assert_eq!(sampler.sample(&mut rng_a), s.sample_measurement(&mut rng_b));
        }
    }
}
