//! Dense state-vector representation and gate application.
//!
//! # Amplitude sweeps
//!
//! Gate application iterates only the *base indices* of the register — the
//! `2^(n-1)` (one-qubit) or `2^(n-2)` (two-qubit) indices whose target bits
//! are zero — instead of scanning all `2^n` amplitudes and mask-testing each
//! one. Above [`PARALLEL_SWEEP_MIN_QUBITS`] the
//! [`apply_one_qubit_threaded`](StateVector::apply_one_qubit_threaded) /
//! [`apply_two_qubit_threaded`](StateVector::apply_two_qubit_threaded)
//! variants additionally split that base-index space across scoped worker
//! threads (the [`apply_one_qubit_with`](StateVector::apply_one_qubit_with) /
//! [`apply_two_qubit_with`](StateVector::apply_two_qubit_with) variants take
//! the threshold as a parameter so the engine can expose it as a tuning
//! knob). Every base index owns a disjoint set of amplitudes and each
//! amplitude's update is computed from the same inputs with the same
//! arithmetic regardless of the split, so results are **bit-identical for any
//! thread count**.
//!
//! # Split-complex inner blocks
//!
//! Within a contiguous run of base indices the inner loop processes
//! fixed-width blocks ([`LANES_1Q`] pairs / [`LANES_2Q`] quadruples) through
//! stack-local *split-complex* scratch: amplitudes are deinterleaved into
//! separate re/im `f64` arrays, updated with lane-indexed loops over plain
//! doubles, and reinterleaved. The interleaved `Vec<Complex>` layout is great
//! for cache locality but hides the data parallelism from the
//! autovectorizer (each `Complex` multiply mixes re/im lanes); the
//! split-complex blocks expose straight-line same-shape arithmetic across
//! lanes instead. Every lane evaluates the **same floating-point expression
//! tree** as the scalar `Complex` operators (`(re·re − im·im)` then
//! left-associated additions), so the restructuring is bit-identical to the
//! scalar tail that handles run remainders.

use std::ops::Range;

use circuit::QubitId;
use qmath::{Complex, Mat2, Mat4};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of qubits at or above which the `apply_*_threaded` sweeps split the
/// amplitude space across worker threads. Below this (≤ 8192 amplitudes) the
/// scoped-thread setup costs more than the sweep itself and the state is
/// updated serially regardless of the requested thread count.
pub const PARALLEL_SWEEP_MIN_QUBITS: usize = 14;

/// Amplitude *pairs* per split-complex block of a one-qubit sweep (16
/// doubles of input — two AVX-512 registers or four AVX2 registers per
/// re/im stream, comfortably inside the 16-register x86-64 budget).
pub const LANES_1Q: usize = 8;

/// Amplitude *quadruples* per split-complex block of a two-qubit sweep (the
/// 4×4 kernel touches four input streams, so half the width of the one-qubit
/// block keeps the live scratch within the register budget).
pub const LANES_2Q: usize = 4;

/// One split-complex block of a one-qubit sweep: applies the 2×2 kernel
/// `[[m00, m01], [m10, m11]]` to the [`LANES_1Q`] amplitude pairs starting at
/// `(pa, pb)`. Bit-identical to the scalar `m00 * a0 + m01 * a1` /
/// `m10 * a0 + m11 * a1` updates (see the module docs).
///
/// SAFETY: `pa` and `pb` must each point at `LANES_1Q` valid amplitudes and
/// the two streams must not overlap.
#[inline(always)]
unsafe fn one_qubit_block(
    pa: *mut Complex,
    pb: *mut Complex,
    m00: Complex,
    m01: Complex,
    m10: Complex,
    m11: Complex,
) {
    let mut ar = [0.0f64; LANES_1Q];
    let mut ai = [0.0f64; LANES_1Q];
    let mut br = [0.0f64; LANES_1Q];
    let mut bi = [0.0f64; LANES_1Q];
    for l in 0..LANES_1Q {
        let a = *pa.add(l);
        ar[l] = a.re;
        ai[l] = a.im;
        let b = *pb.add(l);
        br[l] = b.re;
        bi[l] = b.im;
    }
    let mut o0r = [0.0f64; LANES_1Q];
    let mut o0i = [0.0f64; LANES_1Q];
    let mut o1r = [0.0f64; LANES_1Q];
    let mut o1i = [0.0f64; LANES_1Q];
    for l in 0..LANES_1Q {
        o0r[l] = (m00.re * ar[l] - m00.im * ai[l]) + (m01.re * br[l] - m01.im * bi[l]);
        o0i[l] = (m00.re * ai[l] + m00.im * ar[l]) + (m01.re * bi[l] + m01.im * br[l]);
        o1r[l] = (m10.re * ar[l] - m10.im * ai[l]) + (m11.re * br[l] - m11.im * bi[l]);
        o1i[l] = (m10.re * ai[l] + m10.im * ar[l]) + (m11.re * bi[l] + m11.im * br[l]);
    }
    for l in 0..LANES_1Q {
        *pa.add(l) = Complex::new(o0r[l], o0i[l]);
        *pb.add(l) = Complex::new(o1r[l], o1i[l]);
    }
}

/// One split-complex block of a two-qubit sweep: applies the 4×4 kernel `m`
/// to the [`LANES_2Q`] amplitude quadruples starting at the four stream
/// pointers `p` (basis order `|00⟩, |01⟩, |10⟩, |11⟩` of the target pair).
/// Bit-identical to the scalar four-term row updates (left-associated
/// additions — see the module docs).
///
/// SAFETY: each stream must point at `LANES_2Q` valid amplitudes and the four
/// streams must be pairwise disjoint.
#[inline(always)]
unsafe fn two_qubit_block(p: [*mut Complex; 4], m: &Mat4) {
    let mut re = [[0.0f64; LANES_2Q]; 4];
    let mut im = [[0.0f64; LANES_2Q]; 4];
    for s in 0..4 {
        for l in 0..LANES_2Q {
            let a = *p[s].add(l);
            re[s][l] = a.re;
            im[s][l] = a.im;
        }
    }
    let mut out_re = [[0.0f64; LANES_2Q]; 4];
    let mut out_im = [[0.0f64; LANES_2Q]; 4];
    for r in 0..4 {
        let (m0, m1, m2, m3) = (m[(r, 0)], m[(r, 1)], m[(r, 2)], m[(r, 3)]);
        for l in 0..LANES_2Q {
            out_re[r][l] = (m0.re * re[0][l] - m0.im * im[0][l])
                + (m1.re * re[1][l] - m1.im * im[1][l])
                + (m2.re * re[2][l] - m2.im * im[2][l])
                + (m3.re * re[3][l] - m3.im * im[3][l]);
            out_im[r][l] = (m0.re * im[0][l] + m0.im * re[0][l])
                + (m1.re * im[1][l] + m1.im * re[1][l])
                + (m2.re * im[2][l] + m2.im * re[2][l])
                + (m3.re * im[3][l] + m3.im * re[3][l]);
        }
    }
    for s in 0..4 {
        for l in 0..LANES_2Q {
            *p[s].add(l) = Complex::new(out_re[s][l], out_im[s][l]);
        }
    }
}

/// Returns `k` with a zero bit inserted at position `shift`: bits below
/// `shift` stay in place, bits at and above it move up by one. Enumerates the
/// base indices of a sweep (`insert_zero_bit(k, s)` for `k = 0..2^(n-1)`
/// visits exactly the indices whose bit `s` is clear, in increasing order).
#[inline(always)]
fn insert_zero_bit(k: usize, shift: usize) -> usize {
    ((k >> shift) << (shift + 1)) | (k & ((1usize << shift) - 1))
}

/// Raw cursor into the amplitude buffer, shared by the scoped sweep workers.
///
/// Safety contract: every worker receives a disjoint base-index range, and
/// distinct base indices address disjoint amplitude pairs/quadruples, so no
/// amplitude is ever aliased across threads during one sweep.
#[derive(Clone, Copy)]
struct AmpCursor(*mut Complex);

impl AmpCursor {
    /// Accessor (rather than direct field use) so closures capture the whole
    /// `Sync` wrapper instead of edition-2021 precise-capturing the raw
    /// pointer field.
    #[inline(always)]
    fn ptr(self) -> *mut Complex {
        self.0
    }
}

// SAFETY: the cursor is only dereferenced inside one sweep, where workers own
// disjoint index sets (see the struct docs).
unsafe impl Send for AmpCursor {}
unsafe impl Sync for AmpCursor {}

/// Runs `kernel` over `0..base_count`, split into contiguous chunks across at
/// most `threads` scoped workers. Serial when the register is below
/// `min_parallel_qubits` or only one worker is requested; the kernel performs
/// identical per-index arithmetic either way.
fn run_sweep(
    base_count: usize,
    num_qubits: usize,
    threads: usize,
    min_parallel_qubits: usize,
    kernel: impl Fn(Range<usize>) + Sync,
) {
    let workers = threads.max(1).min(base_count.max(1));
    if workers <= 1 || num_qubits < min_parallel_qubits {
        kernel(0..base_count);
        return;
    }
    let chunk = base_count.div_ceil(workers);
    // Sweep spans go through the process-wide collector (these workers are
    // too deep to thread an `Arc<Collector>` into) and only under its
    // sampling gate: the check is one relaxed load when sampling is off, so
    // the per-sweep kernel loop stays clean by default.
    let collector = telemetry::global();
    std::thread::scope(|scope| {
        let kernel = &kernel;
        for w in 0..workers {
            let start = w * chunk;
            let end = (start + chunk).min(base_count);
            if start < end {
                scope.spawn(move || {
                    let mut span = telemetry::Span::enter_sampled(
                        Some(collector),
                        "sweep_range",
                        telemetry::SpanId::NONE,
                    );
                    if span.recording() {
                        span.set_attr("qubits", num_qubits as u64);
                        span.set_attr("base_start", start as u64);
                        span.set_attr("base_len", (end - start) as u64);
                    }
                    kernel(start..end);
                });
            }
        }
    });
}

/// A pure state of an `n`-qubit register, stored as `2^n` amplitudes in
/// big-endian basis ordering (qubit 0 is the most significant bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    /// Panics if `num_qubits` is zero or larger than 26 (the dense
    /// representation would not fit in memory).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "need at least one qubit");
        assert!(num_qubits <= 26, "dense simulation limited to 26 qubits");
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// A specific computational basis state.
    ///
    /// # Panics
    /// Panics if `basis_index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, basis_index: usize) -> Self {
        let mut s = StateVector::zero_state(num_qubits);
        assert!(basis_index < s.amplitudes.len(), "basis index out of range");
        s.amplitudes[0] = Complex::ZERO;
        s.amplitudes[basis_index] = Complex::ONE;
        s
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude of a basis state.
    pub fn amplitude(&self, basis_index: usize) -> Complex {
        self.amplitudes[basis_index]
    }

    /// All amplitudes.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Squared norm (should stay 1 for unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm.
    ///
    /// # Panics
    /// Panics if the state has (numerically) zero norm.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-300, "cannot normalize a zero state");
        for a in &mut self.amplitudes {
            *a = *a / n;
        }
    }

    /// Probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Applies a 2×2 unitary (or Kraus operator) to qubit `q` in place.
    ///
    /// The operator is the stack-allocated [`Mat2`]; per-gate application
    /// reads it straight from registers with no per-call allocation. The sweep
    /// visits only the `2^(n-1)` base indices (bit `q` clear), touching each
    /// amplitude pair exactly once.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn apply_one_qubit(&mut self, m: &Mat2, q: QubitId) {
        self.apply_one_qubit_threaded(m, q, 1);
    }

    /// [`apply_one_qubit`](StateVector::apply_one_qubit) with the base-index
    /// sweep split across up to `threads` scoped worker threads (registers
    /// below [`PARALLEL_SWEEP_MIN_QUBITS`] stay serial). Bit-identical to the
    /// serial sweep for any thread count.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn apply_one_qubit_threaded(&mut self, m: &Mat2, q: QubitId, threads: usize) {
        self.apply_one_qubit_with(m, q, threads, PARALLEL_SWEEP_MIN_QUBITS);
    }

    /// [`apply_one_qubit_threaded`](StateVector::apply_one_qubit_threaded)
    /// with an explicit parallel-sweep threshold: registers below
    /// `min_parallel_qubits` stay serial regardless of `threads`. The engine
    /// exposes this as a tuning knob; the threshold only affects scheduling,
    /// never the result.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn apply_one_qubit_with(
        &mut self,
        m: &Mat2,
        q: QubitId,
        threads: usize,
        min_parallel_qubits: usize,
    ) {
        assert!(q < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - q;
        let mask = 1usize << shift;
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let half = self.amplitudes.len() / 2;
        let cursor = AmpCursor(self.amplitudes.as_mut_ptr());
        let kernel = move |range: Range<usize>| {
            let amps = cursor.ptr();
            // Walk the range in contiguous runs: base indices whose low bits
            // (below `shift`) increment without carrying map to consecutive
            // amplitude indices, so both partner streams are straight pointer
            // walks (`(i0 + o) | mask == (i0 | mask) + o` while `o` stays
            // inside the run).
            let mut k = range.start;
            while k < range.end {
                let run = (mask - (k & (mask - 1))).min(range.end - k);
                let i0 = insert_zero_bit(k, shift);
                // SAFETY: distinct base indices map to distinct (i, j) pairs
                // and workers own disjoint base-index ranges (see AmpCursor).
                unsafe {
                    let pa = amps.add(i0);
                    let pb = amps.add(i0 | mask);
                    let mut o = 0usize;
                    while o + LANES_1Q <= run {
                        one_qubit_block(pa.add(o), pb.add(o), m00, m01, m10, m11);
                        o += LANES_1Q;
                    }
                    // Scalar tail for the run remainder (identical arithmetic
                    // to the block — see the module docs).
                    for t in o..run {
                        let a0 = *pa.add(t);
                        let a1 = *pb.add(t);
                        *pa.add(t) = m00 * a0 + m01 * a1;
                        *pb.add(t) = m10 * a0 + m11 * a1;
                    }
                }
                k += run;
            }
        };
        run_sweep(half, self.num_qubits, threads, min_parallel_qubits, kernel);
    }

    /// Applies a 4×4 unitary (or Kraus operator) to qubits `(q0, q1)` in place;
    /// `q0` is the most significant qubit of the matrix. The sweep visits only
    /// the `2^(n-2)` base indices (both target bits clear).
    ///
    /// # Panics
    /// Panics if the qubits are out of range or equal.
    pub fn apply_two_qubit(&mut self, m: &Mat4, q0: QubitId, q1: QubitId) {
        self.apply_two_qubit_threaded(m, q0, q1, 1);
    }

    /// [`apply_two_qubit`](StateVector::apply_two_qubit) with the base-index
    /// sweep split across up to `threads` scoped worker threads (registers
    /// below [`PARALLEL_SWEEP_MIN_QUBITS`] stay serial). Bit-identical to the
    /// serial sweep for any thread count.
    ///
    /// # Panics
    /// Panics if the qubits are out of range or equal.
    pub fn apply_two_qubit_threaded(&mut self, m: &Mat4, q0: QubitId, q1: QubitId, threads: usize) {
        self.apply_two_qubit_with(m, q0, q1, threads, PARALLEL_SWEEP_MIN_QUBITS);
    }

    /// [`apply_two_qubit_threaded`](StateVector::apply_two_qubit_threaded)
    /// with an explicit parallel-sweep threshold (see
    /// [`apply_one_qubit_with`](StateVector::apply_one_qubit_with)).
    ///
    /// # Panics
    /// Panics if the qubits are out of range or equal.
    pub fn apply_two_qubit_with(
        &mut self,
        m: &Mat4,
        q0: QubitId,
        q1: QubitId,
        threads: usize,
        min_parallel_qubits: usize,
    ) {
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(q0, q1, "qubits must be distinct");
        let s0 = self.num_qubits - 1 - q0;
        let s1 = self.num_qubits - 1 - q1;
        let mask0 = 1usize << s0;
        let mask1 = 1usize << s1;
        let (lo, hi) = (s0.min(s1), s0.max(s1));
        let m = *m;
        let quarter = self.amplitudes.len() / 4;
        let cursor = AmpCursor(self.amplitudes.as_mut_ptr());
        let lo_mask = (1usize << lo) - 1;
        let kernel = move |range: Range<usize>| {
            let amps = cursor.ptr();
            // Walk the range in contiguous runs below the lower inserted bit
            // (see the one-qubit kernel): within a run the four amplitude
            // indices advance by one each step.
            let mut k = range.start;
            while k < range.end {
                let run = ((lo_mask + 1) - (k & lo_mask)).min(range.end - k);
                // Insert zeros at the lower shift first, then at the higher
                // one (whose position is unchanged by the first insertion).
                let base = insert_zero_bit(insert_zero_bit(k, lo), hi);
                // SAFETY: distinct base indices map to distinct index
                // quadruples and workers own disjoint base-index ranges (see
                // AmpCursor). Within a run all four partner streams advance
                // by one per step, so they are straight pointer walks.
                unsafe {
                    let p = [
                        amps.add(base),
                        amps.add(base | mask1),
                        amps.add(base | mask0),
                        amps.add(base | mask0 | mask1),
                    ];
                    let mut o = 0usize;
                    while o + LANES_2Q <= run {
                        two_qubit_block([p[0].add(o), p[1].add(o), p[2].add(o), p[3].add(o)], &m);
                        o += LANES_2Q;
                    }
                    // Scalar tail for the run remainder (identical arithmetic
                    // to the block — see the module docs).
                    for t in o..run {
                        let a0 = *p[0].add(t);
                        let a1 = *p[1].add(t);
                        let a2 = *p[2].add(t);
                        let a3 = *p[3].add(t);
                        *p[0].add(t) =
                            m[(0, 0)] * a0 + m[(0, 1)] * a1 + m[(0, 2)] * a2 + m[(0, 3)] * a3;
                        *p[1].add(t) =
                            m[(1, 0)] * a0 + m[(1, 1)] * a1 + m[(1, 2)] * a2 + m[(1, 3)] * a3;
                        *p[2].add(t) =
                            m[(2, 0)] * a0 + m[(2, 1)] * a1 + m[(2, 2)] * a2 + m[(2, 3)] * a3;
                        *p[3].add(t) =
                            m[(3, 0)] * a0 + m[(3, 1)] * a1 + m[(3, 2)] * a2 + m[(3, 3)] * a3;
                    }
                }
                k += run;
            }
        };
        run_sweep(
            quarter,
            self.num_qubits,
            threads,
            min_parallel_qubits,
            kernel,
        );
    }

    /// Probability of measuring qubit `q` in state `|1⟩`.
    ///
    /// Iterates only the `2^(n-1)` indices whose bit `q` is set (in the same
    /// increasing order a full scan would visit them, so the floating-point
    /// sum is unchanged).
    pub fn prob_one(&self, q: QubitId) -> f64 {
        assert!(q < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - q;
        let mask = 1usize << shift;
        let half = self.amplitudes.len() / 2;
        let mut sum = 0.0;
        for k in 0..half {
            sum += self.amplitudes[insert_zero_bit(k, shift) | mask].norm_sqr();
        }
        sum
    }

    /// Samples a complete computational-basis measurement, returning the basis
    /// index. The state is *not* collapsed (trajectory shots re-sample from the
    /// final distribution).
    ///
    /// This linear scan is O(2^n) per shot; when many shots sample the *same*
    /// state (the engine's noiseless fast path), build a
    /// [`MeasurementSampler`] once and binary-search per shot instead.
    pub fn sample_measurement<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut r: f64 = rng.gen_range(0.0..1.0);
        for (i, a) in self.amplitudes.iter().enumerate() {
            let p = a.norm_sqr();
            if r < p {
                return i;
            }
            r -= p;
        }
        self.amplitudes.len() - 1
    }

    /// Builds the precomputed cumulative-distribution sampler for this state.
    ///
    /// One O(2^n) prefix-sum pays for O(n)-per-shot sampling afterwards —
    /// the engine's noiseless fast path uses this to turn its O(shots·2^n)
    /// sampling loop into O(2^n + shots·n). Each
    /// [`MeasurementSampler::sample`] consumes exactly one RNG draw, the same
    /// as [`sample_measurement`](StateVector::sample_measurement).
    pub fn measurement_sampler(&self) -> MeasurementSampler {
        let mut cumulative = Vec::with_capacity(self.amplitudes.len());
        let mut acc = 0.0f64;
        for a in &self.amplitudes {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        MeasurementSampler { cumulative }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits, "dimension mismatch");
        self.amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }
}

/// Precomputed cumulative measurement distribution of one [`StateVector`].
///
/// Built once via [`StateVector::measurement_sampler`]; each
/// [`sample`](MeasurementSampler::sample) is then a single RNG draw plus a
/// binary search over the prefix sums, instead of an O(2^n) rescan of the
/// amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSampler {
    /// `cumulative[i]` is the total probability mass of basis states `0..=i`.
    cumulative: Vec<f64>,
}

impl MeasurementSampler {
    /// Samples one basis index from the precomputed distribution (one RNG
    /// draw, O(n) binary search).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen_range(0.0..1.0);
        // First basis index whose cumulative mass exceeds the draw; clamp to
        // the last index to absorb rounding shortfall in the final prefix sum.
        self.cumulative
            .partition_point(|&c| c <= r)
            .min(self.cumulative.len() - 1)
    }

    /// Number of basis states covered.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True for an empty table (never produced by
    /// [`StateVector::measurement_sampler`]).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::RngSeed;

    #[test]
    fn sampled_sweep_spans_reach_the_global_collector() {
        // The global collector starts disabled; sweep spans only appear once
        // both the enable and sampling knobs are set, and stop again after.
        let collector = telemetry::global();
        let mut state = StateVector::zero_state(4);
        state.apply_one_qubit_with(&standard::h(), 0, 2, 2);
        assert!(collector.completed_spans().is_empty());

        collector.set_enabled(true);
        collector.set_sampling(1);
        let mut state = StateVector::zero_state(4);
        state.apply_one_qubit_with(&standard::h(), 0, 2, 2);
        collector.set_sampling(0);
        collector.set_enabled(false);

        let spans = collector.drain_spans();
        assert!(
            spans.iter().any(|s| s.name == "sweep_range"),
            "expected at least one sweep span, got {spans:?}"
        );
    }

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.amplitude(0) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn x_gate_flips_bit() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::x(), 0);
        // Qubit 0 is the MSB: |10> = index 2.
        assert!((s.amplitude(2) - Complex::ONE).norm() < 1e-12);
        s.apply_one_qubit(&standard::x(), 1);
        assert!((s.amplitude(3) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn bell_state_via_h_and_cnot() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_two_qubit(&standard::cnot(), 0, 1);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1] < 1e-12 && p[2] < 1e-12);
    }

    #[test]
    fn two_qubit_gate_matches_circuit_unitary() {
        // Apply SYC to qubits (2, 0) of a 3-qubit register and compare with the
        // full-matrix embedding.
        let syc = gates::GateType::syc();
        let mut s = StateVector::zero_state(3);
        // Prepare a non-trivial input state.
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_one_qubit(&standard::h(), 1);
        s.apply_one_qubit(&standard::h(), 2);
        let mut reference = s.clone();
        s.apply_two_qubit(syc.unitary(), 2, 0);
        let full = circuit::embed_two_qubit(syc.unitary(), 2, 0, 3);
        let expect = full.mul_vec(reference.amplitudes());
        for (i, e) in expect.iter().enumerate() {
            assert!((s.amplitude(i) - *e).norm() < 1e-12);
        }
        // Norm preserved.
        reference.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_one_tracks_rotations() {
        let mut s = StateVector::zero_state(1);
        assert!(s.prob_one(0) < 1e-12);
        s.apply_one_qubit(&standard::ry(std::f64::consts::FRAC_PI_2), 0);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        s.apply_one_qubit(&standard::x(), 0);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::h(), 0);
        let mut rng = RngSeed(3).rng();
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            counts[s.sample_measurement(&mut rng)] += 1;
        }
        // Only |00> and |10> should appear, roughly half/half.
        assert_eq!(counts[1] + counts[3], 0);
        let frac = counts[0] as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn fidelity_and_inner_product() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 1);
        let c = StateVector::basis_state(2, 2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&c) < 1e-12);
    }

    #[test]
    fn normalize_after_damping_like_operation() {
        let mut s = StateVector::zero_state(1);
        s.apply_one_qubit(&standard::h(), 0);
        // A non-unitary Kraus-like operator.
        let k = Mat2::from_real(&[1.0, 0.0, 0.0, 0.5]);
        s.apply_one_qubit(&k, 0);
        assert!(s.norm_sqr() < 1.0);
        s.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "qubit out of range")]
    fn out_of_range_qubit_panics() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::x(), 2);
    }

    #[test]
    fn insert_zero_bit_enumerates_clear_bit_indices() {
        for shift in 0..4usize {
            let mask = 1usize << shift;
            let expected: Vec<usize> = (0..32).filter(|i| i & mask == 0).collect();
            let actual: Vec<usize> = (0..16).map(|k| insert_zero_bit(k, shift)).collect();
            assert_eq!(actual, expected, "shift = {shift}");
        }
    }

    /// A random-ish dense state for sweep equality tests.
    fn scrambled_state(n: usize) -> StateVector {
        let mut s = StateVector::zero_state(n);
        for q in 0..n {
            s.apply_one_qubit(&standard::ry(0.3 + 0.1 * q as f64), q);
            s.apply_one_qubit(&standard::rz(1.1 * q as f64 + 0.2), q);
        }
        for q in 1..n {
            s.apply_two_qubit(&standard::cnot(), q - 1, q);
        }
        s
    }

    #[test]
    fn threaded_sweeps_are_bit_identical_below_and_above_threshold() {
        // One size below the parallel threshold (serial fallback) and one at
        // it (actual scoped workers when threads > 1).
        for n in [PARALLEL_SWEEP_MIN_QUBITS - 1, PARALLEL_SWEEP_MIN_QUBITS] {
            let base = scrambled_state(n);
            let syc = gates::GateType::syc();
            let mut serial = base.clone();
            serial.apply_one_qubit(&standard::h(), n - 1);
            serial.apply_two_qubit(syc.unitary(), 0, n - 1);
            for threads in [2usize, 3, 8] {
                let mut par = base.clone();
                par.apply_one_qubit_threaded(&standard::h(), n - 1, threads);
                par.apply_two_qubit_threaded(syc.unitary(), 0, n - 1, threads);
                assert_eq!(par, serial, "n = {n}, threads = {threads}");
            }
        }
    }

    #[test]
    fn split_complex_blocks_match_the_scalar_expressions_exactly() {
        // Applying a gate to qubit 0 of a 6-qubit register yields runs of 32
        // (1q) / 16 (2q) base indices, so the split-complex blocks carry the
        // whole sweep. The result must be bit-identical (assert_eq on f64
        // pairs, no tolerance) to the naive scalar Complex updates.
        let base = scrambled_state(6);
        let m = standard::u3(0.7, 0.3, 1.1);
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let mask = 1usize << 5;
        let mut expect = base.amplitudes().to_vec();
        for i in 0..64 {
            if i & mask == 0 {
                let j = i | mask;
                let (a0, a1) = (expect[i], expect[j]);
                expect[i] = m00 * a0 + m01 * a1;
                expect[j] = m10 * a0 + m11 * a1;
            }
        }
        let mut got = base.clone();
        got.apply_one_qubit(&m, 0);
        assert_eq!(got.amplitudes(), &expect[..]);

        let syc = gates::GateType::syc();
        let u = *syc.unitary();
        let (mask0, mask1) = (1usize << 5, 1usize << 4);
        let mut expect = base.amplitudes().to_vec();
        for i in 0..64 {
            if i & (mask0 | mask1) == 0 {
                let idx = [i, i | mask1, i | mask0, i | mask0 | mask1];
                let a = idx.map(|k| expect[k]);
                for (r, &k) in idx.iter().enumerate() {
                    expect[k] =
                        u[(r, 0)] * a[0] + u[(r, 1)] * a[1] + u[(r, 2)] * a[2] + u[(r, 3)] * a[3];
                }
            }
        }
        let mut got = base.clone();
        got.apply_two_qubit(&u, 0, 1);
        assert_eq!(got.amplitudes(), &expect[..]);
    }

    #[test]
    fn explicit_sweep_threshold_is_invisible_in_the_result() {
        // The `_with` variants only reschedule: any threshold (including one
        // that forces scoped workers on a tiny register) must be bit-identical
        // to the serial sweep.
        let base = scrambled_state(6);
        let syc = gates::GateType::syc();
        let mut serial = base.clone();
        serial.apply_one_qubit(&standard::h(), 2);
        serial.apply_two_qubit(syc.unitary(), 0, 5);
        for min_parallel in [0usize, 6, 7, usize::MAX] {
            let mut par = base.clone();
            par.apply_one_qubit_with(&standard::h(), 2, 4, min_parallel);
            par.apply_two_qubit_with(syc.unitary(), 0, 5, 4, min_parallel);
            assert_eq!(par, serial, "min_parallel = {min_parallel}");
        }
    }

    #[test]
    fn prob_one_matches_full_scan() {
        let s = scrambled_state(5);
        for q in 0..5 {
            let mask = 1usize << (5 - 1 - q);
            let full: f64 = s
                .amplitudes()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert_eq!(s.prob_one(q), full, "q = {q}");
        }
    }

    #[test]
    fn measurement_sampler_matches_linear_scan() {
        let s = scrambled_state(6);
        let sampler = s.measurement_sampler();
        assert_eq!(sampler.len(), 64);
        assert!(!sampler.is_empty());
        // Same seed stream: the binary search picks the same outcomes as the
        // linear subtraction scan (both consume one draw per shot).
        let mut rng_a = RngSeed(41).rng();
        let mut rng_b = RngSeed(41).rng();
        for _ in 0..500 {
            assert_eq!(sampler.sample(&mut rng_a), s.sample_measurement(&mut rng_b));
        }
    }
}
