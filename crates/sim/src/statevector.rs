//! Dense state-vector representation and gate application.

use circuit::QubitId;
use qmath::{Complex, Mat2, Mat4};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A pure state of an `n`-qubit register, stored as `2^n` amplitudes in
/// big-endian basis ordering (qubit 0 is the most significant bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    /// Panics if `num_qubits` is zero or larger than 26 (the dense
    /// representation would not fit in memory).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "need at least one qubit");
        assert!(num_qubits <= 26, "dense simulation limited to 26 qubits");
        let mut amplitudes = vec![Complex::ZERO; 1 << num_qubits];
        amplitudes[0] = Complex::ONE;
        StateVector {
            num_qubits,
            amplitudes,
        }
    }

    /// A specific computational basis state.
    ///
    /// # Panics
    /// Panics if `basis_index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, basis_index: usize) -> Self {
        let mut s = StateVector::zero_state(num_qubits);
        assert!(basis_index < s.amplitudes.len(), "basis index out of range");
        s.amplitudes[0] = Complex::ZERO;
        s.amplitudes[basis_index] = Complex::ONE;
        s
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Amplitude of a basis state.
    pub fn amplitude(&self, basis_index: usize) -> Complex {
        self.amplitudes[basis_index]
    }

    /// All amplitudes.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Squared norm (should stay 1 for unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm.
    ///
    /// # Panics
    /// Panics if the state has (numerically) zero norm.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 1e-300, "cannot normalize a zero state");
        for a in &mut self.amplitudes {
            *a = *a / n;
        }
    }

    /// Probability distribution over basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Applies a 2×2 unitary (or Kraus operator) to qubit `q` in place.
    ///
    /// The operator is the stack-allocated [`Mat2`]; per-gate application
    /// reads it straight from registers with no per-call allocation.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    pub fn apply_one_qubit(&mut self, m: &Mat2, q: QubitId) {
        assert!(q < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - q;
        let mask = 1usize << shift;
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let dim = self.amplitudes.len();
        let mut i = 0usize;
        while i < dim {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amplitudes[i];
                let a1 = self.amplitudes[j];
                self.amplitudes[i] = m00 * a0 + m01 * a1;
                self.amplitudes[j] = m10 * a0 + m11 * a1;
            }
            i += 1;
        }
    }

    /// Applies a 4×4 unitary (or Kraus operator) to qubits `(q0, q1)` in place;
    /// `q0` is the most significant qubit of the matrix.
    ///
    /// # Panics
    /// Panics if the qubits are out of range or equal.
    pub fn apply_two_qubit(&mut self, m: &Mat4, q0: QubitId, q1: QubitId) {
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits,
            "qubit out of range"
        );
        assert_ne!(q0, q1, "qubits must be distinct");
        let s0 = self.num_qubits - 1 - q0;
        let s1 = self.num_qubits - 1 - q1;
        let mask0 = 1usize << s0;
        let mask1 = 1usize << s1;
        let dim = self.amplitudes.len();
        for i in 0..dim {
            if i & mask0 == 0 && i & mask1 == 0 {
                let i00 = i;
                let i01 = i | mask1;
                let i10 = i | mask0;
                let i11 = i | mask0 | mask1;
                let a = [
                    self.amplitudes[i00],
                    self.amplitudes[i01],
                    self.amplitudes[i10],
                    self.amplitudes[i11],
                ];
                for (r, &idx) in [i00, i01, i10, i11].iter().enumerate() {
                    let mut acc = Complex::ZERO;
                    for (c, &amp) in a.iter().enumerate() {
                        acc += m[(r, c)] * amp;
                    }
                    self.amplitudes[idx] = acc;
                }
            }
        }
    }

    /// Probability of measuring qubit `q` in state `|1⟩`.
    pub fn prob_one(&self, q: QubitId) -> f64 {
        assert!(q < self.num_qubits, "qubit out of range");
        let shift = self.num_qubits - 1 - q;
        let mask = 1usize << shift;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Samples a complete computational-basis measurement, returning the basis
    /// index. The state is *not* collapsed (trajectory shots re-sample from the
    /// final distribution).
    pub fn sample_measurement<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut r: f64 = rng.gen_range(0.0..1.0);
        for (i, a) in self.amplitudes.iter().enumerate() {
            let p = a.norm_sqr();
            if r < p {
                return i;
            }
            r -= p;
        }
        self.amplitudes.len() - 1
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits, "dimension mismatch");
        self.amplitudes
            .iter()
            .zip(other.amplitudes.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::RngSeed;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.amplitude(0) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn x_gate_flips_bit() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::x(), 0);
        // Qubit 0 is the MSB: |10> = index 2.
        assert!((s.amplitude(2) - Complex::ONE).norm() < 1e-12);
        s.apply_one_qubit(&standard::x(), 1);
        assert!((s.amplitude(3) - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn bell_state_via_h_and_cnot() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_two_qubit(&standard::cnot(), 0, 1);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
        assert!(p[1] < 1e-12 && p[2] < 1e-12);
    }

    #[test]
    fn two_qubit_gate_matches_circuit_unitary() {
        // Apply SYC to qubits (2, 0) of a 3-qubit register and compare with the
        // full-matrix embedding.
        let syc = gates::GateType::syc();
        let mut s = StateVector::zero_state(3);
        // Prepare a non-trivial input state.
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_one_qubit(&standard::h(), 1);
        s.apply_one_qubit(&standard::h(), 2);
        let mut reference = s.clone();
        s.apply_two_qubit(syc.unitary(), 2, 0);
        let full = circuit::embed_two_qubit(syc.unitary(), 2, 0, 3);
        let expect = full.mul_vec(reference.amplitudes());
        for (i, e) in expect.iter().enumerate() {
            assert!((s.amplitude(i) - *e).norm() < 1e-12);
        }
        // Norm preserved.
        reference.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_one_tracks_rotations() {
        let mut s = StateVector::zero_state(1);
        assert!(s.prob_one(0) < 1e-12);
        s.apply_one_qubit(&standard::ry(std::f64::consts::FRAC_PI_2), 0);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        s.apply_one_qubit(&standard::x(), 0);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::h(), 0);
        let mut rng = RngSeed(3).rng();
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            counts[s.sample_measurement(&mut rng)] += 1;
        }
        // Only |00> and |10> should appear, roughly half/half.
        assert_eq!(counts[1] + counts[3], 0);
        let frac = counts[0] as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn fidelity_and_inner_product() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 1);
        let c = StateVector::basis_state(2, 2);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        assert!(a.fidelity(&c) < 1e-12);
    }

    #[test]
    fn normalize_after_damping_like_operation() {
        let mut s = StateVector::zero_state(1);
        s.apply_one_qubit(&standard::h(), 0);
        // A non-unitary Kraus-like operator.
        let k = Mat2::from_real(&[1.0, 0.0, 0.0, 0.5]);
        s.apply_one_qubit(&k, 0);
        assert!(s.norm_sqr() < 1.0);
        s.normalize();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "qubit out of range")]
    fn out_of_range_qubit_panics() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&standard::x(), 2);
    }
}
