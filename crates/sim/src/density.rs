//! Exact density-matrix simulation for small registers.
//!
//! The trajectory sampler in [`crate::runner`] is the scalable path; this
//! module provides the exact channel evolution `ρ → Σ_i K_i ρ K_i†` used to
//! validate it (see `tests/sim_agreement.rs` at the workspace root).

use circuit::{Circuit, QubitId};
use qmath::{CMatrix, Complex, Mat2, Mat4};

use crate::channels::{Kraus1q, Kraus2q};
use crate::noise_model::NoiseModel;
use crate::precompiled::{AttachedChannel, PrecompiledCircuit, PrecompiledKind};

/// A density matrix over an `n`-qubit register.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: CMatrix,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    /// Panics if `num_qubits` is zero or greater than 10 (the dense `4^n`
    /// representation would be too large).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "need at least one qubit");
        assert!(
            num_qubits <= 10,
            "density-matrix simulation limited to 10 qubits"
        );
        let dim = 1 << num_qubits;
        let mut rho = CMatrix::zeros(dim, dim);
        rho[(0, 0)] = Complex::ONE;
        DensityMatrix { num_qubits, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw density matrix.
    pub fn matrix(&self) -> &CMatrix {
        &self.rho
    }

    /// Trace of the density matrix (should remain 1).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for the maximally mixed state.
    pub fn purity(&self) -> f64 {
        (&self.rho * &self.rho).trace().re
    }

    /// Diagonal of the density matrix: the outcome probability distribution.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.rows()).map(|i| self.rho[(i, i)].re).collect()
    }

    /// Applies a unitary acting on the full register: `ρ → U ρ U†`.
    pub fn apply_full_unitary(&mut self, u: &CMatrix) {
        self.rho = &(u * &self.rho) * &u.dagger();
    }

    /// Applies a 2×2 unitary to one qubit.
    pub fn apply_one_qubit(&mut self, m: &Mat2, q: QubitId) {
        let full = circuit::embed_one_qubit(m, q, self.num_qubits);
        self.apply_full_unitary(&full);
    }

    /// Applies a 4×4 unitary to a qubit pair.
    pub fn apply_two_qubit(&mut self, m: &Mat4, q0: QubitId, q1: QubitId) {
        let full = circuit::embed_two_qubit(m, q0, q1, self.num_qubits);
        self.apply_full_unitary(&full);
    }

    /// Applies a Kraus channel on one qubit: `ρ → Σ K ρ K†`.
    pub fn apply_channel_1q(&mut self, channel: &Kraus1q, q: QubitId) {
        let dim = self.rho.rows();
        let mut out = CMatrix::zeros(dim, dim);
        for k in channel.operators() {
            let full = circuit::embed_one_qubit(k, q, self.num_qubits);
            out = &out + &(&(&full * &self.rho) * &full.dagger());
        }
        self.rho = out;
    }

    /// Applies a Kraus channel on a qubit pair.
    pub fn apply_channel_2q(&mut self, channel: &Kraus2q, q0: QubitId, q1: QubitId) {
        let dim = self.rho.rows();
        let mut out = CMatrix::zeros(dim, dim);
        for k in channel.operators() {
            let full = circuit::embed_two_qubit(k, q0, q1, self.num_qubits);
            out = &out + &(&(&full * &self.rho) * &full.dagger());
        }
        self.rho = out;
    }

    /// Evolves the density matrix through a circuit under a noise model
    /// (measurements and barriers contribute only their relaxation noise;
    /// readout error is not included — it acts on classical outcomes).
    ///
    /// Lowers the circuit once via [`PrecompiledCircuit`] — the same
    /// simulation-ready ops the trajectory engine consumes, so the exact and
    /// Monte-Carlo paths cannot drift apart.
    pub fn evolve(circuit: &Circuit, noise: &NoiseModel) -> DensityMatrix {
        DensityMatrix::evolve_precompiled(&PrecompiledCircuit::new(circuit, noise))
    }

    /// Evolves the exact density matrix through an already-lowered circuit.
    pub fn evolve_precompiled(pre: &PrecompiledCircuit) -> DensityMatrix {
        let mut dm = DensityMatrix::zero_state(pre.num_qubits());
        for op in pre.ops() {
            match &op.kind {
                PrecompiledKind::Unitary1Q { matrix, qubit } => {
                    dm.apply_one_qubit(matrix, *qubit);
                }
                PrecompiledKind::Unitary2Q { matrix, q0, q1 } => {
                    dm.apply_two_qubit(matrix, *q0, *q1);
                }
                PrecompiledKind::Silent => {}
            }
            for carried in &op.carried {
                match carried {
                    AttachedChannel::One { channel, qubit } => {
                        dm.apply_channel_1q(channel, *qubit);
                    }
                    AttachedChannel::Two { channel, q0, q1 } => {
                        dm.apply_channel_2q(channel, *q0, *q1);
                    }
                }
            }
            match &op.depolarizing {
                Some(AttachedChannel::One { channel, qubit }) => {
                    dm.apply_channel_1q(channel, *qubit);
                }
                Some(AttachedChannel::Two { channel, q0, q1 }) => {
                    dm.apply_channel_2q(channel, *q0, *q1);
                }
                None => {}
            }
            for (q, channel) in &op.relaxation {
                dm.apply_channel_1q(channel, *q);
            }
        }
        dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::{amplitude_damping_kraus, depolarizing_1q, depolarizing_2q};
    use circuit::Operation;
    use device::DeviceModel;
    use gates::standard;

    #[test]
    fn pure_state_evolution_matches_statevector() {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        let device = DeviceModel::ideal(2, 1.0);
        let dm = DensityMatrix::evolve(&c, &NoiseModel::noiseless(&device));
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        assert!((dm.purity() - 1.0).abs() < 1e-10);
        let p = dm.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-10);
        assert!((p[3] - 0.5).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut dm = DensityMatrix::zero_state(1);
        dm.apply_one_qubit(&standard::h(), 0);
        assert!((dm.purity() - 1.0).abs() < 1e-10);
        dm.apply_channel_1q(&depolarizing_1q(0.2), 0);
        assert!(dm.purity() < 1.0);
        assert!((dm.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed_state() {
        let mut dm = DensityMatrix::zero_state(1);
        // p = 1 depolarizing: 3/4 chance of X/Y/Z; resulting state is
        // (|0><0| + X|0><0|X + Y..Y + Z..Z)/... not exactly maximally mixed for
        // this parameterization, but purity must drop substantially.
        dm.apply_channel_1q(&depolarizing_1q(0.75), 0);
        assert!(dm.purity() < 0.7);
    }

    #[test]
    fn amplitude_damping_decays_population_exactly() {
        let mut dm = DensityMatrix::zero_state(1);
        dm.apply_one_qubit(&standard::x(), 0);
        let gamma = 0.3;
        dm.apply_channel_1q(&amplitude_damping_kraus(gamma), 0);
        let p = dm.probabilities();
        assert!((p[1] - (1.0 - gamma)).abs() < 1e-10);
        assert!((p[0] - gamma).abs() < 1e-10);
    }

    #[test]
    fn two_qubit_channel_preserves_trace() {
        let mut dm = DensityMatrix::zero_state(2);
        dm.apply_one_qubit(&standard::h(), 0);
        dm.apply_two_qubit(&standard::cnot(), 0, 1);
        dm.apply_channel_2q(&depolarizing_2q(0.1), 0, 1);
        assert!((dm.trace() - 1.0).abs() < 1e-10);
        assert!(dm.purity() < 1.0);
    }

    #[test]
    fn noisy_evolution_spreads_probability() {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        let device = DeviceModel::ideal(2, 0.9);
        let mut noise = NoiseModel::from_device(&device);
        noise.with_relaxation = false;
        noise.with_readout_error = false;
        let dm = DensityMatrix::evolve(&c, &noise);
        let p = dm.probabilities();
        // Bell outcomes dominate but leakage appears.
        assert!(p[0] + p[3] > 0.85);
        assert!(p[1] + p[2] > 0.0);
        assert!((dm.trace() - 1.0).abs() < 1e-9);
    }
}
