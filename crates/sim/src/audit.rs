//! Bridge from lowered circuits to the `verify` crate's semantic rules.
//!
//! The static verifier never executes a shot; it needs a read-only view of
//! what the simulator *would* run. This module converts a
//! [`PrecompiledCircuit`] into the verifier's neutral [`KernelOp`] stream and
//! runs the semantic rules over it: every (possibly fused) kernel unitary,
//! every prebuilt Kraus channel trace-preserving, and — when an unfused
//! baseline is supplied — the fused stream equivalent to it and consuming
//! randomness in exactly the baseline's order (the `FusionPolicy::Safe`
//! invariant, proven statically instead of by sampling).
//!
//! ```
//! use circuit::{Circuit, Operation};
//! use sim::{FusionPolicy, PrecompiledCircuit};
//!
//! let mut c = Circuit::new(2);
//! c.push(Operation::h(0));
//! c.push(Operation::cnot(0, 1));
//! let fused = PrecompiledCircuit::ideal_with_fusion(&c, FusionPolicy::Safe);
//! let baseline = PrecompiledCircuit::ideal(&c);
//! let report = fused.verify_artifact(Some(&baseline));
//! assert!(!report.has_errors());
//! ```

use verify::{
    Artifact, ChannelKraus, ChannelView, KernelArtifact, KernelKind, KernelOp, Verifier,
    VerifyReport,
};

use crate::precompiled::{AttachedChannel, PrecompiledCircuit, PrecompiledKind, PrecompiledOp};

/// Converts one attached channel into the verifier's view.
fn channel_view(channel: &AttachedChannel) -> ChannelView {
    match channel {
        AttachedChannel::One { channel, qubit } => ChannelView {
            qubits: vec![*qubit],
            kraus: ChannelKraus::One(channel.operators().to_vec()),
            consumes_rng: !channel.is_identity(),
        },
        AttachedChannel::Two { channel, q0, q1 } => ChannelView {
            qubits: vec![*q0, *q1],
            kraus: ChannelKraus::Two(channel.operators().to_vec()),
            consumes_rng: !channel.is_identity(),
        },
    }
}

/// Converts one lowered op into the verifier's view, tagged with its stream
/// index.
fn kernel_op(index: usize, op: &PrecompiledOp) -> KernelOp {
    let kind = match &op.kind {
        PrecompiledKind::Unitary1Q { matrix, qubit } => KernelKind::One {
            matrix: *matrix,
            qubit: *qubit,
        },
        PrecompiledKind::Unitary2Q { matrix, q0, q1 } => KernelKind::Two {
            matrix: *matrix,
            q0: *q0,
            q1: *q1,
        },
        PrecompiledKind::Silent => KernelKind::Silent,
    };
    let mut channels: Vec<ChannelView> =
        Vec::with_capacity(op.carried.len() + op.relaxation.len() + 1);
    for carried in &op.carried {
        channels.push(channel_view(carried));
    }
    if let Some(depolarizing) = &op.depolarizing {
        channels.push(channel_view(depolarizing));
    }
    for (q, channel) in &op.relaxation {
        channels.push(ChannelView {
            qubits: vec![*q],
            kraus: ChannelKraus::One(channel.operators().to_vec()),
            consumes_rng: !channel.is_identity(),
        });
    }
    KernelOp {
        index,
        kind,
        channels,
    }
}

impl PrecompiledCircuit {
    /// The circuit's lowered ops as the verifier's neutral [`KernelOp`]
    /// stream, channels in the exact order a trajectory draws from them.
    pub fn kernel_ops(&self) -> Vec<KernelOp> {
        self.ops()
            .iter()
            .enumerate()
            .map(|(index, op)| kernel_op(index, op))
            .collect()
    }

    /// Statically verifies this lowered circuit with the semantic kernel
    /// rules: every kernel unitary and every Kraus channel trace-preserving.
    ///
    /// With `baseline` set to the unfused lowering of the same circuit, the
    /// fusion-preservation rules additionally prove that this (fused) stream
    /// acts identically on a probe state and — under `FusionPolicy::Safe` —
    /// consumes RNG draws in exactly the baseline's order. An
    /// `Aggressive`-fused stream instead gets the `channel/composition` rule
    /// (composed channels tightly trace-preserving, draw count never above
    /// the baseline's). An empty report means the artifact is legal.
    pub fn verify_artifact(&self, baseline: Option<&PrecompiledCircuit>) -> VerifyReport {
        let ops = self.kernel_ops();
        let baseline_ops = baseline.map(PrecompiledCircuit::kernel_ops);
        let artifact = KernelArtifact {
            num_qubits: self.num_qubits(),
            ops: &ops,
            baseline: baseline_ops.as_deref(),
            rng_order_exact: self.fusion() != crate::precompiled::FusionPolicy::Aggressive,
        };
        Verifier::semantic().run(&Artifact::Kernels(&artifact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise_model::NoiseModel;
    use crate::precompiled::FusionPolicy;
    use circuit::{Circuit, Operation};
    use device::DeviceModel;
    use qmath::{Complex, RngSeed};
    use verify::Context;

    fn layered_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Operation::h(0));
        c.push(Operation::rx(1, 0.4));
        c.push(Operation::cnot(0, 1));
        c.push(Operation::rz(2, 0.9));
        c.push(Operation::cnot(1, 2));
        c.measure_all();
        c
    }

    #[test]
    fn ideal_fused_stream_verifies_against_its_baseline() {
        let fused = PrecompiledCircuit::ideal_with_fusion(&layered_circuit(), FusionPolicy::Safe);
        let baseline = PrecompiledCircuit::ideal(&layered_circuit());
        assert!(fused.fused_ops() > 0, "fusion must actually happen");
        let report = fused.verify_artifact(Some(&baseline));
        assert!(!report.has_errors(), "{report:?}");
    }

    #[test]
    fn noisy_fused_stream_verifies_against_its_baseline() {
        let device = DeviceModel::aspen8(RngSeed(3));
        let noise = NoiseModel::from_device(&device);
        let fused = PrecompiledCircuit::with_fusion(&layered_circuit(), &noise, FusionPolicy::Safe);
        let baseline = PrecompiledCircuit::new(&layered_circuit(), &noise);
        let report = fused.verify_artifact(Some(&baseline));
        assert!(!report.has_errors(), "{report:?}");
    }

    #[test]
    fn corrupted_fused_kernel_is_caught_by_unitarity_and_equivalence() {
        let fused = PrecompiledCircuit::ideal_with_fusion(&layered_circuit(), FusionPolicy::Safe);
        let baseline = PrecompiledCircuit::ideal(&layered_circuit());
        let mut ops = fused.kernel_ops();
        let corrupt_index = ops
            .iter()
            .position(|op| matches!(op.kind, KernelKind::Two { .. }))
            .expect("a fused 2q kernel exists");
        if let KernelKind::Two { matrix, .. } = &mut ops[corrupt_index].kind {
            matrix[(0, 0)] += Complex::from_real(0.25);
        }
        let baseline_ops = baseline.kernel_ops();
        let artifact = KernelArtifact {
            num_qubits: fused.num_qubits(),
            ops: &ops,
            baseline: Some(&baseline_ops),
            rng_order_exact: true,
        };
        let report = Verifier::semantic().run(&Artifact::Kernels(&artifact));
        let rules: Vec<&str> = report.diagnostics().iter().map(|d| d.rule()).collect();
        assert!(rules.contains(&"kernel/unitarity"), "{report:?}");
        assert!(rules.contains(&"fusion/equivalence"), "{report:?}");
        let unitarity = report
            .diagnostics()
            .iter()
            .find(|d| d.rule() == "kernel/unitarity")
            .unwrap();
        assert_eq!(
            unitarity.span().map(|s| s.start),
            Some(corrupt_index),
            "the unitarity finding must point at the corrupted kernel"
        );
    }

    #[test]
    fn truncated_kraus_channel_is_caught_by_completeness() {
        let device = DeviceModel::aspen8(RngSeed(5));
        let noise = NoiseModel::from_device(&device);
        let pre = PrecompiledCircuit::new(&layered_circuit(), &noise);
        let mut ops = pre.kernel_ops();
        // Drop the last Kraus operator of the first multi-operator channel:
        // the channel is no longer trace-preserving.
        let (op_index, channel_index) = ops
            .iter()
            .enumerate()
            .find_map(|(i, op)| {
                op.channels
                    .iter()
                    .position(|c| match &c.kraus {
                        ChannelKraus::One(k) => k.len() > 1,
                        ChannelKraus::Two(k) => k.len() > 1,
                    })
                    .map(|j| (i, j))
            })
            .expect("a noisy lowering has a multi-operator channel");
        match &mut ops[op_index].channels[channel_index].kraus {
            ChannelKraus::One(k) => {
                k.pop();
            }
            ChannelKraus::Two(k) => {
                k.pop();
            }
        }
        let artifact = KernelArtifact {
            num_qubits: pre.num_qubits(),
            ops: &ops,
            baseline: None,
            rng_order_exact: true,
        };
        let report = Verifier::semantic().run(&Artifact::Kernels(&artifact));
        let finding = report
            .diagnostics()
            .iter()
            .find(|d| d.rule() == "channel/kraus-completeness")
            .expect("truncation must be caught");
        assert_eq!(finding.span().map(|s| s.start), Some(op_index));
    }

    #[test]
    fn reordered_noise_is_caught_by_the_rng_audit() {
        let device = DeviceModel::aspen8(RngSeed(7));
        let noise = NoiseModel::from_device(&device);
        let pre = PrecompiledCircuit::new(&layered_circuit(), &noise);
        let baseline_ops = pre.kernel_ops();
        let mut ops = pre.kernel_ops();
        // Swap the channel lists of the first two ops that both draw RNG:
        // the draw order diverges from the baseline.
        let drawing: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.channels.iter().any(|c| c.consumes_rng))
            .map(|(i, _)| i)
            .take(2)
            .collect();
        assert_eq!(drawing.len(), 2, "need two RNG-drawing ops");
        let (a, b) = (drawing[0], drawing[1]);
        let tmp = ops[a].channels.clone();
        ops[a].channels = ops[b].channels.clone();
        ops[b].channels = tmp;
        let artifact = KernelArtifact {
            num_qubits: pre.num_qubits(),
            ops: &ops,
            baseline: Some(&baseline_ops),
            rng_order_exact: true,
        };
        let report = Verifier::semantic().run(&Artifact::Kernels(&artifact));
        assert!(
            report
                .diagnostics()
                .iter()
                .any(|d| d.rule() == "fusion/rng-order"),
            "{report:?}"
        );
    }

    #[test]
    fn aggressive_fused_stream_verifies_with_the_composition_rule() {
        let device = DeviceModel::aspen8(RngSeed(3));
        let noise = NoiseModel::from_device(&device);
        let fused =
            PrecompiledCircuit::with_fusion(&layered_circuit(), &noise, FusionPolicy::Aggressive);
        let baseline = PrecompiledCircuit::new(&layered_circuit(), &noise);
        assert!(
            fused.fused_ops() > 0,
            "aggressive fusion must cross the calibration noise"
        );
        // The RNG stream legitimately differs from the baseline, so the
        // rng-order audit must not fire; the composition rule and the
        // equivalence spot check must both hold.
        let report = fused.verify_artifact(Some(&baseline));
        assert!(!report.has_errors(), "{report:?}");
        assert!(report
            .diagnostics()
            .iter()
            .all(|d| d.rule() != "fusion/rng-order"));
    }

    #[test]
    fn wide_registers_skip_the_equivalence_spot_check_with_info() {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        let fused = PrecompiledCircuit::ideal_with_fusion(&c, FusionPolicy::Safe);
        let baseline = PrecompiledCircuit::ideal(&c);
        let ops = fused.kernel_ops();
        let baseline_ops = baseline.kernel_ops();
        let artifact = KernelArtifact {
            num_qubits: fused.num_qubits(),
            ops: &ops,
            baseline: Some(&baseline_ops),
            rng_order_exact: true,
        };
        let verifier = Verifier::semantic().context(Context {
            equivalence_max_qubits: 1,
            ..Context::default()
        });
        let report = verifier.run(&Artifact::Kernels(&artifact));
        assert!(!report.has_errors());
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.rule() == "fusion/equivalence" && d.severity() == verify::Severity::Info));
    }
}
