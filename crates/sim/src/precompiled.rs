//! Circuits lowered once into a simulation-ready form.
//!
//! `NoisySimulator` historically re-derived everything per shot: each
//! trajectory converted every op's `CMatrix` into its `Mat2`/`Mat4` kernel and
//! rebuilt (and completeness-checked) every Kraus channel from the calibration
//! data. Trajectory sampling runs thousands of shots over the same circuit, so
//! that work was repeated ~shots× for no benefit.
//!
//! A [`PrecompiledCircuit`] performs that lowering exactly once:
//!
//! * every unitary is converted to its stack-allocated [`Mat2`]/[`Mat4`] form,
//! * every op's depolarizing [`ArityChannel`] and per-qubit relaxation
//!   [`Kraus1q`] channels are built (and completeness-checked by
//!   [`KrausChannel::new`](crate::KrausChannel::new)) up front,
//! * readout-error probabilities are resolved into a flat per-qubit table.
//!
//! Both the Monte-Carlo engine ([`crate::engine`]) and the exact
//! density-matrix simulator ([`crate::DensityMatrix::evolve`]) consume the
//! same precompiled ops, so the two validation paths cannot drift apart.

use circuit::{Circuit, OpKind, QubitId};
use qmath::{Mat2, Mat4};
use rand::Rng;

use crate::channels::{ArityChannel, Kraus1q, Kraus2q};
use crate::noise_model::NoiseModel;
use crate::statevector::StateVector;

/// The unitary part of a lowered operation.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecompiledKind {
    /// A single-qubit unitary, already converted to its 2×2 kernel.
    Unitary1Q {
        /// The stack-allocated gate matrix.
        matrix: Mat2,
        /// Target qubit.
        qubit: QubitId,
    },
    /// A two-qubit unitary, already converted to its 4×4 kernel.
    Unitary2Q {
        /// The stack-allocated gate matrix (`q0` is the most significant
        /// qubit of the matrix).
        matrix: Mat4,
        /// First (most significant) qubit.
        q0: QubitId,
        /// Second qubit.
        q1: QubitId,
    },
    /// A measurement or barrier: no unitary, only the attached noise.
    Silent,
}

/// One circuit operation lowered to its simulation-ready form: the unitary
/// kernel plus the prebuilt noise channels that follow it.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecompiledOp {
    /// The unitary kernel (or [`PrecompiledKind::Silent`]).
    pub kind: PrecompiledKind,
    /// Depolarizing channel matched to the op's arity, `None` when noiseless.
    pub depolarizing: Option<ArityChannel>,
    /// Per-qubit thermal-relaxation channels for the op's duration.
    pub relaxation: Vec<(QubitId, Kraus1q)>,
}

/// A circuit lowered once into simulation-ready ops.
///
/// Build one with [`PrecompiledCircuit::new`] (noisy) or
/// [`PrecompiledCircuit::ideal`] (no noise), then run as many trajectories
/// against it as needed — no per-shot matrix conversion or channel
/// construction remains.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecompiledCircuit {
    num_qubits: usize,
    ops: Vec<PrecompiledOp>,
    /// Per-qubit readout flip probability (all zeros when disabled).
    readout_error: Vec<f64>,
}

impl PrecompiledCircuit {
    /// Lowers `circuit` under `noise`, building every Kraus channel exactly
    /// once.
    ///
    /// # Panics
    /// Panics if an operation carries a matrix of the wrong dimension (which
    /// [`circuit::Operation`] construction already prevents).
    pub fn new(circuit: &Circuit, noise: &NoiseModel) -> Self {
        let ops = circuit
            .iter()
            .map(|op| {
                let op_noise = noise.noise_for(op);
                PrecompiledOp {
                    kind: lower_kind(op),
                    depolarizing: op_noise.depolarizing,
                    relaxation: op_noise.relaxation,
                }
            })
            .collect();
        let readout_error = (0..circuit.num_qubits())
            .map(|q| noise.readout_error(q))
            .collect();
        PrecompiledCircuit {
            num_qubits: circuit.num_qubits(),
            ops,
            readout_error,
        }
    }

    /// Lowers `circuit` with no noise attached: trajectories are then
    /// deterministic and only measurement sampling consumes randomness.
    pub fn ideal(circuit: &Circuit) -> Self {
        let ops = circuit
            .iter()
            .map(|op| PrecompiledOp {
                kind: lower_kind(op),
                depolarizing: None,
                relaxation: Vec::new(),
            })
            .collect();
        PrecompiledCircuit {
            num_qubits: circuit.num_qubits(),
            ops,
            readout_error: vec![0.0; circuit.num_qubits()],
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The lowered operations, in circuit order.
    pub fn ops(&self) -> &[PrecompiledOp] {
        &self.ops
    }

    /// Per-qubit readout flip probabilities.
    pub fn readout_error(&self) -> &[f64] {
        &self.readout_error
    }

    /// True when no stochastic noise is attached anywhere: no depolarizing or
    /// relaxation channels and zero readout error. Trajectories of a noiseless
    /// circuit are deterministic, so the engine evolves the state once and
    /// only samples measurements per shot.
    pub fn is_noiseless(&self) -> bool {
        self.readout_error.iter().all(|&p| p == 0.0)
            && self.ops.iter().all(|op| {
                op.depolarizing.is_none()
                    && op
                        .relaxation
                        .iter()
                        .all(|(_, channel)| channel.is_identity())
            })
    }

    /// Runs one noisy trajectory from `|0…0⟩` and returns the (normalized)
    /// final state. Consumes randomness only for the Kraus channels that are
    /// actually attached.
    pub fn run_trajectory<R: Rng + ?Sized>(&self, rng: &mut R) -> StateVector {
        let mut state = StateVector::zero_state(self.num_qubits);
        for op in &self.ops {
            match &op.kind {
                PrecompiledKind::Unitary1Q { matrix, qubit } => {
                    state.apply_one_qubit(matrix, *qubit);
                }
                PrecompiledKind::Unitary2Q { matrix, q0, q1 } => {
                    state.apply_two_qubit(matrix, *q0, *q1);
                }
                PrecompiledKind::Silent => {}
            }
            match &op.depolarizing {
                Some(ArityChannel::One(channel)) => {
                    let q = match &op.kind {
                        PrecompiledKind::Unitary1Q { qubit, .. } => *qubit,
                        _ => unreachable!("1Q channel attached to a non-1Q op"),
                    };
                    apply_channel_1q(&mut state, channel, q, rng);
                }
                Some(ArityChannel::Two(channel)) => {
                    let (q0, q1) = match &op.kind {
                        PrecompiledKind::Unitary2Q { q0, q1, .. } => (*q0, *q1),
                        _ => unreachable!("2Q channel attached to a non-2Q op"),
                    };
                    apply_channel_2q(&mut state, channel, q0, q1, rng);
                }
                None => {}
            }
            for (q, channel) in &op.relaxation {
                apply_channel_1q(&mut state, channel, *q, rng);
            }
        }
        state
    }

    /// Runs one complete shot: trajectory, measurement sample, readout error.
    /// Randomness is consumed in the same order as the historical
    /// `NoisySimulator::run` path, so a per-shot seeded RNG reproduces its
    /// results bit for bit.
    pub fn sample_shot<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let state = self.run_trajectory(rng);
        let outcome = state.sample_measurement(rng);
        self.apply_readout_error(outcome, rng)
    }

    /// Flips each measured bit independently with its readout-error
    /// probability.
    pub fn apply_readout_error<R: Rng + ?Sized>(&self, outcome: usize, rng: &mut R) -> usize {
        let mut noisy = outcome;
        for (q, &p) in self.readout_error.iter().enumerate() {
            if p > 0.0 && rng.gen_bool(p) {
                noisy ^= 1 << (self.num_qubits - 1 - q);
            }
        }
        noisy
    }
}

/// Converts one circuit operation's unitary into its stack-allocated kernel —
/// the single lowering rule shared by the noisy and ideal constructors.
fn lower_kind(op: &circuit::Operation) -> PrecompiledKind {
    match op.kind() {
        OpKind::Unitary1Q { matrix, .. } => PrecompiledKind::Unitary1Q {
            matrix: Mat2::try_from(matrix).expect("1Q operation carries a 2x2 matrix"),
            qubit: op.qubits()[0],
        },
        OpKind::Unitary2Q { matrix, .. } => PrecompiledKind::Unitary2Q {
            matrix: Mat4::try_from(matrix).expect("2Q operation carries a 4x4 matrix"),
            q0: op.qubits()[0],
            q1: op.qubits()[1],
        },
        OpKind::Measure | OpKind::Barrier => PrecompiledKind::Silent,
    }
}

/// Samples and applies one Kraus operator of a single-qubit channel.
pub(crate) fn apply_channel_1q<R: Rng + ?Sized>(
    state: &mut StateVector,
    channel: &Kraus1q,
    q: usize,
    rng: &mut R,
) {
    if channel.is_identity() {
        return;
    }
    let mut r: f64 = rng.gen_range(0.0..1.0);
    let last = channel.operators().len() - 1;
    for (i, k) in channel.operators().iter().enumerate() {
        let mut probe = state.clone();
        probe.apply_one_qubit(k, q);
        let p = probe.norm_sqr();
        if r < p || i == last {
            if p > 1e-300 {
                probe.normalize();
                *state = probe;
            }
            return;
        }
        r -= p;
    }
}

/// Samples and applies one Kraus operator of a two-qubit channel.
pub(crate) fn apply_channel_2q<R: Rng + ?Sized>(
    state: &mut StateVector,
    channel: &Kraus2q,
    q0: usize,
    q1: usize,
    rng: &mut R,
) {
    if channel.is_identity() {
        return;
    }
    let mut r: f64 = rng.gen_range(0.0..1.0);
    let last = channel.operators().len() - 1;
    for (i, k) in channel.operators().iter().enumerate() {
        let mut probe = state.clone();
        probe.apply_two_qubit(k, q0, q1);
        let p = probe.norm_sqr();
        if r < p || i == last {
            if p > 1e-300 {
                probe.normalize();
                *state = probe;
            }
            return;
        }
        r -= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Operation;
    use device::DeviceModel;
    use qmath::RngSeed;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        c.measure_all();
        c
    }

    #[test]
    fn lowering_preserves_op_structure() {
        let device = DeviceModel::aspen8(RngSeed(1));
        let noise = NoiseModel::from_device(&device);
        let pre = PrecompiledCircuit::new(&bell_circuit(), &noise);
        assert_eq!(pre.num_qubits(), 2);
        assert_eq!(pre.ops().len(), 3);
        assert!(matches!(
            pre.ops()[0].kind,
            PrecompiledKind::Unitary1Q { qubit: 0, .. }
        ));
        assert!(matches!(
            pre.ops()[1].kind,
            PrecompiledKind::Unitary2Q { q0: 0, q1: 1, .. }
        ));
        assert!(matches!(pre.ops()[2].kind, PrecompiledKind::Silent));
        // Noisy device: channels were prebuilt.
        assert!(pre.ops()[1].depolarizing.is_some());
        assert!(!pre.is_noiseless());
    }

    #[test]
    fn ideal_lowering_is_noiseless() {
        let pre = PrecompiledCircuit::ideal(&bell_circuit());
        assert!(pre.is_noiseless());
        assert!(pre.readout_error().iter().all(|&p| p == 0.0));
        assert!(pre.ops().iter().all(|op| op.depolarizing.is_none()));
    }

    #[test]
    fn noiseless_model_lowering_is_noiseless() {
        let device = DeviceModel::ideal(2, 1.0);
        let noise = NoiseModel::noiseless(&device);
        let pre = PrecompiledCircuit::new(&bell_circuit(), &noise);
        assert!(pre.is_noiseless());
    }

    #[test]
    fn trajectory_matches_direct_statevector_when_noiseless() {
        let pre = PrecompiledCircuit::ideal(&bell_circuit());
        let mut rng = RngSeed(3).rng();
        let state = pre.run_trajectory(&mut rng);
        let p = state.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_shot_stays_in_range() {
        let device = DeviceModel::aspen8(RngSeed(4));
        let noise = NoiseModel::from_device(&device);
        let pre = PrecompiledCircuit::new(&bell_circuit(), &noise);
        let mut rng = RngSeed(5).rng();
        for _ in 0..50 {
            assert!(pre.sample_shot(&mut rng) < 4);
        }
    }
}
